//! # trackfm-suite
//!
//! Umbrella crate for the TrackFM far-memory reproduction. Re-exports the
//! workspace crates under one roof so the examples and integration tests can
//! use a single dependency:
//!
//! * [`ir`] — SSA intermediate representation (LLVM stand-in);
//! * [`analysis`] — CFG/dominators/loops/alias/induction-variable analyses
//!   (NOELLE stand-in);
//! * [`compiler`] — the TrackFM pass pipeline (guards, loop chunking, libc
//!   transform, cost model);
//! * [`runtime`] — the AIFM-like far-memory object runtime;
//! * [`fastswap`] — the kernel-paging baseline simulator;
//! * [`net`] — the cycle-accounted network link model;
//! * [`sim`] — the execution engine (interpreter + memory-system bindings);
//! * [`workloads`] — the paper's benchmark programs as IR builders.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture and the
//! paper-to-code mapping.

pub use tfm_analysis as analysis;
pub use tfm_fastswap as fastswap;
pub use tfm_ir as ir;
pub use tfm_net as net;
pub use tfm_runtime as runtime;
pub use tfm_sim as sim;
pub use tfm_telemetry as telemetry;
pub use tfm_workloads as workloads;
pub use trackfm as compiler;
