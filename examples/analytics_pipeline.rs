//! Far-memory analytics: the taxi-trip pipeline under different compilation
//! strategies, demonstrating why selective loop chunking matters
//! (the Fig. 14/15 story in one binary).
//!
//! ```sh
//! cargo run --release --example analytics_pipeline
//! ```

use trackfm_suite::compiler::ChunkingMode;
use trackfm_suite::workloads::analytics::{analytics, AnalyticsParams};
use trackfm_suite::workloads::runner::{collect_profile, execute, execute_with_profile, RunConfig};

fn main() {
    let spec = analytics(&AnalyticsParams {
        rows: 100_000,
        groups: 8_000,
    });
    println!(
        "workload: {} ({} MiB of columns)\n",
        spec.name,
        spec.working_set() >> 20
    );

    // Stage 1: profile the unmodified program (the NOELLE profiling stage).
    let profile = collect_profile(&spec);
    println!("profiling run complete — loop trip counts feed the chunking cost model");

    // Stage 2: compile + run four ways at a 25% budget.
    let frac = 0.25;
    let local = execute(&spec, &RunConfig::local());
    let base = local.result.stats.cycles as f64;

    let mut no_chunk = RunConfig::trackfm(frac);
    no_chunk.compiler.chunking = ChunkingMode::Off;
    let mut all = RunConfig::trackfm(frac);
    all.compiler.chunking = ChunkingMode::AllLoops;
    let model = RunConfig::trackfm(frac); // CostModel is the default

    let r_none = execute(&spec, &no_chunk);
    let r_all = execute(&spec, &all);
    let r_model = execute_with_profile(&spec, &model, Some(&profile));
    let r_fsw = execute(&spec, &RunConfig::fastswap(frac));
    let r_aifm = execute_with_profile(&spec, &RunConfig::aifm(frac), Some(&profile));

    println!(
        "\n{:<34} {:>14} {:>12}",
        "configuration", "slowdown", "vs model"
    );
    let model_cycles = r_model.result.stats.cycles as f64;
    for (name, cycles) in [
        ("local-only baseline", base),
        ("Fastswap (kernel paging)", r_fsw.result.stats.cycles as f64),
        ("TrackFM, no chunking", r_none.result.stats.cycles as f64),
        ("TrackFM, chunk ALL loops", r_all.result.stats.cycles as f64),
        ("TrackFM, cost-model + profile", model_cycles),
        ("AIFM (hand-integrated)", r_aifm.result.stats.cycles as f64),
    ] {
        println!(
            "{:<34} {:>13.2}x {:>11.2}x",
            name,
            cycles / base,
            cycles / model_cycles
        );
    }

    let rep = r_model.report.as_ref().unwrap();
    println!(
        "\ncost model: {} streams chunked, {} rejected as low-benefit \
         (short per-group aggregation loops)",
        rep.chunking.streams, rep.chunking.skipped_low_benefit
    );
    println!(
        "TrackFM within {:.0}% of AIFM — with zero source changes. (paper: within 10%)",
        (r_model.result.stats.cycles as f64 / r_aifm.result.stats.cycles as f64 - 1.0) * 100.0
    );
}
