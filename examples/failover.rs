//! Crash failover: keep two copies of every object, cold-crash a shard
//! mid-run, and lose nothing.
//!
//! `sharded(4).with_replicas(2)` mirrors every acknowledged writeback onto a
//! backup shard. When shard 1 cold-crashes (its store wiped on restart), the
//! runtime fails reads over to the surviving replica, drains the dead
//! shard's objects onto substitutes, and — once the node restarts with a
//! bumped epoch — replays its redo ledger to re-sync it. The answer never
//! moves and the audit proves zero acknowledged writebacks were lost.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use trackfm_suite::net::{BackendSpec, FaultPlan};
use trackfm_suite::telemetry::EventKind;
use trackfm_suite::workloads::runner::{execute, execute_with_report, RunConfig};
use trackfm_suite::workloads::stream::{self, StreamParams};

const SHARDS: u32 = 4;
const SICK: u32 = 1;

fn main() {
    // ------------------------------------------------------------------
    // 1. A healthy replicated rehearsal: same answer, slightly more wire
    //    (every writeback lands twice), zero failover traffic.
    // ------------------------------------------------------------------
    let spec = stream::sum(&StreamParams { elems: 256 << 10 });
    let clean = execute(
        &spec,
        &RunConfig::trackfm(0.25)
            .with_shards(SHARDS)
            .with_replicas(2),
    );
    println!("== healthy {SHARDS}-shard run, replicas=2 ==");
    println!(
        "  result {} in {} cycles",
        clean.result.ret, clean.result.stats.cycles
    );

    // ------------------------------------------------------------------
    // 2. The same run with shard 1 cold-crashing across the early phase:
    //    its store is wiped, the restart comes back with epoch 1.
    // ------------------------------------------------------------------
    let total = clean.result.stats.cycles;
    let (start, end) = (total / 8, total / 8 + total / 4);
    let cfg = RunConfig::trackfm(0.25)
        .with_backend(
            BackendSpec::sharded(SHARDS)
                .with_replicas(2)
                .with_fault_shard(SICK),
        )
        .with_faults(FaultPlan::none().with_cold_crash(start, end));
    println!("\n== shard {SICK} cold-crashed over [{start}, {end}) ==");
    let (out, rep) = execute_with_report(&spec, &cfg);

    assert_eq!(
        out.result.ret, clean.result.ret,
        "a crash must not change the answer"
    );
    println!(
        "  result {} — identical answer, {} cycles (was {})",
        out.result.ret, out.result.stats.cycles, total
    );

    // ------------------------------------------------------------------
    // 3. The failover story, counter by counter.
    // ------------------------------------------------------------------
    let rt = out.result.runtime.unwrap();
    println!("\n== recovery ledger ==");
    println!("  shard downs observed   {}", rt.shard_downs);
    println!("  shard recoveries       {}", rt.shard_recoveries);
    println!("  objects re-replicated  {}", rt.re_replications);
    println!("  objects re-synced      {}", rt.resynced_objects);
    println!(
        "  acked objects lost     {}  <- the whole point",
        rt.lost_objects
    );
    assert_eq!(
        rt.lost_objects, 0,
        "replicas=2 must never lose acknowledged data"
    );

    println!("\n== per-shard failover state ==");
    for (i, snap) in out.result.shards.iter().enumerate() {
        println!(
            "  shard{i}: state {:?}, epoch {}, {} failover reads, {} divergent writes{}",
            snap.state,
            snap.epoch,
            snap.failover_reads,
            snap.divergent_writes,
            if i == SICK as usize {
                "   <- scripted crash"
            } else {
                ""
            },
        );
    }
    let snap = out.telemetry.as_ref().unwrap();
    println!(
        "  telemetry: {} ShardDown, {} ShardRecovering, {} ShardUp, {} ReReplicate",
        snap.count(EventKind::ShardDown),
        snap.count(EventKind::ShardRecovering),
        snap.count(EventKind::ShardUp),
        snap.count(EventKind::ReReplicate),
    );

    // ------------------------------------------------------------------
    // 4. The unified run report: replica count in the backend metadata,
    //    state/epoch/failover counters in every shard section.
    // ------------------------------------------------------------------
    print!("\n{rep}");

    println!(
        "\nSame seed, same placement, same crash: rerun this binary and the \
         entire failover story repeats, bit for bit."
    );
}
