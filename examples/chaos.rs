//! Chaos: run a workload across a scripted remote-node outage and watch the
//! runtime degrade and recover.
//!
//! The paper evaluates TrackFM on a flawless fabric; this example turns the
//! fabric hostile. A seeded fault plan drops 5% of transfers and takes the
//! remote node down entirely for one-eighth of the run. The slow path rides
//! it out on retry/backoff, the link-health tracker flips the runtime into
//! degraded mode (prefetch off, backoff widened), and recovery restores
//! full service — all deterministic, all visible in the run report.
//!
//! ```sh
//! cargo run --release --example chaos
//! ```

use trackfm_suite::net::FaultPlan;
use trackfm_suite::telemetry::EventKind;
use trackfm_suite::workloads::hashmap::{hashmap, HashmapParams};
use trackfm_suite::workloads::runner::{
    chrome_trace, execute, execute_with_report, flamegraph, RunConfig,
};

fn main() {
    // ------------------------------------------------------------------
    // 1. A fault-free rehearsal: learn how long the run takes, so the
    //    outage window can be parked across its second quarter.
    // ------------------------------------------------------------------
    // Zipf-skewed hash-map probes: random, unchunked accesses that ride the
    // guard slow path, so the span trace shows remote guards with their
    // transfer/retry/backoff children. Sized so the full event trace fits
    // the telemetry ring.
    let spec = hashmap(&HashmapParams {
        keys: 20_000,
        lookups: 20_000,
        skew: 1.02,
        seed: 0xC0FFEE,
    });
    let cfg = RunConfig::trackfm(0.25).with_shards(2);
    let clean = execute(&spec, &cfg);
    let total = clean.result.stats.cycles;
    let (outage_start, outage_end) = (total / 4, total / 4 + total / 8);
    println!("== fault-free rehearsal ==");
    println!("  result {} in {} cycles", clean.result.ret, total);

    // ------------------------------------------------------------------
    // 2. The same workload on an unreliable link: 5% drops throughout,
    //    plus a total remote-node outage over [start, end).
    // ------------------------------------------------------------------
    let plan = FaultPlan::drops(0xBAD_CAB1E, 50_000).with_outage(outage_start, outage_end);
    println!("\n== chaos run: {plan} ==");
    let (out, rep) = execute_with_report(&spec, &cfg.with_faults(plan).with_tracing());

    assert_eq!(
        out.result.ret, clean.result.ret,
        "faults must not change the answer"
    );
    println!(
        "  result {} — identical to the fault-free run ({}x slower: {} cycles)",
        out.result.ret,
        out.result.stats.cycles / total.max(1),
        out.result.stats.cycles
    );

    // ------------------------------------------------------------------
    // 3. The degradation/recovery timeline, straight from telemetry.
    // ------------------------------------------------------------------
    let rt = out.result.runtime.as_ref().unwrap();
    let snap = out.telemetry.as_ref().unwrap();
    println!("\n== link-health timeline ==");
    println!("  outage window: [{outage_start}, {outage_end})");
    let mut transitions = 0;
    for e in &snap.events {
        match e.kind {
            EventKind::Degraded => println!(
                "  cycle {:>12}  DEGRADED   (fault rate {} ppm: prefetch off, backoff x4)",
                e.cycle, e.arg
            ),
            EventKind::Recovered => println!(
                "  cycle {:>12}  RECOVERED  (fault rate {} ppm: full service restored)",
                e.cycle, e.arg
            ),
            _ => continue,
        }
        transitions += 1;
    }
    if transitions == 0 {
        println!("  (transition events evicted from the trace ring; see counts below)");
    }
    println!(
        "  {} faults injected, {} retries, {} deadline overruns",
        rt.link_faults, rt.retries, rt.deadline_exceeded
    );
    println!(
        "  {} prefetches suppressed while degraded, {} canceled on faults",
        rt.prefetch_suppressed, rt.prefetch_canceled
    );
    println!(
        "  degraded {} time(s); recovered {} time(s)",
        snap.count(EventKind::Degraded),
        snap.count(EventKind::Recovered)
    );

    // ------------------------------------------------------------------
    // 4. The unified run report: the fault plan in the metadata, fault and
    //    retry counters in every ledger, and the retry-latency histogram
    //    (detect + backoff penalty per retried operation).
    // ------------------------------------------------------------------
    print!("\n{rep}");

    // ------------------------------------------------------------------
    // 5. Span-trace exports: every slow guard, fetch, retry, and backoff
    //    wait as a causal tree, ready for off-the-shelf viewers.
    // ------------------------------------------------------------------
    let trace = chrome_trace(&out).expect("tracing was on");
    let folded = flamegraph(&out).expect("tracing was on");
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/chaos_trace.json", trace.to_string_pretty())
        .expect("write chrome trace");
    std::fs::write("target/chaos_flame.folded", &folded).expect("write folded stacks");
    let spans = out
        .telemetry
        .as_ref()
        .unwrap()
        .trace
        .as_ref()
        .unwrap()
        .spans
        .len();
    println!("\n== span trace ==");
    println!("  {spans} spans captured");
    println!("  target/chaos_trace.json   — load in chrome://tracing or https://ui.perfetto.dev");
    println!("  target/chaos_flame.folded — pipe through flamegraph.pl for an SVG");

    println!("\nSame seed, same schedule: rerun this binary and every counter above repeats.");
}
