//! Far-memory key-value store: run the memcached-like workload under all
//! four systems and compare throughput, events and network traffic at a
//! memcached-realistic local-memory budget.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use trackfm_suite::workloads::memcached::{memcached, MemcachedParams};
use trackfm_suite::workloads::openloop::{execute_open_loop, open_loop, OpenLoopParams};
use trackfm_suite::workloads::runner::{execute, execute_with_report, RunConfig};

fn main() {
    let params = MemcachedParams {
        keys: 50_000,
        gets: 150_000,
        skew: 1.05,
        seed: 99,
    };
    let spec = memcached(&params);
    println!(
        "workload: {} — {} keys, {} gets, zipf {} ({} MiB working set)",
        spec.name,
        params.keys,
        params.gets,
        params.skew,
        spec.working_set() >> 20
    );

    let frac = 0.1; // paper's memcached runs 1 GB local / 12 GB working set
    let configs = [
        ("all-local", RunConfig::local()),
        ("Fastswap", RunConfig::fastswap(frac)),
        (
            "TrackFM (64B objects)",
            RunConfig::trackfm(frac).with_object_size(64),
        ),
        (
            "AIFM (64B objects)",
            RunConfig::aifm(frac).with_object_size(64),
        ),
    ];

    println!(
        "\n{:<22} {:>12} {:>14} {:>16} {:>14}",
        "system", "KOps/s", "time (ms)", "guards/faults", "MiB moved"
    );
    for (name, cfg) in configs {
        let out = execute(&spec, &cfg);
        let secs = out.result.seconds_2_4ghz();
        println!(
            "{:<22} {:>12.1} {:>14.2} {:>16} {:>14.1}",
            name,
            params.gets as f64 / secs / 1e3,
            secs * 1e3,
            out.result.guards_or_faults(),
            out.result.bytes_transferred() as f64 / (1 << 20) as f64,
        );
    }
    // Where does TrackFM's remaining time go? Re-run the winner with
    // telemetry on and let the run report attribute stalls to guard sites.
    let (_, rep) = execute_with_report(&spec, &RunConfig::trackfm(frac).with_object_size(64));
    let fetch = rep.histogram("fetch_latency_cycles").unwrap();
    println!(
        "\ntelemetry: demand-fetch latency p50={} p99={} cycles over {} fetches",
        fetch.p50(),
        fetch.p99(),
        fetch.count()
    );
    if let Some(hot) = rep.sites.first() {
        println!(
            "hottest guard site: {} — {} hits, {} stall cycles",
            hot.label, hot.stats.hits, hot.stats.stall_cycles
        );
    }

    // Serving mode: the same store behind an open-loop Zipf arrival stream
    // on the deterministic multi-core machine. Misses issue their fetch and
    // yield (issue/complete split), so four cores pipeline the wire where
    // one core would block on it.
    let ol = open_loop(&OpenLoopParams {
        keys: 20_000,
        requests: 40_000,
        skew: 1.05,
        seed: 99,
        mean_gap_cycles: 100,
    });
    let serving = RunConfig::trackfm(frac)
        .with_object_size(64)
        .with_prefetch(false);
    println!(
        "\nserving: {} open-loop gets, zipf {} arrivals every ~100 cycles",
        ol.requests.len(),
        1.05
    );
    println!(
        "{:<8} {:>14} {:>10} {:>22}",
        "cores", "cycles", "KOps/s", "latency p50/p90/p99"
    );
    for cores in [1u32, 4] {
        let run = execute_open_loop(&ol, &serving.with_cores(cores));
        let secs = run.makespan as f64 / 2.4e9;
        println!(
            "{:<8} {:>14} {:>10.1} {:>10}/{}/{} cycles",
            cores,
            run.makespan,
            ol.requests.len() as f64 / secs / 1e3,
            run.latency.p50(),
            run.latency.p90(),
            run.latency.p99(),
        );
    }

    println!(
        "\nEvery system returned the same checksum (verified against the host reference),\n\
         so recompiling for far memory changed performance — never results."
    );
}
