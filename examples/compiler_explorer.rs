//! Compiler explorer: print the IR of a small program before and after each
//! stage of the TrackFM pipeline, showing exactly what the compiler injects
//! (runtime init hook, guards, chunk streams, libc rewrites).
//!
//! ```sh
//! cargo run --release --example compiler_explorer
//! ```

use trackfm_suite::compiler::{ChunkingMode, CompilerOptions, TrackFmCompiler};
use trackfm_suite::ir::{BinOp, FunctionBuilder, Intrinsic, Module, Signature, Type};

fn listing1_program() -> Module {
    // The paper's Listing 1, as unmodified IR: allocate an array, sum it,
    // free it.
    let mut m = Module::new("listing1");
    let f = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let n = 1000i64;
        let arr = b.malloc_const(n * 8);
        let zero = b.iconst(Type::I64, 0);
        let bound = b.iconst(Type::I64, n);
        let pre = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.br(header);
        b.switch_to_block(header);
        let i = b.phi(Type::I64, &[(pre, zero)]);
        let sum = b.phi(Type::I64, &[(pre, zero)]);
        let c = b.icmp(trackfm_suite::ir::CmpOp::Slt, i, bound);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let addr = b.gep(arr, i, 8, 0);
        let x = b.load(Type::I64, addr);
        let sum2 = b.binop(BinOp::Add, sum, x);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to_block(exit);
        b.intrinsic(Intrinsic::Free, vec![arr]);
        b.ret(Some(sum));
    }
    m.verify().unwrap();
    m
}

fn main() {
    let original = listing1_program();
    println!("================ UNMODIFIED PROGRAM ================");
    print!("{original}");

    // Naive transformation: guards on every heap access (no chunking).
    let mut naive = original.clone();
    let compiler = TrackFmCompiler::new(CompilerOptions {
        chunking: ChunkingMode::Off,
        ..Default::default()
    });
    let rep = compiler.compile(&mut naive, None);
    println!("\n================ NAIVE TRANSFORM (guards only) ================");
    println!(
        "; {} read guards, {} write guards, code x{:.2}",
        rep.read_guards,
        rep.write_guards,
        rep.code_size_ratio()
    );
    print!("{naive}");

    // Full pipeline: loop chunking replaces the per-element guard.
    let mut full = original.clone();
    let rep = TrackFmCompiler::default().compile(&mut full, None);
    println!("\n================ FULL PIPELINE (chunking + guards) ================");
    println!(
        "; {} chunk streams over {} accesses, {} loops chunked, {} plain guards, code x{:.2}",
        rep.chunking.streams,
        rep.chunking.chunked_accesses,
        rep.chunking.chunked_loops,
        rep.total_guards(),
        rep.code_size_ratio()
    );
    print!("{full}");

    println!("\nThings to look for:");
    println!("  * `tfm.runtime.init()` at the top of main (runtime initialization pass);");
    println!("  * `malloc`/`free` rewritten to `tfm.alloc`/`tfm.free` (libc transform);");
    println!("  * the naive version wraps the loop load in `tfm.guard.read`;");
    println!("  * the full pipeline hoists a `tfm.chunk.begin` into the preheader,");
    println!("    replaces the guard with `tfm.chunk.deref` (3-cycle boundary check),");
    println!("    and drops `tfm.chunk.end` on the loop exit edge — Fig. 5 of the paper.");
}
