//! Compiler explorer: print the IR of a small program before and after each
//! stage of the TrackFM pipeline, showing exactly what the compiler injects
//! (runtime init hook, guards, chunk streams, libc rewrites), plus the
//! interprocedural view — call graph, per-function custody summaries, and
//! per-site hoisted/elided guard attribution.
//!
//! ```sh
//! cargo run --release --example compiler_explorer
//! ```

use trackfm_suite::analysis::callgraph::CallGraph;
use trackfm_suite::analysis::summaries::ModuleSummaries;
use trackfm_suite::compiler::{ChunkingMode, CompilerOptions, TrackFmCompiler};
use trackfm_suite::ir::{BinOp, FunctionBuilder, Intrinsic, Module, Signature, Type};

fn listing1_program() -> Module {
    // The paper's Listing 1, as unmodified IR: allocate an array, sum it,
    // free it.
    let mut m = Module::new("listing1");
    let f = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let n = 1000i64;
        let arr = b.malloc_const(n * 8);
        let zero = b.iconst(Type::I64, 0);
        let bound = b.iconst(Type::I64, n);
        let pre = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.br(header);
        b.switch_to_block(header);
        let i = b.phi(Type::I64, &[(pre, zero)]);
        let sum = b.phi(Type::I64, &[(pre, zero)]);
        let c = b.icmp(trackfm_suite::ir::CmpOp::Slt, i, bound);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let addr = b.gep(arr, i, 8, 0);
        let x = b.load(Type::I64, addr);
        let sum2 = b.binop(BinOp::Add, sum, x);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(sum, body, sum2);
        b.br(header);
        b.switch_to_block(exit);
        b.intrinsic(Intrinsic::Free, vec![arr]);
        b.ret(Some(sum));
    }
    m.verify().unwrap();
    m
}

/// A multi-function serving loop: a pure classifier helper, a bucket RMW,
/// and a loop-invariant total slot — the program shape the interprocedural
/// custody analysis and guard motion were built for.
fn serving_program() -> Module {
    let mut m = Module::new("serving");
    let classify = m.declare_function("classify", Signature::new(vec![Type::I64], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(classify));
        let op = b.param(0);
        let mask = b.iconst(Type::I64, 15);
        let k = b.binop(BinOp::And, op, mask);
        b.ret(Some(k));
    }
    let f = m.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::Ptr, Type::Ptr], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(f));
        let ops = b.param(0);
        let counts = b.param(1);
        let totals = b.param(2);
        let zero = b.iconst(Type::I64, 0);
        let one = b.iconst(Type::I64, 1);
        let n = b.iconst(Type::I64, 64);
        let slot = b.iconst(Type::I64, 3);
        let total_slot = b.gep(totals, slot, 8, 0);
        b.counted_loop(zero, n, 1, |b, i| {
            let oaddr = b.gep(ops, i, 8, 0);
            let op = b.load(Type::I64, oaddr);
            let t = b.load(Type::I64, total_slot);
            let k = b.call(classify, vec![op], Some(Type::I64));
            let caddr = b.gep(counts, k, 8, 0);
            let c = b.load(Type::I64, caddr);
            let c2 = b.binop(BinOp::Add, c, op);
            b.store(caddr, c2);
            let t2 = b.binop(BinOp::Add, t, one);
            b.store(total_slot, t2);
        });
        let total = b.load(Type::I64, total_slot);
        b.ret(Some(total));
    }
    m.verify().unwrap();
    m
}

/// Prints the call graph (with SCC condensation) and the per-function
/// custody summary table the interprocedural consumers read.
fn print_interproc_tables(m: &Module) {
    let cg = CallGraph::compute(m);
    println!("call graph (bottom-up SCC order):");
    for scc in cg.sccs_bottom_up() {
        for &fid in scc {
            let f = m.function(fid);
            let callees: Vec<&str> = cg
                .callees(fid)
                .iter()
                .map(|&c| m.function(c).name.as_str())
                .collect();
            println!(
                "  scc{} {:<10} -> [{}]{}",
                cg.scc_id(fid),
                f.name,
                callees.join(", "),
                if cg.is_recursive(fid) {
                    "  (recursive)"
                } else {
                    ""
                }
            );
        }
    }

    let sums = ModuleSummaries::compute(m, &["main"]);
    println!("\nfunction summaries:");
    println!(
        "  {:<10} {:>6} {:>5} {:>5} {:<24} {:<10} reads/writes",
        "function", "kills", "frees", "evac", "params", "ret"
    );
    for (fid, f) in m.functions() {
        let s = sums.summary(fid);
        let params: Vec<String> = s.param_class.iter().map(|c| format!("{c:?}")).collect();
        println!(
            "  {:<10} {:>6} {:>5} {:>5} {:<24} {:<10} r:{} w:{}",
            f.name,
            s.kills_custody,
            s.may_free,
            s.may_evacuate,
            params.join(","),
            format!("{:?}", s.ret_class),
            s.reads.render(),
            s.writes.render(),
        );
    }
}

fn main() {
    let original = listing1_program();
    println!("================ UNMODIFIED PROGRAM ================");
    print!("{original}");

    // Naive transformation: guards on every heap access (no chunking).
    let mut naive = original.clone();
    let compiler = TrackFmCompiler::new(CompilerOptions {
        chunking: ChunkingMode::Off,
        ..Default::default()
    });
    let rep = compiler.compile(&mut naive, None);
    println!("\n================ NAIVE TRANSFORM (guards only) ================");
    println!(
        "; {} read guards, {} write guards, code x{:.2}",
        rep.read_guards,
        rep.write_guards,
        rep.code_size_ratio()
    );
    print!("{naive}");

    // Full pipeline: loop chunking replaces the per-element guard.
    let mut full = original.clone();
    let rep = TrackFmCompiler::default().compile(&mut full, None);
    println!("\n================ FULL PIPELINE (chunking + guards) ================");
    println!(
        "; {} chunk streams over {} accesses, {} loops chunked, {} plain guards, code x{:.2}",
        rep.chunking.streams,
        rep.chunking.chunked_accesses,
        rep.chunking.chunked_loops,
        rep.total_guards(),
        rep.code_size_ratio()
    );
    print!("{full}");

    println!("\nThings to look for:");
    println!("  * `tfm.runtime.init()` at the top of main (runtime initialization pass);");
    println!("  * `malloc`/`free` rewritten to `tfm.alloc`/`tfm.free` (libc transform);");
    println!("  * the naive version wraps the loop load in `tfm.guard.read`;");
    println!("  * the full pipeline hoists a `tfm.chunk.begin` into the preheader,");
    println!("    replaces the guard with `tfm.chunk.deref` (3-cycle boundary check),");
    println!("    and drops `tfm.chunk.end` on the loop exit edge — Fig. 5 of the paper.");

    // ------------------------------------------------------------------
    // The interprocedural view: a multi-function serving loop.
    // ------------------------------------------------------------------
    let serving = serving_program();
    println!("\n================ INTERPROCEDURAL PROGRAM ================");
    print!("{serving}");
    println!();
    print_interproc_tables(&serving);

    let mut compiled = serving.clone();
    let rep = TrackFmCompiler::new(CompilerOptions {
        chunking: ChunkingMode::Off,
        ..Default::default()
    })
    .compile(&mut compiled, None);
    println!("\n================ AFTER GUARDS + MOTION + ELISION ================");
    println!(
        "; {} guards inserted, {} hoisted, {} upgraded by motion, {} elided",
        rep.total_guards(),
        rep.motion.hoisted,
        rep.motion.upgraded,
        rep.elision.eliminated,
    );
    print!("{compiled}");

    println!("\nper-site attribution:");
    for s in &rep.motion.sites {
        println!(
            "  f{}:v{}  hoisted {} loop level(s) into a preheader",
            s.func, s.value, s.levels
        );
    }
    for s in &rep.motion.folds {
        println!(
            "  f{}:v{}  absorbed {} cross-block read guard(s) as a write guard",
            s.func, s.survivor, s.absorbed
        );
    }
    for s in &rep.elision.sites {
        println!(
            "  f{}:v{}  absorbed {} duplicate guard(s) by elision",
            s.func, s.survivor, s.absorbed
        );
    }
    // ------------------------------------------------------------------
    // The execution engine's view: the compiled module flattened into
    // dense register bytecode (what `ExecEngine::Bytecode` dispatches).
    // ------------------------------------------------------------------
    let prog = trackfm_suite::sim::bytecode::lower_module(&compiled);
    println!("\n================ REGISTER BYTECODE ================");
    println!("; the lowered form the bytecode engine executes: virtual");
    println!("; registers, fall-through blocks, fused superinstructions");
    println!("; (gep+load, gep+store, icmp+br) and 64-bit ALU opcodes.");
    print!(
        "{}",
        prog.disasm(&|site| {
            rep.guard_sites
                .iter()
                .find(|s| s.func == site.func() && s.value == site.value())
                .map(|s| s.label.clone())
        })
    );

    println!("\nInterprocedural things to look for:");
    println!("  * `classify` is custody-transparent (kills=false): guards stay live");
    println!("    across the call, so the total-slot read/write pair folds into one");
    println!("    write guard;");
    println!("  * that write guard's pointer is loop-invariant, so guard motion");
    println!("    hoists it into the preheader — one guard execution for the loop;");
    println!("  * the bucket counter access stays guarded in the loop (its pointer");
    println!("    is data-dependent), and the post-loop total load reuses custody.");
}
