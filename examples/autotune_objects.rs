//! Object-size autotuning (the paper's §3.2 future-work idea, implemented):
//! exhaustively recompile + probe each candidate object size and pick the
//! winner, for two workloads with opposite preferences.
//!
//! ```sh
//! cargo run --release --example autotune_objects
//! ```

use trackfm_suite::workloads::autotune::autotune_object_size;
use trackfm_suite::workloads::hashmap::{hashmap, HashmapParams};
use trackfm_suite::workloads::runner::RunConfig;
use trackfm_suite::workloads::stream::{sum, StreamParams};

fn main() {
    let stream_spec = sum(&StreamParams { elems: 512 << 10 });
    let map_spec = hashmap(&HashmapParams {
        keys: 50_000,
        lookups: 100_000,
        skew: 1.02,
        seed: 1,
    });

    for (name, spec, frac) in [
        ("STREAM sum (sequential)", &stream_spec, 0.25),
        ("Zipf hashmap (random, fine-grained)", &map_spec, 0.15),
    ] {
        println!(
            "\nautotuning `{name}` at {:.0}% local memory:",
            frac * 100.0
        );
        let report = autotune_object_size(spec, &RunConfig::trackfm(frac), None);
        for (size, cycles) in &report.trials {
            let marker = if *size == report.chosen {
                "  <== chosen"
            } else {
                ""
            };
            println!("  {size:>5} B objects: {cycles:>12} cycles{marker}");
        }
        println!(
            "  best-over-worst: {:.2}x — \"the small search space suggests that an\n\
             \u{20}  autotuning approach is feasible\" (§3.2), and indeed it is.",
            report.best_over_worst()
        );
    }
}
