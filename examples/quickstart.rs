//! Quickstart: recompile an unmodified program for far memory and run it.
//!
//! This is the paper's core pitch end to end: take the Listing-1 sum loop
//! (written with no far-memory awareness at all), pass it through the
//! TrackFM compiler, and run it on a far-memory cluster where only 25% of
//! the working set fits locally — then compare against kernel paging
//! (Fastswap) and dump the unified telemetry run report, human and JSON.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trackfm_suite::compiler::TrackFmCompiler;
use trackfm_suite::ir::{BinOp, CastOp, FunctionBuilder, Module, Signature, Type};
use trackfm_suite::workloads::runner::{execute_with_report, RunConfig};
use trackfm_suite::workloads::spec::{ArgSpec, InputData, WorkloadSpec};

fn main() {
    // ------------------------------------------------------------------
    // 1. An *unmodified* program: sum over a heap array of 32-bit ints.
    // ------------------------------------------------------------------
    let elems: usize = 1 << 20; // 4 MiB working set
    let mut module = Module::new("quickstart");
    let main_fn = module.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(module.function_mut(main_fn));
        let arr = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(Type::I64, 0);
        let sum_slot = b.alloca(8, 8);
        b.store(sum_slot, zero);
        b.counted_loop(zero, n, 1, |b, i| {
            let addr = b.gep(arr, i, 4, 0);
            let x = b.load(Type::I32, addr);
            let x64 = b.cast(CastOp::Sext, x, Type::I64);
            let s = b.load(Type::I64, sum_slot);
            let s2 = b.binop(BinOp::Add, s, x64);
            b.store(sum_slot, s2);
        });
        let out = b.load(Type::I64, sum_slot);
        b.ret(Some(out));
    }
    module.verify().expect("well-formed input");

    // ------------------------------------------------------------------
    // 2. Recompile for far memory — this is ALL a user has to do.
    // ------------------------------------------------------------------
    let report = TrackFmCompiler::default().compile(&mut module.clone(), None);
    println!("== compile report ==");
    println!(
        "  guards inserted: {} | chunk streams: {} | code size x{:.2} | {} guard sites",
        report.total_guards(),
        report.chunking.streams,
        report.code_size_ratio(),
        report.guard_sites.len()
    );

    // ------------------------------------------------------------------
    // 3. Run on the simulated far-memory cluster: 25% local memory.
    //    The runner compiles, executes, checks semantics, and collects
    //    telemetry into a unified run report.
    // ------------------------------------------------------------------
    let data: Vec<u32> = (0..elems as u32).map(|i| i % 1000).collect();
    let expected: u64 = data.iter().map(|&v| v as u64).sum();
    let spec = WorkloadSpec {
        name: "quickstart-sum".into(),
        module,
        inputs: vec![InputData::U32(data)],
        args: vec![ArgSpec::Input(0), ArgSpec::Const(elems as i64)],
        expected: Some(expected),
    };
    let working_set = spec.working_set();

    let (tfm, tfm_report) = execute_with_report(&spec, &RunConfig::trackfm(0.25));
    println!("== run ==");
    println!("  result: {} (expected {})", tfm.result.ret, expected);
    println!(
        "  simulated time: {:.2} ms at 2.4 GHz ({} cycles)",
        tfm.result.seconds_2_4ghz() * 1e3,
        tfm.result.stats.cycles
    );
    println!(
        "  network: {} bytes over the wire ({:.2}x working set)",
        tfm.result.bytes_transferred(),
        tfm.result.bytes_transferred() as f64 / working_set as f64
    );

    // The same unmodified program under kernel paging, for contrast: the
    // report's `pager` section replaces `runtime` (faults, not guards).
    let (fsw, fsw_report) = execute_with_report(&spec, &RunConfig::fastswap(0.25));
    println!(
        "  vs fastswap: {:.2} ms, {} major faults",
        fsw.result.seconds_2_4ghz() * 1e3,
        fsw.result.pager.map(|p| p.major_faults).unwrap_or(0)
    );

    // ------------------------------------------------------------------
    // 4. The unified run report: every subsystem's counters, latency and
    //    transfer distributions with p50/p90/p99, and the hottest guard
    //    sites by stall cycles — human-readable, then machine-readable.
    // ------------------------------------------------------------------
    print!("\n{tfm_report}");
    print!("\n{fsw_report}");
    println!("\n== run report (JSON) ==");
    println!("{}", tfm_report.to_json().to_string_pretty());

    println!("\nThe program was never modified — it was merely recompiled. (§1)");
}
