//! Quickstart: recompile an unmodified program for far memory and run it.
//!
//! This is the paper's core pitch end to end: take the Listing-1 sum loop
//! (written with no far-memory awareness at all), pass it through the
//! TrackFM compiler, and run it on a far-memory cluster where only 25% of
//! the working set fits locally.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trackfm_suite::compiler::{CostModel, TrackFmCompiler};
use trackfm_suite::ir::{BinOp, CastOp, FunctionBuilder, Module, Signature, Type};
use trackfm_suite::runtime::{FarMemoryConfig, PrefetchConfig};
use trackfm_suite::sim::{Machine, TrackFmMem};

fn main() {
    // ------------------------------------------------------------------
    // 1. An *unmodified* program: sum over a heap array of 32-bit ints.
    // ------------------------------------------------------------------
    let elems: usize = 1 << 20; // 4 MiB working set
    let mut module = Module::new("quickstart");
    let main_fn = module.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(module.function_mut(main_fn));
        let arr = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(Type::I64, 0);
        let sum_slot = b.alloca(8, 8);
        b.store(sum_slot, zero);
        b.counted_loop(zero, n, 1, |b, i| {
            let addr = b.gep(arr, i, 4, 0);
            let x = b.load(Type::I32, addr);
            let x64 = b.cast(CastOp::Sext, x, Type::I64);
            let s = b.load(Type::I64, sum_slot);
            let s2 = b.binop(BinOp::Add, s, x64);
            b.store(sum_slot, s2);
        });
        let out = b.load(Type::I64, sum_slot);
        b.ret(Some(out));
    }
    module.verify().expect("well-formed input");

    // ------------------------------------------------------------------
    // 2. Recompile for far memory — this is ALL a user has to do.
    // ------------------------------------------------------------------
    let report = TrackFmCompiler::default().compile(&mut module, None);
    println!("== compile report ==");
    println!(
        "  guards inserted: {} | chunk streams: {} | code size x{:.2}",
        report.total_guards(),
        report.chunking.streams,
        report.code_size_ratio()
    );

    // ------------------------------------------------------------------
    // 3. Run on the simulated far-memory cluster: 25% local memory.
    // ------------------------------------------------------------------
    let working_set = (elems * 4) as u64;
    let cfg = FarMemoryConfig {
        heap_size: (working_set * 2).next_multiple_of(4096),
        object_size: 4096,
        local_budget: working_set / 4,
        link: trackfm_suite::net::LinkParams::tcp_25g(),
        prefetch: PrefetchConfig::default(),
    };
    let heap = cfg.heap_size;
    let mem = TrackFmMem::new(cfg, CostModel::default());
    let mut machine = Machine::new(&module, mem, CostModel::default(), heap);

    let data: Vec<u32> = (0..elems as u32).map(|i| i % 1000).collect();
    let expected: u64 = data.iter().map(|&v| v as u64).sum();
    let arr = machine.setup_alloc(working_set);
    machine.setup_write_u32s(arr, &data);
    machine.finish_setup(false);

    let result = machine.run("main", &[arr, elems as u64]).expect("runs clean");

    println!("== run ==");
    println!("  result: {} (expected {})", result.ret, expected);
    assert_eq!(result.ret, expected, "far memory must not change semantics");
    println!(
        "  simulated time: {:.2} ms at 2.4 GHz ({} cycles)",
        result.seconds_2_4ghz() * 1e3,
        result.stats.cycles
    );
    println!(
        "  guards: {} fast / {} slow | chunk: {} boundary checks, {} crossings",
        result.stats.guards_fast,
        result.stats.slow_guards(),
        result.stats.boundary_checks,
        result.stats.locality_guards
    );
    if let Some(rt) = result.runtime {
        println!("  runtime: {rt}");
    }
    println!(
        "  network: {} bytes over the wire ({:.2}x working set)",
        result.bytes_transferred(),
        result.bytes_transferred() as f64 / working_set as f64
    );
    println!("\nThe program was never modified — it was merely recompiled. (§1)");
}
