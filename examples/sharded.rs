//! Sharded far memory: spread the far heap over four remote nodes, then
//! take one of them down mid-run.
//!
//! The paper's evaluation uses a single remote node; this example swaps the
//! backend for a four-way sharded fabric. Objects route to shards by a
//! deterministic placement hash, each shard has its own bandwidth queue,
//! fault schedule, and health tracker — so when shard 2 goes dark for an
//! eighth of the run, the other three keep serving at full speed, the
//! degradation stays confined to the sick shard, and the answer never moves.
//!
//! ```sh
//! cargo run --release --example sharded
//! ```

use trackfm_suite::net::{BackendSpec, FaultPlan};
use trackfm_suite::telemetry::EventKind;
use trackfm_suite::workloads::runner::{execute, execute_with_report, RunConfig};
use trackfm_suite::workloads::stream::{self, StreamParams};

const SHARDS: u32 = 4;
const SICK: u32 = 2;

fn main() {
    // ------------------------------------------------------------------
    // 1. A healthy sharded rehearsal: learn the run length, so the outage
    //    can be parked across its second quarter.
    // ------------------------------------------------------------------
    let spec = stream::sum(&StreamParams { elems: 256 << 10 });
    let cfg = RunConfig::trackfm(0.25).with_shards(SHARDS);
    let clean = execute(&spec, &cfg);
    let total = clean.result.stats.cycles;
    println!("== healthy {SHARDS}-shard run ==");
    println!("  result {} in {} cycles", clean.result.ret, total);
    for (i, snap) in clean.result.shards.iter().enumerate() {
        println!(
            "  shard{i}: {} fetches, {} KiB moved",
            snap.stats.fetches,
            snap.stats.total_bytes() >> 10
        );
    }

    // ------------------------------------------------------------------
    // 2. The same run with shard 2 scripted offline over [start, end):
    //    the fault plan is pinned to one shard, the rest stay flawless.
    // ------------------------------------------------------------------
    let (start, end) = (total / 4, total / 4 + total / 8);
    let cfg = RunConfig::trackfm(0.25)
        .with_backend(BackendSpec::sharded(SHARDS).with_fault_shard(SICK))
        .with_faults(FaultPlan::none().with_outage(start, end));
    println!("\n== shard {SICK} dark over [{start}, {end}) ==");
    let (out, rep) = execute_with_report(&spec, &cfg);

    assert_eq!(
        out.result.ret, clean.result.ret,
        "an outage must not change the answer"
    );
    println!(
        "  result {} — identical answer, {} cycles (was {})",
        out.result.ret, out.result.stats.cycles, total
    );

    // ------------------------------------------------------------------
    // 3. Fault confinement, shard by shard.
    // ------------------------------------------------------------------
    println!("\n== per-shard ledgers ==");
    for (i, snap) in out.result.shards.iter().enumerate() {
        println!(
            "  shard{i}: {} fetches, {} faults, ewma {} ppm{}{}",
            snap.stats.fetches,
            snap.stats.faults,
            snap.health.fault_rate_ppm(),
            if snap.health.is_degraded() {
                ", DEGRADED"
            } else {
                ""
            },
            if i == SICK as usize {
                "   <- scripted outage"
            } else {
                ""
            },
        );
    }
    let snap = out.telemetry.as_ref().unwrap();
    println!(
        "  degraded {} time(s), recovered {} time(s) — shard {SICK} only; \
         the other shards never tripped",
        snap.count(EventKind::Degraded),
        snap.count(EventKind::Recovered)
    );

    // ------------------------------------------------------------------
    // 4. The unified run report: the backend in the metadata, one counter
    //    section per shard, faults exactly where the script put them.
    // ------------------------------------------------------------------
    print!("\n{rep}");

    println!("\nSame seed, same placement, same outage: rerun this binary and every shard ledger repeats.");
}
