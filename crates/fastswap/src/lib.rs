//! # tfm-fastswap — the kernel-paging baseline (Fastswap stand-in)
//!
//! Fastswap (Amaro et al., EuroSys '20) is the paper's kernel-based
//! comparator: a modified Linux swap subsystem that pages 4 KB pages to a
//! remote server over one-sided RDMA. Its performance character — the one the
//! paper's figures rely on — comes from three properties:
//!
//! 1. every miss costs a **hardware page fault plus kernel handling**
//!    (~1.3 K cycles even when the data is local, ~34 K when remote,
//!    Table 2);
//! 2. transfers happen at the **architected page size**, so fine-grained
//!    access patterns suffer heavy I/O amplification (Figs. 13/16);
//! 3. under memory pressure, reclaim (cgroup eviction + dirty writeback)
//!    adds work on the fault path (§4.1: "mapping and cgroups memory
//!    reclamation").
//!
//! [`Pager`] reproduces all three on the simulated cycle timeline: a page
//! table over the heap address range, CLOCK reclamation with dirty
//! writebacks, and per-fault cost accounting over an RDMA
//! [`tfm_net::Link`]. The *untransformed* program runs against it — kernel
//! paging needs no compiler support, which is exactly its appeal.
//!
//! ```
//! use tfm_fastswap::{Pager, PagerConfig};
//! let mut p = Pager::new(PagerConfig { local_budget: 8 * 4096, ..PagerConfig::default() });
//! // First touch of fresh memory: minor fault (kernel cost only).
//! let minor = p.access(0x1000, 8, true, 0);
//! assert_eq!(minor, p.config().kernel_fault_cycles);
//! // Page it out, touch again: major fault, ~34K cycles over RDMA.
//! p.evacuate_all(minor);
//! let major = p.access(0x1000, 8, false, minor);
//! assert!(major > 30_000);
//! // Third touch: resident, no fault cost.
//! assert_eq!(p.access(0x1008, 8, false, minor + major), 0);
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use tfm_net::{
    build_backend, drive_retries, BackendSpec, FaultPlan, LinkFault, LinkParams, RemoteBackend,
    RetryOps, ShardSnapshot, ShardState, TransferStats,
};
use tfm_telemetry::{EventKind, MergeStats, Span, SpanKind, StatGroup, Telemetry};

/// The architected page size Fastswap is bound to.
pub const PAGE_SIZE: u64 = 4096;
const PAGE_SHIFT: u32 = 12;

/// Pager configuration.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PagerConfig {
    /// Local memory budget in bytes (cgroup limit in Fastswap terms).
    pub local_budget: u64,
    /// Kernel cycles to handle a fault when the page is already in the swap
    /// cache / local (Table 2: 1.3 K cycles).
    pub kernel_fault_cycles: u64,
    /// Extra kernel cycles per reclaimed page on the fault path (cgroup
    /// reclaim + unmap).
    pub reclaim_cycles: u64,
    /// RDMA backend parameters.
    pub link: LinkParams,
    /// Fault-injection schedule for the link ([`FaultPlan::none`] = the
    /// flawless fabric).
    pub faults: FaultPlan,
    /// Remote-memory topology: one node (the default) or N sharded nodes;
    /// pages route to shards by page number.
    pub backend: BackendSpec,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig {
            local_budget: 16 << 20,
            kernel_fault_cycles: 1_300,
            reclaim_cycles: 400,
            link: LinkParams::rdma_25g(),
            faults: FaultPlan::none(),
            backend: BackendSpec::SingleNode,
        }
    }
}

#[derive(Copy, Clone, Default)]
struct PageMeta {
    resident: bool,
    dirty: bool,
    referenced: bool,
}

/// Fault/reclaim counters.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PagerStats {
    /// Faults served from remote memory (RDMA fetch).
    pub major_faults: u64,
    /// Faults on pages that were never paged out (first touch of fresh
    /// memory): kernel cost only, no transfer.
    pub minor_faults: u64,
    /// Pages reclaimed under pressure.
    pub reclaims: u64,
    /// Reclaimed pages that were dirty (written back).
    pub writebacks: u64,
    /// Major faults re-driven after the RDMA read faulted: each retry
    /// charges another round of kernel fault handling on top of the link's
    /// detection timeout.
    pub fault_retries: u64,
    /// Restarted shards the swap device re-registered with (one per
    /// Recovering → Up transition it drove).
    pub recoveries: u64,
    /// Pages re-copied onto a restarted shard from a surviving replica
    /// during re-registration.
    pub resynced_pages: u64,
    /// Acknowledged page writebacks with no surviving copy after a cold
    /// restart (only possible unreplicated).
    pub lost_pages: u64,
    /// Faults that joined an already-in-flight RDMA read for the same page
    /// instead of issuing their own (multi-core in-flight page table;
    /// always zero on the synchronous single-core machine).
    pub fault_joins: u64,
}

impl StatGroup for PagerStats {
    fn group_name(&self) -> &'static str {
        "pager"
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("major_faults", self.major_faults),
            ("minor_faults", self.minor_faults),
            ("reclaims", self.reclaims),
            ("writebacks", self.writebacks),
            ("fault_retries", self.fault_retries),
            ("recoveries", self.recoveries),
            ("resynced_pages", self.resynced_pages),
            ("lost_pages", self.lost_pages),
            ("fault_joins", self.fault_joins),
        ]
    }
}

impl MergeStats for PagerStats {
    fn merge(&mut self, other: &Self) {
        self.major_faults += other.major_faults;
        self.minor_faults += other.minor_faults;
        self.reclaims += other.reclaims;
        self.writebacks += other.writebacks;
        self.fault_retries += other.fault_retries;
        self.recoveries += other.recoveries;
        self.resynced_pages += other.resynced_pages;
        self.lost_pages += other.lost_pages;
        self.fault_joins += other.fault_joins;
    }
}

/// The page-granularity far-memory pager.
#[derive(Clone)]
pub struct Pager {
    cfg: PagerConfig,
    pages: HashMap<u64, PageMeta>,
    /// Pages that have a remote copy (have been written back at least once
    /// or fetched). Pages outside this set fault "minor" on first touch.
    ever_evicted: HashMap<u64, ()>,
    clock: VecDeque<u64>,
    resident_pages: u64,
    backend: Box<dyn RemoteBackend>,
    stats: PagerStats,
    tel: Telemetry,
    /// Cached `backend.failover_active()`: gates shard-restart polling so
    /// crash-free configurations keep the legacy fault path bit-identical.
    failover_active: bool,
    /// Split issue/complete fault handling (multi-core scheduler only):
    /// major faults issue their RDMA read and record the completion cycle
    /// in `inflight` instead of stalling until it; later touches of the
    /// page either join the pending read or find it landed. Off (the
    /// synchronous path) by default.
    async_fetch: bool,
    /// Pages with an issued-but-unconsumed RDMA read: page → completion
    /// cycle. Always empty when `async_fetch` is off.
    inflight: BTreeMap<u64, u64>,
    /// Latest completion cycle of any read issued asynchronously since the
    /// scheduler last drained it — the core is charged to the issue point,
    /// so request latency learns about the delivery through this horizon.
    completion_horizon: u64,
}

impl Pager {
    /// Creates a pager with an empty resident set.
    pub fn new(cfg: PagerConfig) -> Self {
        let backend = build_backend(cfg.link, cfg.backend, cfg.faults);
        let failover_active = backend.failover_active();
        Pager {
            pages: HashMap::new(),
            ever_evicted: HashMap::new(),
            clock: VecDeque::new(),
            resident_pages: 0,
            backend,
            stats: PagerStats::default(),
            tel: Telemetry::disabled(),
            failover_active,
            async_fetch: false,
            inflight: BTreeMap::new(),
            completion_horizon: 0,
            cfg,
        }
    }

    /// Switches major faults to the split issue/complete protocol (used by
    /// the multi-core scheduler). Off, the pager is the synchronous
    /// single-core baseline, bit-identical to before the split existed.
    pub fn set_async_fetch(&mut self, on: bool) {
        self.async_fetch = on;
    }

    /// Number of pages with an issued-but-unconsumed RDMA read.
    pub fn inflight_pages(&self) -> usize {
        self.inflight.len()
    }

    /// Drains the completion horizon: the latest completion cycle of any
    /// RDMA read issued asynchronously since the last call (0 if none).
    pub fn take_completion_horizon(&mut self) -> u64 {
        std::mem::take(&mut self.completion_horizon)
    }

    /// Attaches a telemetry sink (shared with the backend's links): fault,
    /// reclaim and writeback events, fault-service latency, and page
    /// residency lifetimes flow there.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.backend.set_telemetry(tel.clone());
        self.tel = tel;
    }

    /// The configuration.
    pub fn config(&self) -> &PagerConfig {
        &self.cfg
    }

    /// Fault/reclaim counters.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Bytes moved over the backend, aggregated over all shards (4 KB
    /// granularity — the I/O-amplification ledger for Figs. 13/16).
    pub fn transfer_stats(&self) -> TransferStats {
        self.backend.stats()
    }

    /// The remote backend (shard topology, per-shard ledgers and health).
    pub fn backend(&self) -> &dyn RemoteBackend {
        self.backend.as_ref()
    }

    /// Number of remote nodes behind the pager.
    pub fn shard_count(&self) -> usize {
        self.backend.shard_count()
    }

    /// Per-shard end-of-run counters, for reports.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.backend.shard_snapshots()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages * PAGE_SIZE
    }

    /// Clears counters and every shard's occupancy horizon (after benchmark
    /// setup).
    pub fn reset_stats(&mut self) {
        self.stats = PagerStats::default();
        self.backend.reset_stats();
    }

    /// Simulates an access of `size` bytes at `addr`; returns the cycles the
    /// faulting thread stalls (0 when all touched pages are resident).
    /// Accesses spanning page boundaries fault on each page.
    pub fn access(&mut self, addr: u64, size: u64, write: bool, now: u64) -> u64 {
        let first = addr >> PAGE_SHIFT;
        let last = (addr + size.max(1) - 1) >> PAGE_SHIFT;
        let mut cycles = 0;
        for page in first..=last {
            cycles += self.touch_page(page, write, now + cycles);
        }
        cycles
    }

    /// Traced kernel-round leaf: one charge of `kernel_fault_cycles`
    /// starting at `at` (the initial fault entry or a re-drive after a
    /// faulted RDMA read; `attempt` is 0 for the initial round).
    fn kernel_leaf(&self, at: u64, attempt: u64) {
        self.tel.span_leaf(Span {
            kind: SpanKind::Kernel,
            start: at,
            end: at + self.cfg.kernel_fault_cycles,
            parent: Span::NO_PARENT,
            arg: attempt,
            wait: 0,
            shard: Span::NO_SHARD,
            fault: Span::NO_FAULT,
            core: Span::NO_CORE,
        });
    }

    /// The kernel's shard re-registration path: when a crashed memory
    /// server restarts, the swap device reconnects, re-copies every page
    /// the restarted shard should hold from a surviving replica (Fastswap
    /// has no redo log of its own — the backend's acknowledgement ledger
    /// is the source of truth), and puts the shard back in service.
    fn service_failover(&mut self, now: u64) {
        if !self.failover_active {
            return;
        }
        self.backend.poll(now);
        for s in 0..self.backend.shard_count() {
            if self.backend.shard_state(s) == ShardState::Recovering {
                self.tel.emit(now, EventKind::ShardRecovering, s as u64);
                let (resynced, lost) = self.backend.recover_shard(s, PAGE_SIZE, now);
                self.stats.recoveries += 1;
                self.stats.resynced_pages += resynced;
                self.stats.lost_pages += lost;
                self.tel.emit(now, EventKind::ShardUp, s as u64);
            }
        }
    }

    fn touch_page(&mut self, page: u64, write: bool, now: u64) -> u64 {
        // Split-protocol path: an earlier fault may have issued this page's
        // RDMA read without stalling for it. A touch after the completion
        // cycle silently consumes the entry; before it, the toucher joins
        // the pending read and stalls only for its remaining latency.
        let pending = if self.async_fetch {
            self.inflight.get(&page).copied()
        } else {
            None
        };
        if let Some(done) = pending {
            if now >= done {
                self.inflight.remove(&page);
            }
        }
        let meta = self.pages.entry(page).or_default();
        if meta.resident {
            meta.referenced = true;
            meta.dirty |= write;
            self.tel.timeline_access(now, false);
            if let Some(done) = pending {
                if now < done {
                    // Join the pending read: no second transfer, and the
                    // joining core moves on too — the shared completion
                    // cycle reaches the scheduler through the horizon.
                    self.stats.fault_joins += 1;
                    self.tel.emit(now, EventKind::FetchJoin, page);
                    self.completion_horizon = self.completion_horizon.max(done);
                    return 0;
                }
            }
            return 0;
        }
        self.tel.timeline_access(now, true);
        // Fault path: kernel handling + (for paged-out pages) an RDMA fetch,
        // plus any reclaim work needed to make room. Provisionally traced as
        // a major fault; reclassified to MinorFault if the kernel resolves
        // it with a zero page.
        let sp = self.tel.span_begin(SpanKind::MajorFault, page, now);
        self.service_failover(now);
        let mut cycles = self.cfg.kernel_fault_cycles;
        self.kernel_leaf(now, 0);
        cycles += self.make_room(now + cycles);
        let had_remote_copy = self.ever_evicted.contains_key(&page);
        if had_remote_copy {
            // The RDMA read can fault; the kernel re-drives the fault after
            // the timeout, charging another round of fault handling each
            // time (there is no backoff in the kernel fast path).
            let mut ops = PagerRetry { pager: self, page };
            let r = drive_retries(&mut ops, now + cycles)
                .expect("the kernel re-drives forever; it never abandons a fault");
            cycles = r.issued_at - now;
            if self.async_fetch {
                // Issue/complete split: record the completion cycle and
                // return without stalling for the wire; a later touch (any
                // core) joins or consumes it.
                self.inflight.insert(page, r.done);
                self.completion_horizon = self.completion_horizon.max(r.done);
            } else {
                cycles += r.done.saturating_sub(now + cycles);
            }
            self.stats.major_faults += 1;
            self.tel
                .span_finish(sp, now + cycles, SpanKind::MajorFault, true);
            if self.tel.is_enabled() {
                self.tel.emit(now, EventKind::MajorFault, page);
                self.tel.record_fetch_latency(cycles);
            }
        } else {
            // Fresh page: the kernel just maps a zero page.
            self.stats.minor_faults += 1;
            self.tel
                .span_finish(sp, now + cycles, SpanKind::MinorFault, true);
            self.tel.emit(now, EventKind::MinorFault, page);
        }
        let meta = self.pages.entry(page).or_default();
        meta.resident = true;
        meta.referenced = true;
        meta.dirty = write || !had_remote_copy;
        self.resident_pages += 1;
        self.clock.push_back(page);
        self.tel.note_resident(page, now);
        cycles
    }

    /// CLOCK reclamation down to the budget; returns reclaim cycles charged
    /// to the faulting thread.
    fn make_room(&mut self, now: u64) -> u64 {
        let budget_pages = self.cfg.local_budget / PAGE_SIZE;
        let mut cycles = 0;
        let mut visits = self.clock.len().saturating_mul(2) + 1;
        while self.resident_pages + 1 > budget_pages && visits > 0 {
            visits -= 1;
            let Some(page) = self.clock.pop_front() else {
                break;
            };
            let Some(meta) = self.pages.get_mut(&page) else {
                continue;
            };
            if !meta.resident {
                continue; // stale entry
            }
            if meta.referenced {
                meta.referenced = false;
                self.clock.push_back(page);
                continue;
            }
            if self.async_fetch && self.inflight.contains_key(&page) {
                // The page's RDMA read is still in flight; reclaiming it now
                // would tear the transfer. Give it a second chance instead.
                self.clock.push_back(page);
                continue;
            }
            // Reclaim.
            let dirty = meta.dirty;
            meta.resident = false;
            meta.dirty = false;
            self.resident_pages -= 1;
            self.ever_evicted.insert(page, ());
            cycles += self.cfg.reclaim_cycles;
            self.stats.reclaims += 1;
            self.tel.span_leaf(Span {
                kind: SpanKind::Kernel,
                start: now + cycles - self.cfg.reclaim_cycles,
                end: now + cycles,
                parent: Span::NO_PARENT,
                arg: page,
                wait: 0,
                shard: Span::NO_SHARD,
                fault: Span::NO_FAULT,
                core: Span::NO_CORE,
            });
            if dirty {
                self.backend.writeback(page, PAGE_SIZE, now + cycles);
                self.stats.writebacks += 1;
                self.tel.emit(now + cycles, EventKind::Writeback, page);
            }
            if self.tel.is_enabled() {
                self.tel.emit(now + cycles, EventKind::Eviction, page);
                self.tel.note_evicted(page, now + cycles);
            }
        }
        cycles
    }

    /// Pages everything out (dirty pages write back). Benchmarks call this
    /// after setup for a cold start, then [`Pager::reset_stats`].
    pub fn evacuate_all(&mut self, now: u64) {
        while let Some(page) = self.clock.pop_front() {
            // Any pending read has logically landed by a full evacuation
            // point (benchmarks call this between phases).
            self.inflight.remove(&page);
            let Some(meta) = self.pages.get_mut(&page) else {
                continue;
            };
            if !meta.resident {
                continue;
            }
            let dirty = meta.dirty;
            meta.resident = false;
            meta.dirty = false;
            meta.referenced = false;
            self.resident_pages -= 1;
            self.ever_evicted.insert(page, ());
            self.stats.reclaims += 1;
            if dirty {
                self.backend.writeback(page, PAGE_SIZE, now);
                self.stats.writebacks += 1;
                self.tel.emit(now, EventKind::Writeback, page);
            }
            if self.tel.is_enabled() {
                self.tel.emit(now, EventKind::Eviction, page);
                self.tel.note_evicted(page, now);
            }
        }
    }
}

/// [`RetryOps`] adapter for the kernel fault path: issue over the RDMA
/// backend; on each fault, charge another round of kernel fault handling at
/// the detection cycle and re-drive (the kernel fast path has no backoff
/// and never gives up).
struct PagerRetry<'a> {
    pager: &'a mut Pager,
    page: u64,
}

impl RetryOps for PagerRetry<'_> {
    fn issue(&mut self, at: u64, _attempts: u32) -> Result<u64, LinkFault> {
        self.pager.backend.issue_transfer(self.page, PAGE_SIZE, at)
    }

    fn on_fault(&mut self, attempts: u32, fault: LinkFault) -> Option<u64> {
        self.pager.stats.fault_retries += 1;
        self.pager
            .tel
            .emit(fault.detected_at, EventKind::Retry, attempts as u64);
        self.pager.kernel_leaf(fault.detected_at, attempts as u64);
        self.pager.service_failover(fault.detected_at);
        Some(fault.detected_at + self.pager.cfg.kernel_fault_cycles)
    }

    fn describe_dead(&self, attempts: u32) -> String {
        format!("link permanently dead: {attempts} consecutive faults on one page fault")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager(pages: u64) -> Pager {
        Pager::new(PagerConfig {
            local_budget: pages * PAGE_SIZE,
            ..PagerConfig::default()
        })
    }

    #[test]
    fn first_touch_is_minor_fault() {
        let mut p = pager(8);
        let c = p.access(0, 8, true, 0);
        assert_eq!(c, p.config().kernel_fault_cycles);
        assert_eq!(p.stats().minor_faults, 1);
        assert_eq!(p.stats().major_faults, 0);
        assert_eq!(p.transfer_stats().bytes_fetched, 0);
    }

    #[test]
    fn remote_fault_costs_match_table2() {
        let mut p = pager(8);
        p.access(0, 8, true, 0);
        p.evacuate_all(0);
        p.reset_stats();
        let c = p.access(0, 8, false, 0);
        assert!((32_000..36_000).contains(&c), "remote fault = {c}");
        assert_eq!(p.stats().major_faults, 1);
        assert_eq!(p.transfer_stats().bytes_fetched, PAGE_SIZE);
    }

    #[test]
    fn resident_access_is_free() {
        let mut p = pager(8);
        p.access(0, 8, false, 0);
        assert_eq!(p.access(100, 8, false, 0), 0);
        assert_eq!(p.access(4000, 8, false, 0), 0);
    }

    #[test]
    fn page_spanning_access_faults_twice() {
        let mut p = pager(8);
        let c = p.access(4090, 16, false, 0);
        assert_eq!(p.stats().minor_faults, 2);
        assert_eq!(c, 2 * p.config().kernel_fault_cycles);
    }

    #[test]
    fn io_amplification_is_page_granular() {
        // Touch one byte in each of 16 distinct cold (paged-out) pages: 64 KB
        // fetched for 16 bytes of use — the Fig. 13 mechanism.
        let mut p = pager(32);
        for i in 0..16u64 {
            p.access(i * PAGE_SIZE, 1, true, 0);
        }
        p.evacuate_all(0);
        p.reset_stats();
        let mut now = 0;
        for i in 0..16u64 {
            now += p.access(i * PAGE_SIZE, 1, false, now);
        }
        assert_eq!(p.transfer_stats().bytes_fetched, 16 * PAGE_SIZE);
    }

    #[test]
    fn reclaim_under_pressure_writes_back_dirty_pages() {
        let mut p = pager(2);
        let mut now = 0;
        for i in 0..4u64 {
            now += p.access(i * PAGE_SIZE, 8, true, now);
        }
        assert!(p.resident_bytes() <= 3 * PAGE_SIZE);
        assert!(p.stats().reclaims >= 2);
        assert!(p.stats().writebacks >= 2, "fresh pages are dirty");
        // Re-touching a reclaimed page is now a major fault.
        p.reset_stats();
        now += p.access(0, 8, false, now);
        assert_eq!(p.stats().major_faults, 1);
        let _ = now;
    }

    #[test]
    fn temporal_locality_amortizes_faults() {
        // The paper's observation (§5): with repeated access, page fault
        // costs amortize. 1 fault then N free accesses.
        let mut p = pager(8);
        p.access(0, 8, true, 0);
        p.evacuate_all(0);
        p.reset_stats();
        let mut total = p.access(0, 8, false, 0);
        for _ in 0..1000 {
            total += p.access(8, 8, false, total);
        }
        assert_eq!(p.stats().major_faults, 1);
        assert!(total < 40_000);
    }

    #[test]
    fn default_config_has_no_fault_plan() {
        assert_eq!(PagerConfig::default().faults, FaultPlan::none());
        assert!(!PagerConfig::default().faults.is_active());
    }

    #[test]
    fn major_faults_retry_and_charge_kernel_cost() {
        let mk = || {
            Pager::new(PagerConfig {
                local_budget: 32 * PAGE_SIZE,
                faults: FaultPlan::drops(0xFA57, 500_000), // 50% drops
                ..PagerConfig::default()
            })
        };
        let run = |p: &mut Pager| {
            for i in 0..16u64 {
                p.access(i * PAGE_SIZE, 8, true, 0);
            }
            p.evacuate_all(0);
            p.reset_stats();
            let mut now = 0;
            for i in 0..16u64 {
                now += p.access(i * PAGE_SIZE, 8, false, now);
            }
            (p.stats(), p.transfer_stats(), now)
        };
        let mut p = mk();
        let (stats, transfer, elapsed) = run(&mut p);
        assert_eq!(stats.major_faults, 16, "every page still lands");
        assert!(stats.fault_retries > 0, "a 50% plan must force retries");
        assert_eq!(transfer.faults, stats.fault_retries);
        assert_eq!(transfer.bytes_fetched, 16 * PAGE_SIZE);
        // Each retry costs at least a timeout + another kernel fault.
        let flawless = {
            let mut q = Pager::new(PagerConfig {
                local_budget: 32 * PAGE_SIZE,
                ..PagerConfig::default()
            });
            run(&mut q).2
        };
        assert!(elapsed > flawless, "{elapsed} vs {flawless}");
        // Determinism: the same seed reproduces the exact same run.
        let mut p2 = mk();
        assert_eq!(run(&mut p2), (stats, transfer, elapsed));
    }

    #[test]
    fn sharded_pager_spreads_pages_and_matches_single_node_at_one_shard() {
        use tfm_net::PlacementPolicy;
        let run = |backend: BackendSpec| {
            let mut p = Pager::new(PagerConfig {
                local_budget: 32 * PAGE_SIZE,
                backend,
                ..PagerConfig::default()
            });
            for i in 0..16u64 {
                p.access(i * PAGE_SIZE, 8, true, 0);
            }
            p.evacuate_all(0);
            p.reset_stats();
            let mut now = 0;
            for i in 0..16u64 {
                now += p.access(i * PAGE_SIZE, 8, false, now);
            }
            (p.stats(), p.transfer_stats(), now, p.shard_snapshots())
        };
        // One shard is cost-identical to the single-node backend.
        let single = run(BackendSpec::single());
        let one = run(BackendSpec::sharded(1));
        assert_eq!((single.0, single.1, single.2), (one.0, one.1, one.2));
        // Four interleaved shards split the refill traffic evenly.
        let spec = BackendSpec::sharded(4).with_placement(PlacementPolicy::Interleave);
        let (stats, transfer, _, snaps) = run(spec);
        assert_eq!(stats.major_faults, 16);
        assert_eq!(transfer.bytes_fetched, 16 * PAGE_SIZE);
        for (s, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.stats.fetches, 4, "shard {s} serves its quarter");
        }
    }

    #[test]
    fn unreplicated_warm_crash_re_drives_until_the_shard_restarts() {
        use tfm_net::PlacementPolicy;
        let mut p = Pager::new(PagerConfig {
            local_budget: 4 * PAGE_SIZE,
            backend: BackendSpec::sharded(2)
                .with_placement(PlacementPolicy::Interleave)
                .with_fault_shard(0),
            faults: FaultPlan::none().with_crash(100_000, 400_000),
            ..PagerConfig::default()
        });
        for i in 0..8u64 {
            p.access(i * PAGE_SIZE, 8, true, 0);
        }
        p.evacuate_all(0);
        // Page 0 lives on the crashed shard and has no replica: the kernel
        // re-drives the fault (fail-fast, one RTT per round) until the
        // shard restarts, then re-registers with it and completes.
        let stall = p.access(0, 8, false, 100_000);
        assert_eq!(p.stats().major_faults, 1);
        assert!(p.stats().fault_retries > 5, "{:?}", p.stats());
        assert!(
            stall >= 300_000,
            "blocked for the rest of the window: {stall}"
        );
        assert_eq!(p.stats().recoveries, 1, "re-registration drove the rejoin");
        assert_eq!(p.backend().shard_state(0), ShardState::Up);
        assert_eq!(p.backend().shard_epoch(0), 1, "restart bumped the epoch");
        assert_eq!(p.stats().lost_pages, 0, "a warm restart keeps its store");
        assert_eq!(p.backend().audit().unwrap().lost, 0);
    }

    #[test]
    fn replicated_pager_survives_a_cold_crash_without_losing_pages() {
        use tfm_net::PlacementPolicy;
        let mut p = Pager::new(PagerConfig {
            local_budget: 4 * PAGE_SIZE,
            backend: BackendSpec::sharded(2)
                .with_placement(PlacementPolicy::Interleave)
                .with_replicas(2)
                .with_fault_shard(0),
            faults: FaultPlan::none().with_cold_crash(100_000, 400_000),
            ..PagerConfig::default()
        });
        for i in 0..8u64 {
            p.access(i * PAGE_SIZE, 8, true, 0);
        }
        p.evacuate_all(0);
        // Inside the window every read is served by the surviving replica —
        // no re-drive storm, just failover.
        let mut now = 100_000;
        for i in 0..8u64 {
            now += p.access(i * PAGE_SIZE, 8, false, now);
        }
        assert_eq!(p.stats().major_faults, 8);
        assert_eq!(p.stats().fault_retries, 0, "the replica absorbs the crash");
        let snaps = p.shard_snapshots();
        assert!(snaps[1].failover_reads > 0, "shard 1 covered for shard 0");
        // After the restart the wiped store is rebuilt from the replica.
        p.evacuate_all(now);
        let _ = p.access(0, 8, false, now.max(400_000));
        assert_eq!(p.stats().recoveries, 1);
        assert_eq!(p.stats().resynced_pages, 8, "cold store rebuilt in full");
        assert_eq!(p.stats().lost_pages, 0);
        let audit = p.backend().audit().unwrap();
        assert_eq!(audit.lost, 0, "R=2 loses nothing to a cold crash");
        assert_eq!(p.backend().shard_epoch(0), 1);
    }

    #[test]
    fn async_fetch_splits_issue_from_completion_and_joins() {
        let mut p = pager(8);
        p.access(0, 8, true, 0);
        p.evacuate_all(0);
        p.reset_stats();
        let sync_stall = {
            let mut q = pager(8);
            q.access(0, 8, true, 0);
            q.evacuate_all(0);
            q.reset_stats();
            q.access(0, 8, false, 0)
        };
        p.set_async_fetch(true);
        // Issue: the faulting core is charged only up to the RDMA issue
        // point, not the wire time.
        let issue_stall = p.access(0, 8, false, 0);
        assert!(issue_stall < sync_stall, "{issue_stall} vs {sync_stall}");
        assert_eq!(p.stats().major_faults, 1);
        assert_eq!(p.inflight_pages(), 1);
        let done = issue_stall + (sync_stall - issue_stall); // == sync_stall
        assert_eq!(p.take_completion_horizon(), done, "delivery cycle reported");
        // A second touch before completion joins the pending read: no new
        // transfer, no stall — the joining request completes at the shared
        // delivery cycle, reported through the horizon.
        let join_stall = p.access(0, 8, false, issue_stall);
        assert_eq!(join_stall, 0);
        assert_eq!(p.take_completion_horizon(), done);
        assert_eq!(p.stats().fault_joins, 1);
        assert_eq!(p.stats().major_faults, 1, "no second fault");
        assert_eq!(p.transfer_stats().fetches, 1, "one wire transfer total");
        // A touch after completion consumes the entry silently and is free.
        assert_eq!(p.access(0, 8, false, done), 0);
        assert_eq!(p.inflight_pages(), 0);
        assert_eq!(p.stats().fault_joins, 1);
    }

    #[test]
    fn clock_second_chance_prefers_unreferenced() {
        let mut p = pager(2);
        let mut now = 0;
        now += p.access(0, 8, false, now); // page 0
        now += p.access(PAGE_SIZE, 8, false, now); // page 1
                                                   // Re-reference page 0 so it gets a second chance.
        now += p.access(0, 8, false, now);
        // Pressure: page 2 comes in; CLOCK strips ref bits, evicts page 1
        // (page 0 was referenced more recently in clock order).
        now += p.access(2 * PAGE_SIZE, 8, false, now);
        let _ = now;
        assert!(p.stats().reclaims >= 1);
    }
}
