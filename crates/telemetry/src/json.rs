//! Minimal JSON tree, writer, and parser — hand-rolled so the telemetry
//! crate stays dependency-free and builds offline. Objects preserve
//! insertion order; integers are kept exact (no f64 round-trip for counters).

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (counters, cycles, bytes — the common case here).
    Int(u64),
    /// Floating-point number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(f) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, padc) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    // Keep a decimal point so the value parses back as Num.
                    if f.fract() == 0.0 {
                        out.push_str(&format!("{f:.1}"));
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    it.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Supports the full value grammar emitted by
    /// the writer (and standard escapes); returns a readable error message
    /// with a byte offset on malformed input.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8 in string")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("stream \"triad\"\n")),
            ("count".into(), Json::Int(u64::MAX)),
            ("frac".into(), Json::Num(0.25)),
            ("whole".into(), Json::Num(2.0)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Arr(vec![])]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc, "failed on: {text}");
        }
    }

    #[test]
    fn u64_max_survives_exactly() {
        let t = Json::Int(u64::MAX).to_string_compact();
        assert_eq!(t, u64::MAX.to_string());
        assert_eq!(Json::parse(&t).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn escapes_quotes_and_backslashes() {
        let s = r#"path\to\"file" with 'quotes'"#;
        let text = Json::str(s).to_string_compact();
        assert_eq!(text, r#""path\\to\\\"file\" with 'quotes'""#);
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn escapes_every_control_char() {
        // Named escapes for the common three, \uXXXX for the rest of C0.
        let named = Json::str("a\nb\rc\td").to_string_compact();
        assert_eq!(named, "\"a\\nb\\rc\\td\"");
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let text = Json::str(c.to_string()).to_string_compact();
            assert!(
                !text.chars().any(|x| (x as u32) < 0x20),
                "raw control char {code:#x} leaked into {text:?}"
            );
            let back = Json::parse(&text).unwrap();
            assert_eq!(
                back.as_str(),
                Some(c.to_string().as_str()),
                "code {code:#x}"
            );
        }
        // The generic form uses four lowercase hex digits.
        assert_eq!(Json::str("\u{0}").to_string_compact(), "\"\\u0000\"");
        assert_eq!(Json::str("\u{1f}").to_string_compact(), "\"\\u001f\"");
    }

    #[test]
    fn non_ascii_passes_through_raw_and_round_trips() {
        // Guard-site labels and span names may carry any UTF-8; the writer
        // emits it raw (JSON strings are Unicode) and the parser consumes
        // multi-byte scalars intact.
        let s = "été 中文 тест 🔥;semi\\colon\"quote";
        let text = Json::str(s).to_string_compact();
        assert!(text.contains("été") && text.contains("🔥"));
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parser_decodes_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\u4e2d""#).unwrap().as_str(),
            Some("Aé中")
        );
        // A lone surrogate cannot be a char; it degrades to U+FFFD rather
        // than corrupting the document.
        assert_eq!(
            Json::parse(r#""\ud800""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
        assert!(Json::parse(r#""\u00g1""#).is_err());
        assert!(Json::parse(r#""\u00""#).is_err());
    }

    #[test]
    fn keys_are_escaped_like_values() {
        let doc = Json::Obj(vec![("we\"ird\nkey".into(), Json::Int(1))]);
        let text = doc.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn get_and_accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": [1, "x"], "c": -1.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(
            doc.get("b").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            doc.get("b").unwrap().as_arr().unwrap()[1].as_str(),
            Some("x")
        );
        assert_eq!(doc.get("c"), Some(&Json::Num(-1.5)));
        assert_eq!(doc.get("missing"), None);
    }
}
