//! Causal span tracing and windowed time-series metrics.
//!
//! The event ring and histograms (PR 1) aggregate: they say *how much* but
//! never *why this operation was slow*. This module adds the missing causal
//! layer — a span tree stamped in simulated cycles:
//!
//! * a **root span** per runtime operation (guard slow path, demand fetch,
//!   prefetch, writeback, major/minor fault);
//! * **child spans** for everything the operation waited on: each backend
//!   transfer attempt (tagged with its queueing delay and any injected
//!   fault), each retry (tagged with its backoff wait), and each round of
//!   kernel fault handling —
//!
//! so an operation's latency decomposes into queueing vs transfer vs
//! retry-backoff vs kernel components. The span arena is fixed-capacity and
//! allocation-free after construction: once full, new spans are counted as
//! dropped and their children attach to the enclosing span (deterministic
//! degradation, never reallocation on the hot path).
//!
//! Because the simulation is synchronous and single-threaded, parenting is
//! implicit: a stack of open spans lives in the tracer, and every new span
//! (or leaf) attaches to the innermost open one. Asynchronous operations
//! (prefetch, writeback) open *root* spans — their completion extends past
//! the operation that triggered them, so nesting them under it would lie
//! about latency attribution.
//!
//! A windowed [`Timeline`] rides along: per-N-cycle buckets of access/miss
//! counts, local occupancy, and per-shard health (EWMA fault ppm + degraded
//! windows), rendered as a `timeline` section in the run report plus a
//! human sparkline view.
//!
//! Two exporters turn a [`TraceSnapshot`] into standard tooling formats:
//! [`TraceSnapshot::chrome_trace`] (Chrome trace-event JSON, loadable in
//! Perfetto / `chrome://tracing`, with per-shard link tracks) and
//! [`TraceSnapshot::folded_stacks`] (Brendan-Gregg folded stacks keyed by
//! the stable guard-site labels, weighted in simulated cycles — pipe into
//! any flamegraph renderer).
//!
//! Tracing is pay-for-use twice over: a disabled [`Telemetry`] handle skips
//! everything, and an enabled handle without a tracer pays one `Option`
//! branch per probe — simulated cycles and report bytes are identical with
//! tracing off (asserted by the `trace_overhead` bench and `tests/tracing.rs`).
//!
//! [`Telemetry`]: crate::Telemetry

use crate::json::Json;

/// Tracing configuration, threaded through run configs. `Copy` on purpose —
/// run configurations spread freely through the workspace.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off by default: spans cost memory and time.
    pub enabled: bool,
    /// Span arena capacity; once reached, further spans are dropped (and
    /// counted) instead of reallocating.
    pub max_spans: usize,
    /// Timeline bucket width in simulated cycles.
    pub bucket_cycles: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            max_spans: 1 << 16,
            bucket_cycles: 1 << 20,
        }
    }
}

impl TraceConfig {
    /// An enabled configuration with default capacity and bucketing.
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// Returns a copy with a different span-arena capacity (min 1).
    pub fn with_max_spans(mut self, n: usize) -> Self {
        self.max_spans = n.max(1);
        self
    }

    /// Returns a copy with a different timeline bucket width (min 1 cycle).
    pub fn with_bucket_cycles(mut self, cycles: u64) -> Self {
        self.bucket_cycles = cycles.max(1);
        self
    }
}

/// What a span covers. Guard kinds mirror [`EventKind`]'s classification;
/// the rest are the runtime/pager/link operations a guard (or raw access)
/// decomposes into.
///
/// [`EventKind`]: crate::EventKind
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Guard took the fast path (normally canceled, kept only if something
    /// nested under it).
    GuardFast,
    /// Guard slow path resolved locally.
    GuardSlowLocal,
    /// Guard slow path fetched from remote memory.
    GuardSlowRemote,
    /// Custody check failed; the access left the cached object.
    CustodyExit,
    /// Chunked-loop boundary check (cheap path).
    BoundaryCheck,
    /// Chunked-loop locality guard (runtime call).
    LocalityGuard,
    /// Demand fetch issued outside any guard (hybrid/raw access paths).
    DemandFetch,
    /// Asynchronous prefetch: from issue to the object's ready cycle.
    Prefetch,
    /// Eviction writeback operation (asynchronous; completion extends past
    /// the triggering operation).
    WritebackOp,
    /// Kernel page fault serviced with a remote transfer.
    MajorFault,
    /// Kernel page fault serviced locally.
    MinorFault,
    /// One fetch attempt on a link (leaf; `wait` = queueing delay, `fault`
    /// set when the attempt was faulted or delayed).
    Transfer,
    /// One writeback attempt on a link (leaf).
    WritebackXfer,
    /// One retry interval: fault detection to re-issue (leaf; `wait` =
    /// backoff cycles, `arg` = attempt number).
    Retry,
    /// One round of kernel fault handling (leaf).
    Kernel,
    /// Redo-ledger replay onto a recovering shard (root; `arg` = shard
    /// index, covers restart to rejoin).
    Recovery,
}

impl SpanKind {
    /// Every kind, in declaration order.
    pub const ALL: &'static [SpanKind] = &[
        SpanKind::GuardFast,
        SpanKind::GuardSlowLocal,
        SpanKind::GuardSlowRemote,
        SpanKind::CustodyExit,
        SpanKind::BoundaryCheck,
        SpanKind::LocalityGuard,
        SpanKind::DemandFetch,
        SpanKind::Prefetch,
        SpanKind::WritebackOp,
        SpanKind::MajorFault,
        SpanKind::MinorFault,
        SpanKind::Transfer,
        SpanKind::WritebackXfer,
        SpanKind::Retry,
        SpanKind::Kernel,
        SpanKind::Recovery,
    ];

    /// Stable snake_case name (used in exported traces).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::GuardFast => "guard_fast",
            SpanKind::GuardSlowLocal => "guard_slow_local",
            SpanKind::GuardSlowRemote => "guard_slow_remote",
            SpanKind::CustodyExit => "custody_exit",
            SpanKind::BoundaryCheck => "boundary_check",
            SpanKind::LocalityGuard => "locality_guard",
            SpanKind::DemandFetch => "demand_fetch",
            SpanKind::Prefetch => "prefetch",
            SpanKind::WritebackOp => "writeback",
            SpanKind::MajorFault => "major_fault",
            SpanKind::MinorFault => "minor_fault",
            SpanKind::Transfer => "transfer",
            SpanKind::WritebackXfer => "writeback_transfer",
            SpanKind::Retry => "retry",
            SpanKind::Kernel => "kernel",
            SpanKind::Recovery => "recovery",
        }
    }

    /// True for guard-site kinds whose `arg` is a packed site key (named
    /// by the guard-site label in exports).
    pub fn is_guard(self) -> bool {
        matches!(
            self,
            SpanKind::GuardFast
                | SpanKind::GuardSlowLocal
                | SpanKind::GuardSlowRemote
                | SpanKind::CustodyExit
                | SpanKind::BoundaryCheck
                | SpanKind::LocalityGuard
        )
    }

    /// True for link-attempt leaves (placed on per-shard tracks in the
    /// Chrome export).
    pub fn is_transfer(self) -> bool {
        matches!(self, SpanKind::Transfer | SpanKind::WritebackXfer)
    }

    /// True for asynchronous root operations (their completion extends past
    /// the operation that triggered them).
    pub fn is_async_op(self) -> bool {
        matches!(self, SpanKind::Prefetch | SpanKind::WritebackOp)
    }
}

/// One node of the span tree. `Copy`, 8-byte-aligned, no heap data — the
/// arena is a flat `Vec<Span>` preallocated at construction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// What this span covers.
    pub kind: SpanKind,
    /// First cycle of the span.
    pub start: u64,
    /// One past the last cycle of the span (`end - start` is the duration).
    pub end: u64,
    /// Arena index of the parent ([`Span::NO_PARENT`] for roots).
    pub parent: u32,
    /// Kind-specific payload: packed site key for guard kinds, object/page
    /// id for runtime ops, byte count for transfers, attempt number for
    /// retries.
    pub arg: u64,
    /// Kind-specific wait component: queueing delay for transfers, backoff
    /// cycles for retries, 0 elsewhere.
    pub wait: u64,
    /// Shard index for transfer leaves ([`Span::NO_SHARD`] elsewhere).
    pub shard: u32,
    /// Injected-fault code when the span was faulted or delayed
    /// ([`Span::NO_FAULT`] otherwise).
    pub fault: u32,
    /// Simulated worker core that recorded the span ([`Span::NO_CORE`] on
    /// the synchronous single-core machine). Stamped centrally by the
    /// tracer, so probe sites never set it themselves.
    pub core: u32,
}

impl Span {
    /// `parent` sentinel: the span is a root.
    pub const NO_PARENT: u32 = u32::MAX;
    /// `shard` sentinel: not a shard-routed span.
    pub const NO_SHARD: u32 = u32::MAX;
    /// `fault` sentinel: nothing was injected.
    pub const NO_FAULT: u32 = u32::MAX;
    /// `core` sentinel: not recorded on a multi-core machine.
    pub const NO_CORE: u32 = u32::MAX;

    /// Duration in cycles.
    #[inline]
    pub fn dur(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the span has a parent in the arena.
    #[inline]
    pub fn has_parent(&self) -> bool {
        self.parent != Self::NO_PARENT
    }
}

/// Handle to an open span. [`SpanId::NONE`] (returned when tracing is off or
/// the arena is full) makes every subsequent operation on it a no-op.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The no-op handle.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// True for the no-op handle.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

/// Upper bound on timeline buckets (observations beyond it are ignored) so
/// a tiny bucket width cannot grow the series without bound.
const MAX_BUCKETS: usize = 1 << 16;

/// Windowed time-series collector: per-bucket access/miss counts, local
/// occupancy, and per-shard health samples.
#[derive(Clone, Debug)]
pub struct Timeline {
    bucket_cycles: u64,
    accesses: Vec<u64>,
    misses: Vec<u64>,
    /// Last observed local occupancy (bytes) in each bucket; 0 where no
    /// observation landed.
    occupancy: Vec<u64>,
    shards: Vec<ShardSeries>,
    /// Per-core access lanes, populated only on a multi-core machine (the
    /// tracer routes accesses here when a current core is set).
    core_accesses: Vec<Vec<u64>>,
}

#[derive(Clone, Debug, Default)]
struct ShardSeries {
    /// Last observed EWMA fault rate (ppm) per bucket.
    ppm: Vec<u64>,
    /// Whether the shard was observed degraded at any point in the bucket.
    degraded: Vec<bool>,
}

impl Timeline {
    fn new(bucket_cycles: u64) -> Self {
        Timeline {
            bucket_cycles: bucket_cycles.max(1),
            accesses: Vec::new(),
            misses: Vec::new(),
            occupancy: Vec::new(),
            shards: Vec::new(),
            core_accesses: Vec::new(),
        }
    }

    #[inline]
    fn bucket(&self, cycle: u64) -> Option<usize> {
        let b = (cycle / self.bucket_cycles) as usize;
        (b < MAX_BUCKETS).then_some(b)
    }

    fn grow(v: &mut Vec<u64>, b: usize) {
        if v.len() <= b {
            v.resize(b + 1, 0);
        }
    }

    /// Records one guarded/paged access; `miss` when it went remote.
    pub fn access(&mut self, cycle: u64, miss: bool) {
        let Some(b) = self.bucket(cycle) else { return };
        Self::grow(&mut self.accesses, b);
        self.accesses[b] += 1;
        if miss {
            Self::grow(&mut self.misses, b);
            self.misses[b] += 1;
        }
    }

    /// Records the current local occupancy in bytes.
    pub fn occupancy(&mut self, cycle: u64, bytes: u64) {
        let Some(b) = self.bucket(cycle) else { return };
        Self::grow(&mut self.occupancy, b);
        self.occupancy[b] = bytes;
    }

    /// Records one guarded/paged access on a specific worker core's lane
    /// (on top of the aggregate series — call [`Timeline::access`] too).
    pub fn core_access(&mut self, cycle: u64, core: u32) {
        let Some(b) = self.bucket(cycle) else { return };
        let c = core as usize;
        if c >= 64 {
            return; // sanity bound, mirrors the shard lane cap
        }
        if self.core_accesses.len() <= c {
            self.core_accesses.resize(c + 1, Vec::new());
        }
        Self::grow(&mut self.core_accesses[c], b);
        self.core_accesses[c][b] += 1;
    }

    /// Records one shard-health sample.
    pub fn shard(&mut self, cycle: u64, shard: u32, ppm: u64, degraded: bool) {
        let Some(b) = self.bucket(cycle) else { return };
        let s = shard as usize;
        if s >= 64 {
            return; // sanity bound; no realistic topology exceeds it
        }
        if self.shards.len() <= s {
            self.shards.resize(s + 1, ShardSeries::default());
        }
        let series = &mut self.shards[s];
        Self::grow(&mut series.ppm, b);
        series.ppm[b] = ppm;
        if series.degraded.len() <= b {
            series.degraded.resize(b + 1, false);
        }
        series.degraded[b] |= degraded;
    }

    /// An owned, length-normalized copy of the series.
    pub fn snapshot(&self) -> TimelineSnapshot {
        let n = self
            .accesses
            .len()
            .max(self.misses.len())
            .max(self.occupancy.len())
            .max(
                self.shards
                    .iter()
                    .map(|s| s.ppm.len().max(s.degraded.len()))
                    .max()
                    .unwrap_or(0),
            )
            .max(self.core_accesses.iter().map(Vec::len).max().unwrap_or(0));
        let pad = |v: &[u64]| {
            let mut out = v.to_vec();
            out.resize(n, 0);
            out
        };
        TimelineSnapshot {
            bucket_cycles: self.bucket_cycles,
            accesses: pad(&self.accesses),
            misses: pad(&self.misses),
            occupancy_bytes: pad(&self.occupancy),
            shard_ppm: self.shards.iter().map(|s| pad(&s.ppm)).collect(),
            shard_degraded: self
                .shards
                .iter()
                .map(|s| {
                    let mut d = s.degraded.clone();
                    d.resize(n, false);
                    d
                })
                .collect(),
            core_accesses: self.core_accesses.iter().map(|c| pad(c)).collect(),
        }
    }
}

/// An owned copy of the [`Timeline`] series, all padded to one length.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Bucket width in simulated cycles.
    pub bucket_cycles: u64,
    /// Guarded/paged accesses per bucket.
    pub accesses: Vec<u64>,
    /// Remote misses per bucket.
    pub misses: Vec<u64>,
    /// Last observed local occupancy (bytes) per bucket.
    pub occupancy_bytes: Vec<u64>,
    /// Per shard: last observed EWMA fault rate (ppm) per bucket.
    pub shard_ppm: Vec<Vec<u64>>,
    /// Per shard: whether the shard was degraded in each bucket.
    pub shard_degraded: Vec<Vec<bool>>,
    /// Per worker core: accesses per bucket (empty on the single-core
    /// machine, so reports stay byte-identical there).
    pub core_accesses: Vec<Vec<u64>>,
}

/// Unicode sparkline of a series, max-scaled (empty string for an empty or
/// all-zero series).
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return values.iter().map(|_| BARS[0]).collect();
    }
    values
        .iter()
        .map(|&v| BARS[((v as u128 * (BARS.len() as u128 - 1)).div_ceil(max as u128)) as usize])
        .collect()
}

impl TimelineSnapshot {
    /// True when no bucket recorded anything.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Miss rate per bucket in permille (0 where no access landed).
    pub fn miss_permille(&self) -> Vec<u64> {
        self.accesses
            .iter()
            .zip(&self.misses)
            .map(|(&a, &m)| (m * 1000).checked_div(a).unwrap_or(0))
            .collect()
    }

    /// The `timeline` section of the run-report JSON.
    pub fn to_json(&self) -> Json {
        let ints = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::Int(x)).collect());
        let mut pairs = vec![
            ("bucket_cycles".into(), Json::Int(self.bucket_cycles)),
            ("accesses".into(), ints(&self.accesses)),
            ("misses".into(), ints(&self.misses)),
            ("occupancy_bytes".into(), ints(&self.occupancy_bytes)),
        ];
        if !self.shard_ppm.is_empty() {
            pairs.push((
                "shard_health_ppm".into(),
                Json::Arr(self.shard_ppm.iter().map(|s| ints(s)).collect()),
            ));
            pairs.push((
                "shard_degraded".into(),
                Json::Arr(
                    self.shard_degraded
                        .iter()
                        .map(|s| Json::Arr(s.iter().map(|&d| Json::Bool(d)).collect()))
                        .collect(),
                ),
            ));
        }
        if !self.core_accesses.is_empty() {
            pairs.push((
                "core_accesses".into(),
                Json::Arr(self.core_accesses.iter().map(|c| ints(c)).collect()),
            ));
        }
        Json::Obj(pairs)
    }

    /// Human sparkline view (one line per series).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.is_empty() {
            return out;
        }
        let _ = writeln!(
            out,
            "timeline ({} buckets x {} cycles):",
            self.accesses.len(),
            self.bucket_cycles
        );
        let _ = writeln!(out, "  miss_rate  {}", sparkline(&self.miss_permille()));
        let _ = writeln!(out, "  occupancy  {}", sparkline(&self.occupancy_bytes));
        for (s, ppm) in self.shard_ppm.iter().enumerate() {
            let degraded = self.shard_degraded[s].iter().filter(|&&d| d).count();
            let _ = writeln!(
                out,
                "  shard{s} ppm {} (degraded in {degraded} bucket(s))",
                sparkline(ppm)
            );
        }
        for (c, accesses) in self.core_accesses.iter().enumerate() {
            let _ = writeln!(out, "  core{c} load {}", sparkline(accesses));
        }
        out
    }
}

/// The span collector: a preallocated arena plus the stack of open spans.
///
/// Lives inside the shared telemetry sink; all probes go through the
/// [`Telemetry`] handle's `span_*`/`timeline_*` methods, which are no-ops
/// when no tracer is attached.
///
/// [`Telemetry`]: crate::Telemetry
#[derive(Clone, Debug)]
pub struct SpanTracer {
    cfg: TraceConfig,
    spans: Vec<Span>,
    stack: Vec<u32>,
    dropped: u64,
    timeline: Timeline,
    /// Worker core stamped onto every span recorded from here on
    /// ([`Span::NO_CORE`] until a multi-core scheduler sets one).
    current_core: u32,
}

impl SpanTracer {
    /// Creates a tracer with its arena preallocated to `cfg.max_spans`.
    pub fn new(cfg: TraceConfig) -> Self {
        SpanTracer {
            spans: Vec::with_capacity(cfg.max_spans.min(1 << 20)),
            stack: Vec::with_capacity(16),
            dropped: 0,
            timeline: Timeline::new(cfg.bucket_cycles),
            current_core: Span::NO_CORE,
            cfg,
        }
    }

    /// Sets the worker core stamped onto subsequently recorded spans. The
    /// multi-core scheduler calls this before dispatching each request;
    /// nothing else does, so single-core traces carry [`Span::NO_CORE`]
    /// everywhere and render byte-identically to before.
    pub fn set_core(&mut self, core: u32) {
        self.current_core = core;
    }

    /// The core stamped onto new spans ([`Span::NO_CORE`] when unset).
    pub fn current_core(&self) -> u32 {
        self.current_core
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans not recorded because the arena was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The timeline collector.
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    fn alloc(&mut self, span: Span) -> u32 {
        if self.spans.len() >= self.cfg.max_spans {
            self.dropped += 1;
            return u32::MAX;
        }
        let id = self.spans.len() as u32;
        self.spans.push(span);
        id
    }

    fn open(&mut self, kind: SpanKind, arg: u64, cycle: u64, parent: u32) -> SpanId {
        let id = self.alloc(Span {
            kind,
            start: cycle,
            end: cycle,
            parent,
            arg,
            wait: 0,
            shard: Span::NO_SHARD,
            fault: Span::NO_FAULT,
            core: self.current_core,
        });
        if id != u32::MAX {
            self.stack.push(id);
        }
        SpanId(id)
    }

    /// Opens a span as a child of the innermost open span (a root if none).
    pub fn begin(&mut self, kind: SpanKind, arg: u64, cycle: u64) -> SpanId {
        let parent = self.stack.last().copied().unwrap_or(Span::NO_PARENT);
        self.open(kind, arg, cycle, parent)
    }

    /// Opens a *root* span regardless of the open stack — for asynchronous
    /// operations whose lifetime extends past their trigger.
    pub fn begin_root(&mut self, kind: SpanKind, arg: u64, cycle: u64) -> SpanId {
        self.open(kind, arg, cycle, Span::NO_PARENT)
    }

    /// Closes `id` at `cycle` (no-op for [`SpanId::NONE`]).
    pub fn end(&mut self, id: SpanId, cycle: u64) {
        if id.is_none() {
            return;
        }
        if let Some(s) = self.spans.get_mut(id.0 as usize) {
            s.end = cycle;
        }
        if let Some(pos) = self.stack.iter().rposition(|&i| i == id.0) {
            self.stack.truncate(pos);
        }
    }

    /// Closes `id` at `cycle`, reclassifying it as `kind`. With
    /// `keep = false` the span is canceled — removed entirely when it is
    /// provably childless (it is the newest span in the arena), kept
    /// otherwise so its children stay attached.
    pub fn finish(&mut self, id: SpanId, cycle: u64, kind: SpanKind, keep: bool) {
        if id.is_none() {
            return;
        }
        let idx = id.0 as usize;
        if let Some(pos) = self.stack.iter().rposition(|&i| i == id.0) {
            self.stack.truncate(pos);
        }
        if !keep && idx + 1 == self.spans.len() {
            self.spans.truncate(idx);
            return;
        }
        if let Some(s) = self.spans.get_mut(idx) {
            s.kind = kind;
            s.end = cycle;
        }
    }

    /// Records a complete leaf span attached to the innermost open span.
    /// The caller fills everything but `parent` and `core` (both stamped
    /// here, overriding whatever the caller put in them).
    pub fn leaf(&mut self, mut span: Span) {
        span.parent = self.stack.last().copied().unwrap_or(Span::NO_PARENT);
        span.core = self.current_core;
        self.alloc(span);
    }

    /// True while any span is open (used to avoid opening a redundant
    /// root when an operation already runs under one).
    pub fn active(&self) -> bool {
        !self.stack.is_empty()
    }

    /// An owned copy of everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            spans: self.spans.clone(),
            dropped: self.dropped,
            timeline: self.timeline.snapshot(),
        }
    }
}

/// An owned copy of a tracer's spans and timeline.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// The span arena, in creation order (parents precede children).
    pub spans: Vec<Span>,
    /// Spans dropped because the arena was full.
    pub dropped: u64,
    /// The windowed time series.
    pub timeline: TimelineSnapshot,
}

/// Chrome track ids: synchronous runtime operations.
const TID_RUNTIME: u64 = 1;
/// Chrome track ids: asynchronous operations (prefetch, writeback).
const TID_ASYNC: u64 = 2;
/// Chrome track ids: first per-shard link track (`3 + shard`).
const TID_SHARD0: u64 = 3;
/// Chrome track ids: first per-core track (`100 + core`) — only emitted
/// for core-tagged spans from the multi-core scheduler.
const TID_CORE0: u64 = 100;

impl TraceSnapshot {
    /// Indices of the direct children of span `idx`.
    pub fn children_of(&self, idx: usize) -> Vec<usize> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent as usize == idx && s.has_parent())
            .map(|(i, _)| i)
            .collect()
    }

    /// For every span, the index of its root ancestor. Parents always
    /// precede children in the arena, so one forward pass suffices.
    fn roots(&self) -> Vec<u32> {
        let mut root = vec![0u32; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            root[i] = if s.has_parent() {
                root[s.parent as usize]
            } else {
                i as u32
            };
        }
        root
    }

    fn span_name(s: &Span, label_of: &dyn Fn(u64) -> Option<String>) -> String {
        if s.kind.is_guard() {
            if let Some(l) = label_of(s.arg) {
                return l;
            }
        }
        s.kind.name().to_string()
    }

    /// Exports the span tree as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` form; load it in Perfetto or
    /// `chrome://tracing`). Timestamps and durations are simulated cycles.
    ///
    /// Track layout: tid 1 carries synchronous runtime operations (guards,
    /// demand fetches, page faults and their retry/kernel leaves), tid 2
    /// the asynchronous ones (prefetches, writebacks), and tid `3 + shard`
    /// one track per remote shard with its transfer attempts. On a
    /// multi-core machine, core-tagged spans move to tid `100 + core`
    /// ("core N") so overlapping demand fetches from different cores render
    /// as concurrent tracks; transfer leaves stay on their shard tracks
    /// (with the issuing core in `args`). Every event's `args` carries
    /// `id`/`parent`, so causality is machine-checkable even across tracks.
    ///
    /// `label_of` resolves guard-span args (packed site keys) to the stable
    /// guard-site labels; return `None` to fall back to the kind name.
    pub fn chrome_trace(&self, label_of: &dyn Fn(u64) -> Option<String>) -> Json {
        let roots = self.roots();
        let mut events: Vec<Json> = Vec::with_capacity(self.spans.len() + 8);
        let meta = |name: &str, tid: Option<u64>, value: &str| {
            let mut pairs = vec![
                ("name".into(), Json::str(name)),
                ("ph".into(), Json::str("M")),
                ("pid".into(), Json::Int(1)),
            ];
            if let Some(t) = tid {
                pairs.push(("tid".into(), Json::Int(t)));
            }
            pairs.push((
                "args".into(),
                Json::Obj(vec![("name".into(), Json::str(value))]),
            ));
            Json::Obj(pairs)
        };
        events.push(meta("process_name", None, "trackfm-sim"));
        events.push(meta("thread_name", Some(TID_RUNTIME), "runtime"));
        if self.spans.iter().any(|s| s.kind.is_async_op()) {
            events.push(meta("thread_name", Some(TID_ASYNC), "async"));
        }
        let mut shards: Vec<u32> = self
            .spans
            .iter()
            .filter(|s| s.kind.is_transfer() && s.shard != Span::NO_SHARD)
            .map(|s| s.shard)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        for &s in &shards {
            events.push(meta(
                "thread_name",
                Some(TID_SHARD0 + s as u64),
                &format!("shard {s}"),
            ));
        }
        let mut cores: Vec<u32> = self
            .spans
            .iter()
            .filter(|s| {
                s.core != Span::NO_CORE && !(s.kind.is_transfer() && s.shard != Span::NO_SHARD)
            })
            .map(|s| s.core)
            .collect();
        cores.sort_unstable();
        cores.dedup();
        for &c in &cores {
            events.push(meta(
                "thread_name",
                Some(TID_CORE0 + c as u64),
                &format!("core {c}"),
            ));
        }
        for (i, s) in self.spans.iter().enumerate() {
            let tid = if s.kind.is_transfer() && s.shard != Span::NO_SHARD {
                TID_SHARD0 + s.shard as u64
            } else if s.core != Span::NO_CORE {
                TID_CORE0 + s.core as u64
            } else if self.spans[roots[i] as usize].kind.is_async_op() {
                TID_ASYNC
            } else {
                TID_RUNTIME
            };
            let mut args = vec![
                ("id".into(), Json::Int(i as u64)),
                ("kind".into(), Json::str(s.kind.name())),
                ("arg".into(), Json::Int(s.arg)),
                ("wait".into(), Json::Int(s.wait)),
            ];
            if s.has_parent() {
                args.push(("parent".into(), Json::Int(s.parent as u64)));
            }
            if s.fault != Span::NO_FAULT {
                args.push(("fault".into(), Json::Int(s.fault as u64)));
            }
            if s.core != Span::NO_CORE {
                args.push(("core".into(), Json::Int(s.core as u64)));
            }
            events.push(Json::Obj(vec![
                ("name".into(), Json::str(Self::span_name(s, label_of))),
                ("cat".into(), Json::str("tfm")),
                ("ph".into(), Json::str("X")),
                ("ts".into(), Json::Int(s.start)),
                ("dur".into(), Json::Int(s.dur())),
                ("pid".into(), Json::Int(1)),
                ("tid".into(), Json::Int(tid)),
                ("args".into(), Json::Obj(args)),
            ]));
        }
        Json::Obj(vec![("traceEvents".into(), Json::Arr(events))])
    }

    /// Exports the span tree as folded stacks (`root;child;leaf weight`
    /// lines, one per unique stack, sorted — byte-deterministic), with
    /// *self* cycles as the weight: a span's duration minus its direct
    /// children's. Guard roots are keyed by their stable site labels, so
    /// the flamegraph answers "which guard site burns the cycles, and in
    /// what phase". Pipe into `flamegraph.pl` or speedscope.
    pub fn folded_stacks(&self, label_of: &dyn Fn(u64) -> Option<String>) -> String {
        let sanitize = |s: String| {
            s.chars()
                .map(|c| {
                    if c == ';' || c.is_whitespace() {
                        '_'
                    } else {
                        c
                    }
                })
                .collect::<String>()
        };
        let names: Vec<String> = self
            .spans
            .iter()
            .map(|s| sanitize(Self::span_name(s, label_of)))
            .collect();
        let mut child_total = vec![0u64; self.spans.len()];
        for s in &self.spans {
            if s.has_parent() {
                child_total[s.parent as usize] += s.dur();
            }
        }
        let mut folded: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            let this = s.dur().saturating_sub(child_total[i]);
            if this == 0 {
                continue;
            }
            let mut path = vec![names[i].as_str()];
            let mut at = s.parent;
            while at != Span::NO_PARENT {
                path.push(names[at as usize].as_str());
                at = self.spans[at as usize].parent;
            }
            path.reverse();
            *folded.entry(path.join(";")).or_insert(0) += this;
        }
        let mut out = String::new();
        for (stack, weight) in folded {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            kind,
            start,
            end,
            parent: Span::NO_PARENT,
            arg: 0,
            wait: 0,
            shard: Span::NO_SHARD,
            fault: Span::NO_FAULT,
            core: Span::NO_CORE,
        }
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), SpanKind::ALL.len());
    }

    #[test]
    fn spans_nest_by_open_stack() {
        let mut t = SpanTracer::new(TraceConfig::on());
        let root = t.begin(SpanKind::GuardSlowRemote, 7, 100);
        t.leaf(leaf(SpanKind::Transfer, 100, 200));
        let inner = t.begin(SpanKind::DemandFetch, 9, 150);
        t.leaf(leaf(SpanKind::Retry, 150, 180));
        t.end(inner, 200);
        t.end(root, 250);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert!(!snap.spans[0].has_parent());
        assert_eq!(snap.spans[1].parent, 0, "leaf under root");
        assert_eq!(snap.spans[2].parent, 0, "inner under root");
        assert_eq!(snap.spans[3].parent, 2, "retry under inner");
        assert_eq!(snap.spans[0].dur(), 150);
        assert_eq!(snap.children_of(0), vec![1, 2]);
    }

    #[test]
    fn begin_root_ignores_the_stack() {
        let mut t = SpanTracer::new(TraceConfig::on());
        let g = t.begin(SpanKind::GuardSlowRemote, 1, 0);
        let p = t.begin_root(SpanKind::Prefetch, 5, 10);
        t.leaf(leaf(SpanKind::Transfer, 10, 50));
        t.end(p, 50);
        t.end(g, 20);
        let snap = t.snapshot();
        assert!(!snap.spans[1].has_parent(), "prefetch is a root");
        assert_eq!(snap.spans[2].parent, 1, "its transfer nests under it");
    }

    #[test]
    fn canceled_childless_span_vanishes_but_parents_of_children_stay() {
        let mut t = SpanTracer::new(TraceConfig::on());
        // Childless fast guard: canceled, removed.
        let a = t.begin(SpanKind::GuardSlowRemote, 1, 0);
        t.finish(a, 5, SpanKind::GuardFast, false);
        assert_eq!(t.len(), 0);
        // A canceled span that acquired a child is kept (reclassified).
        let b = t.begin(SpanKind::GuardSlowRemote, 1, 10);
        t.leaf(leaf(SpanKind::Transfer, 10, 30));
        t.finish(b, 30, SpanKind::GuardFast, false);
        assert_eq!(t.len(), 2);
        assert_eq!(t.snapshot().spans[0].kind, SpanKind::GuardFast);
        assert!(!t.active());
    }

    #[test]
    fn full_arena_drops_deterministically() {
        let mut t = SpanTracer::new(TraceConfig::on().with_max_spans(2));
        let a = t.begin(SpanKind::GuardSlowRemote, 1, 0);
        t.leaf(leaf(SpanKind::Transfer, 0, 10));
        let b = t.begin(SpanKind::DemandFetch, 2, 5); // arena full
        assert!(b.is_none());
        t.leaf(leaf(SpanKind::Retry, 5, 8)); // dropped too
        t.end(b, 9); // no-op
        t.end(a, 10);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2);
        assert!(!t.active());
    }

    #[test]
    fn timeline_buckets_and_normalizes() {
        let mut tl = Timeline::new(100);
        tl.access(10, false);
        tl.access(110, true);
        tl.access(120, true);
        tl.occupancy(250, 8192);
        tl.shard(110, 1, 40_000, true);
        let s = tl.snapshot();
        assert_eq!(s.accesses, vec![1, 2, 0]);
        assert_eq!(s.misses, vec![0, 2, 0]);
        assert_eq!(s.occupancy_bytes, vec![0, 0, 8192]);
        assert_eq!(s.miss_permille(), vec![0, 1000, 0]);
        assert_eq!(s.shard_ppm.len(), 2, "shards 0..=1 materialized");
        assert_eq!(s.shard_ppm[1], vec![0, 40_000, 0]);
        assert_eq!(s.shard_degraded[1], vec![false, true, false]);
        assert!(s.render().contains("miss_rate"));
        assert!(s.render().contains("shard1 ppm"));
        let j = s.to_json();
        assert_eq!(j.get("bucket_cycles").and_then(Json::as_u64), Some(100));
        assert_eq!(j.get("accesses").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[0, 1, 50, 100]);
        assert_eq!(line.chars().count(), 4);
        assert!(line.ends_with('█'));
        assert!(line.starts_with('▁'));
    }

    #[test]
    fn chrome_trace_is_parseable_and_causal() {
        let mut t = SpanTracer::new(TraceConfig::on());
        let g = t.begin(SpanKind::GuardSlowRemote, 42, 100);
        t.leaf(Span {
            shard: 3,
            fault: 0,
            wait: 7,
            ..leaf(SpanKind::Transfer, 100, 200)
        });
        t.end(g, 260);
        let p = t.begin_root(SpanKind::Prefetch, 9, 300);
        t.end(p, 400);
        let doc = t
            .snapshot()
            .chrome_trace(&|arg| (arg == 42).then(|| "main:v7:read".to_string()));
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        let events = back.get("traceEvents").unwrap().as_arr().unwrap();
        let guard = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("main:v7:read"))
            .expect("guard root labeled by site");
        assert_eq!(guard.get("ts").and_then(Json::as_u64), Some(100));
        assert_eq!(guard.get("dur").and_then(Json::as_u64), Some(160));
        assert_eq!(guard.get("tid").and_then(Json::as_u64), Some(TID_RUNTIME));
        let xfer = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("transfer"))
            .unwrap();
        assert_eq!(xfer.get("tid").and_then(Json::as_u64), Some(TID_SHARD0 + 3));
        let args = xfer.get("args").unwrap();
        assert_eq!(args.get("parent").and_then(Json::as_u64), Some(0));
        assert_eq!(args.get("fault").and_then(Json::as_u64), Some(0));
        assert_eq!(args.get("wait").and_then(Json::as_u64), Some(7));
        let pf = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("prefetch"))
            .unwrap();
        assert_eq!(pf.get("tid").and_then(Json::as_u64), Some(TID_ASYNC));
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
    }

    #[test]
    fn core_tagging_stamps_spans_and_moves_chrome_tracks() {
        let mut t = SpanTracer::new(TraceConfig::on());
        // Untagged span first: stays on the runtime track.
        let g0 = t.begin(SpanKind::GuardSlowRemote, 1, 0);
        t.end(g0, 10);
        // Tag core 2: spans and leaves pick it up centrally, even when the
        // caller passed NO_CORE in the literal.
        t.set_core(2);
        assert_eq!(t.current_core(), 2);
        let g2 = t.begin(SpanKind::DemandFetch, 5, 100);
        t.leaf(Span {
            shard: 1,
            ..leaf(SpanKind::Transfer, 100, 150)
        });
        t.end(g2, 160);
        t.timeline_mut().core_access(100, 2);
        let snap = t.snapshot();
        assert_eq!(snap.spans[0].core, Span::NO_CORE);
        assert_eq!(snap.spans[1].core, 2);
        assert_eq!(snap.spans[2].core, 2, "leaf stamped too");
        let doc = snap.chrome_trace(&|_| None);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let fetch = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("demand_fetch"))
            .unwrap();
        assert_eq!(fetch.get("tid").and_then(Json::as_u64), Some(TID_CORE0 + 2));
        assert_eq!(
            fetch
                .get("args")
                .unwrap()
                .get("core")
                .and_then(Json::as_u64),
            Some(2)
        );
        let xfer = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("transfer"))
            .unwrap();
        assert_eq!(
            xfer.get("tid").and_then(Json::as_u64),
            Some(TID_SHARD0 + 1),
            "transfers stay on their shard track"
        );
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args").unwrap().get("name").and_then(Json::as_str) == Some("core 2")
        }));
        // Core lane landed in the timeline and its exports.
        assert_eq!(snap.timeline.core_accesses.len(), 3);
        assert_eq!(snap.timeline.core_accesses[2], vec![1]);
        assert!(snap.timeline.render().contains("core2 load"));
        assert!(snap.timeline.to_json().get("core_accesses").is_some());
    }

    #[test]
    fn untagged_traces_render_without_core_artifacts() {
        let mut t = SpanTracer::new(TraceConfig::on());
        let g = t.begin(SpanKind::GuardSlowRemote, 1, 0);
        t.leaf(leaf(SpanKind::Transfer, 0, 10));
        t.end(g, 20);
        t.timeline_mut().access(5, true);
        let snap = t.snapshot();
        let text = snap.chrome_trace(&|_| None).to_string_pretty();
        assert!(!text.contains("core"), "no core track or arg leaks: {text}");
        assert!(snap.timeline.core_accesses.is_empty());
        assert!(snap.timeline.to_json().get("core_accesses").is_none());
        assert!(!snap.timeline.render().contains("core"));
    }

    #[test]
    fn folded_stacks_weight_self_cycles() {
        let mut t = SpanTracer::new(TraceConfig::on());
        let g = t.begin(SpanKind::GuardSlowRemote, 42, 0);
        t.leaf(leaf(SpanKind::Transfer, 0, 70));
        t.leaf(leaf(SpanKind::Retry, 70, 90));
        t.end(g, 100);
        let out = t
            .snapshot()
            .folded_stacks(&|arg| (arg == 42).then(|| "main v7;read".to_string()));
        // Label sanitized; self weight of the root = 100 - 70 - 20 = 10.
        assert!(out.contains("main_v7_read 10\n"), "got: {out}");
        assert!(out.contains("main_v7_read;transfer 70\n"), "got: {out}");
        assert!(out.contains("main_v7_read;retry 20\n"), "got: {out}");
        // Deterministic: sorted by stack path.
        let again = t
            .snapshot()
            .folded_stacks(&|arg| (arg == 42).then(|| "main v7;read".to_string()));
        assert_eq!(out, again);
    }
}
