//! The shared telemetry handle.
//!
//! [`Telemetry`] is a cheaply-clonable handle passed to every component of a
//! run (machine, memory system, runtime, link, pager). All clones feed one
//! shared sink, so the trace interleaves events from the whole stack on one
//! cycle timeline. A disabled handle (`Telemetry::disabled()`, the default)
//! is a `None` — every probe is a branch on `Option::is_some` and nothing
//! else, which keeps the instrumented hot paths within noise of the
//! un-instrumented ones.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::events::{Event, EventKind, EventRing};
use crate::hist::Histogram;
use crate::site::{SiteKey, SiteStats, SiteTable};

/// Default trace-ring capacity for [`Telemetry::enabled`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The shared sink behind a [`Telemetry`] handle.
#[derive(Clone, Debug)]
pub struct TelemetryInner {
    /// The event trace ring.
    pub ring: EventRing,
    /// Demand-fetch completion latency (cycles).
    pub fetch_latency: Histogram,
    /// Stall cycles per guarded access (zero for fast paths).
    pub stall_per_access: Histogram,
    /// Object/page residency lifetime (cycles between localize and evict).
    pub residency: Histogram,
    /// Network transfer sizes (bytes, both directions).
    pub transfer_bytes: Histogram,
    /// Extra cycles spent in detect/backoff before a faulted transfer
    /// finally succeeded (one sample per operation that needed retries).
    pub retry_latency: Histogram,
    /// Per-guard-site attribution.
    pub sites: SiteTable,
    /// When each currently-resident object/page became resident.
    resident_since: HashMap<u64, u64>,
}

impl TelemetryInner {
    fn new(ring_capacity: usize) -> Self {
        Self {
            ring: EventRing::new(ring_capacity),
            fetch_latency: Histogram::new(),
            stall_per_access: Histogram::new(),
            residency: Histogram::new(),
            transfer_bytes: Histogram::new(),
            retry_latency: Histogram::new(),
            sites: SiteTable::new(),
            resident_since: HashMap::new(),
        }
    }
}

/// A handle to a run's telemetry sink; `None` inside means disabled and
/// every probe is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<TelemetryInner>>>,
}

impl Telemetry {
    /// The no-op handle (the default everywhere).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` trace events.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(TelemetryInner::new(capacity)))),
        }
    }

    /// True when probes record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a cycle-stamped event.
    #[inline]
    pub fn emit(&self, cycle: u64, kind: EventKind, arg: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().ring.push(Event { cycle, kind, arg });
        }
    }

    /// Records a demand-fetch latency sample.
    #[inline]
    pub fn record_fetch_latency(&self, cycles: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().fetch_latency.record(cycles);
        }
    }

    /// Records the stall contribution of one guarded access.
    #[inline]
    pub fn record_stall(&self, cycles: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().stall_per_access.record(cycles);
        }
    }

    /// Records one network transfer's size.
    #[inline]
    pub fn record_transfer(&self, bytes: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().transfer_bytes.record(bytes);
        }
    }

    /// Records the total retry penalty (detect + backoff cycles) of one
    /// operation that succeeded only after faulted attempts.
    #[inline]
    pub fn record_retry_latency(&self, cycles: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().retry_latency.record(cycles);
        }
    }

    /// Marks `id` (object or page) resident as of `now`, for residency
    /// lifetime accounting.
    #[inline]
    pub fn note_resident(&self, id: u64, now: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().resident_since.insert(id, now);
        }
    }

    /// Marks `id` evicted at `now`, recording its residency lifetime.
    #[inline]
    pub fn note_evicted(&self, id: u64, now: u64) {
        if let Some(i) = &self.inner {
            let mut i = i.borrow_mut();
            if let Some(since) = i.resident_since.remove(&id) {
                i.residency.record(now.saturating_sub(since));
            }
        }
    }

    /// Updates a guard site's counters.
    #[inline]
    pub fn record_site(&self, key: SiteKey, f: impl FnOnce(&mut SiteStats)) {
        if let Some(i) = &self.inner {
            f(i.borrow_mut().sites.stats_mut(key));
        }
    }

    /// A copy of the sink's current contents, or `None` when disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.inner.as_ref().map(|i| {
            let i = i.borrow();
            TelemetrySnapshot {
                events: i.ring.to_vec(),
                event_counts: EventKind::ALL
                    .iter()
                    .map(|&k| (k, i.ring.count(k)))
                    .collect(),
                events_dropped: i.ring.dropped(),
                fetch_latency: i.fetch_latency.clone(),
                stall_per_access: i.stall_per_access.clone(),
                residency: i.residency.clone(),
                transfer_bytes: i.transfer_bytes.clone(),
                retry_latency: i.retry_latency.clone(),
                sites: i.sites.clone(),
            }
        })
    }
}

/// An owned copy of everything a [`Telemetry`] sink collected.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Retained trace events, oldest first.
    pub events: Vec<Event>,
    /// Total emitted events per kind (including ones the ring dropped).
    pub event_counts: Vec<(EventKind, u64)>,
    /// Events not retained by the ring.
    pub events_dropped: u64,
    /// Demand-fetch completion latency (cycles).
    pub fetch_latency: Histogram,
    /// Stall cycles per guarded access.
    pub stall_per_access: Histogram,
    /// Residency lifetime (cycles).
    pub residency: Histogram,
    /// Transfer sizes (bytes).
    pub transfer_bytes: Histogram,
    /// Retry penalty per operation that needed retries (cycles).
    pub retry_latency: Histogram,
    /// Per-guard-site attribution.
    pub sites: SiteTable,
}

impl TelemetrySnapshot {
    /// Total events of `kind` emitted during the run.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.event_counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.emit(1, EventKind::GuardFast, 0);
        t.record_fetch_latency(10);
        t.record_site(SiteKey::new(0, 0), |s| s.hits += 1);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::with_ring_capacity(8);
        let u = t.clone();
        t.emit(1, EventKind::DemandFetch, 42);
        u.emit(2, EventKind::Eviction, 42);
        u.record_fetch_latency(100);
        let s = t.snapshot().unwrap();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.count(EventKind::DemandFetch), 1);
        assert_eq!(s.count(EventKind::Eviction), 1);
        assert_eq!(s.fetch_latency.count(), 1);
    }

    #[test]
    fn residency_lifetime_tracking() {
        let t = Telemetry::enabled();
        t.note_resident(7, 100);
        t.note_evicted(7, 350);
        // Evicting an unknown id records nothing.
        t.note_evicted(99, 400);
        let s = t.snapshot().unwrap();
        assert_eq!(s.residency.count(), 1);
        assert_eq!(s.residency.max(), 250);
    }
}
