//! The shared telemetry handle.
//!
//! [`Telemetry`] is a cheaply-clonable handle passed to every component of a
//! run (machine, memory system, runtime, link, pager). All clones feed one
//! shared sink, so the trace interleaves events from the whole stack on one
//! cycle timeline. A disabled handle (`Telemetry::disabled()`, the default)
//! is a `None` — every probe is a branch on `Option::is_some` and nothing
//! else, which keeps the instrumented hot paths within noise of the
//! un-instrumented ones.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::events::{Event, EventKind, EventRing};
use crate::hist::Histogram;
use crate::site::{SiteKey, SiteStats, SiteTable};
use crate::trace::{Span, SpanId, SpanKind, SpanTracer, TraceConfig, TraceSnapshot};

/// Default trace-ring capacity for [`Telemetry::enabled`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// The shared sink behind a [`Telemetry`] handle.
#[derive(Clone, Debug)]
pub struct TelemetryInner {
    /// The event trace ring.
    pub ring: EventRing,
    /// Demand-fetch completion latency (cycles).
    pub fetch_latency: Histogram,
    /// Stall cycles per guarded access (zero for fast paths).
    pub stall_per_access: Histogram,
    /// Object/page residency lifetime (cycles between localize and evict).
    pub residency: Histogram,
    /// Network transfer sizes (bytes, both directions).
    pub transfer_bytes: Histogram,
    /// Extra cycles spent in detect/backoff before a faulted transfer
    /// finally succeeded (one sample per operation that needed retries).
    pub retry_latency: Histogram,
    /// Per-guard-site attribution.
    pub sites: SiteTable,
    /// Causal span tracer — `None` unless the run opted into tracing
    /// ([`Telemetry::with_trace`]). A second pay-for-use gate: an enabled
    /// sink without a tracer pays one `Option` branch per span probe, so
    /// telemetry-on/tracing-off output stays byte-identical to pre-tracing
    /// builds.
    pub trace: Option<SpanTracer>,
    /// When each currently-resident object/page became resident.
    resident_since: HashMap<u64, u64>,
}

impl TelemetryInner {
    fn new(ring_capacity: usize) -> Self {
        Self {
            ring: EventRing::new(ring_capacity),
            fetch_latency: Histogram::new(),
            stall_per_access: Histogram::new(),
            residency: Histogram::new(),
            transfer_bytes: Histogram::new(),
            retry_latency: Histogram::new(),
            sites: SiteTable::new(),
            trace: None,
            resident_since: HashMap::new(),
        }
    }
}

/// A handle to a run's telemetry sink; `None` inside means disabled and
/// every probe is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<TelemetryInner>>>,
}

impl Telemetry {
    /// The no-op handle (the default everywhere).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled handle retaining at most `capacity` trace events.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(TelemetryInner::new(capacity)))),
        }
    }

    /// An enabled handle with a causal span tracer attached (when
    /// `cfg.enabled`; otherwise identical to [`Telemetry::enabled`]).
    pub fn with_trace(cfg: TraceConfig) -> Self {
        let mut inner = TelemetryInner::new(DEFAULT_RING_CAPACITY);
        if cfg.enabled {
            inner.trace = Some(SpanTracer::new(cfg));
        }
        Self {
            inner: Some(Rc::new(RefCell::new(inner))),
        }
    }

    /// True when a span tracer is attached (span/timeline probes record).
    #[inline]
    pub fn tracing(&self) -> bool {
        match &self.inner {
            Some(i) => i.borrow().trace.is_some(),
            None => false,
        }
    }

    /// True when probes record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records a cycle-stamped event.
    #[inline]
    pub fn emit(&self, cycle: u64, kind: EventKind, arg: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().ring.push(Event { cycle, kind, arg });
        }
    }

    /// Records a demand-fetch latency sample.
    #[inline]
    pub fn record_fetch_latency(&self, cycles: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().fetch_latency.record(cycles);
        }
    }

    /// Records the stall contribution of one guarded access.
    #[inline]
    pub fn record_stall(&self, cycles: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().stall_per_access.record(cycles);
        }
    }

    /// Records one network transfer's size.
    #[inline]
    pub fn record_transfer(&self, bytes: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().transfer_bytes.record(bytes);
        }
    }

    /// Records the total retry penalty (detect + backoff cycles) of one
    /// operation that succeeded only after faulted attempts.
    #[inline]
    pub fn record_retry_latency(&self, cycles: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().retry_latency.record(cycles);
        }
    }

    /// Marks `id` (object or page) resident as of `now`, for residency
    /// lifetime accounting.
    #[inline]
    pub fn note_resident(&self, id: u64, now: u64) {
        if let Some(i) = &self.inner {
            i.borrow_mut().resident_since.insert(id, now);
        }
    }

    /// Marks `id` evicted at `now`, recording its residency lifetime.
    #[inline]
    pub fn note_evicted(&self, id: u64, now: u64) {
        if let Some(i) = &self.inner {
            let mut i = i.borrow_mut();
            if let Some(since) = i.resident_since.remove(&id) {
                i.residency.record(now.saturating_sub(since));
            }
        }
    }

    /// Updates a guard site's counters.
    #[inline]
    pub fn record_site(&self, key: SiteKey, f: impl FnOnce(&mut SiteStats)) {
        if let Some(i) = &self.inner {
            f(i.borrow_mut().sites.stats_mut(key));
        }
    }

    /// Opens a span as a child of the innermost open span. No-op (returning
    /// [`SpanId::NONE`]) unless a tracer is attached.
    #[inline]
    pub fn span_begin(&self, kind: SpanKind, arg: u64, cycle: u64) -> SpanId {
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                return t.begin(kind, arg, cycle);
            }
        }
        SpanId::NONE
    }

    /// Opens a root span regardless of any open span — for asynchronous
    /// operations (prefetch, writeback) whose lifetime extends past the
    /// operation that triggered them.
    #[inline]
    pub fn span_begin_root(&self, kind: SpanKind, arg: u64, cycle: u64) -> SpanId {
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                return t.begin_root(kind, arg, cycle);
            }
        }
        SpanId::NONE
    }

    /// Closes an open span at `cycle`.
    #[inline]
    pub fn span_end(&self, id: SpanId, cycle: u64) {
        if id.is_none() {
            return;
        }
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                t.end(id, cycle);
            }
        }
    }

    /// Closes an open span at `cycle`, reclassifying it as `kind`; with
    /// `keep = false` a childless span is removed entirely.
    #[inline]
    pub fn span_finish(&self, id: SpanId, cycle: u64, kind: SpanKind, keep: bool) {
        if id.is_none() {
            return;
        }
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                t.finish(id, cycle, kind, keep);
            }
        }
    }

    /// Records a complete leaf span under the innermost open span; the
    /// caller fills everything but `parent`.
    #[inline]
    pub fn span_leaf(&self, span: Span) {
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                t.leaf(span);
            }
        }
    }

    /// True while a traced operation is open (used to avoid opening a
    /// redundant root span). Always false without a tracer.
    #[inline]
    pub fn span_active(&self) -> bool {
        if let Some(i) = &self.inner {
            if let Some(t) = &i.borrow().trace {
                return t.active();
            }
        }
        false
    }

    /// Sets the worker core stamped onto subsequently recorded spans and
    /// timeline lanes. Called only by the multi-core scheduler before
    /// dispatching each request; single-core runs never call it, so their
    /// traces carry no core tags and render byte-identically.
    #[inline]
    pub fn set_core(&self, core: u32) {
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                t.set_core(core);
            }
        }
    }

    /// Timeline probe: one guarded/paged access (`miss` when it went
    /// remote). On a multi-core machine the access also lands on the
    /// current core's lane.
    #[inline]
    pub fn timeline_access(&self, cycle: u64, miss: bool) {
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                let core = t.current_core();
                let tl = t.timeline_mut();
                tl.access(cycle, miss);
                if core != Span::NO_CORE {
                    tl.core_access(cycle, core);
                }
            }
        }
    }

    /// Timeline probe: current local occupancy in bytes.
    #[inline]
    pub fn timeline_occupancy(&self, cycle: u64, bytes: u64) {
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                t.timeline_mut().occupancy(cycle, bytes);
            }
        }
    }

    /// Timeline probe: one shard-health sample (EWMA fault ppm + degraded
    /// flag).
    #[inline]
    pub fn timeline_shard(&self, cycle: u64, shard: u32, ppm: u64, degraded: bool) {
        if let Some(i) = &self.inner {
            if let Some(t) = &mut i.borrow_mut().trace {
                t.timeline_mut().shard(cycle, shard, ppm, degraded);
            }
        }
    }

    /// A copy of the sink's current contents, or `None` when disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        self.inner.as_ref().map(|i| {
            let i = i.borrow();
            TelemetrySnapshot {
                events: i.ring.to_vec(),
                event_counts: EventKind::ALL
                    .iter()
                    .map(|&k| (k, i.ring.count(k)))
                    .collect(),
                events_dropped: i.ring.dropped(),
                fetch_latency: i.fetch_latency.clone(),
                stall_per_access: i.stall_per_access.clone(),
                residency: i.residency.clone(),
                transfer_bytes: i.transfer_bytes.clone(),
                retry_latency: i.retry_latency.clone(),
                sites: i.sites.clone(),
                trace: i.trace.as_ref().map(|t| t.snapshot()),
            }
        })
    }
}

/// An owned copy of everything a [`Telemetry`] sink collected.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Retained trace events, oldest first.
    pub events: Vec<Event>,
    /// Total emitted events per kind (including ones the ring dropped).
    pub event_counts: Vec<(EventKind, u64)>,
    /// Events not retained by the ring.
    pub events_dropped: u64,
    /// Demand-fetch completion latency (cycles).
    pub fetch_latency: Histogram,
    /// Stall cycles per guarded access.
    pub stall_per_access: Histogram,
    /// Residency lifetime (cycles).
    pub residency: Histogram,
    /// Transfer sizes (bytes).
    pub transfer_bytes: Histogram,
    /// Retry penalty per operation that needed retries (cycles).
    pub retry_latency: Histogram,
    /// Per-guard-site attribution.
    pub sites: SiteTable,
    /// Causal span trace (`None` when tracing was off).
    pub trace: Option<TraceSnapshot>,
}

impl TelemetrySnapshot {
    /// Total events of `kind` emitted during the run.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.event_counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.emit(1, EventKind::GuardFast, 0);
        t.record_fetch_latency(10);
        t.record_site(SiteKey::new(0, 0), |s| s.hits += 1);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Telemetry::with_ring_capacity(8);
        let u = t.clone();
        t.emit(1, EventKind::DemandFetch, 42);
        u.emit(2, EventKind::Eviction, 42);
        u.record_fetch_latency(100);
        let s = t.snapshot().unwrap();
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.count(EventKind::DemandFetch), 1);
        assert_eq!(s.count(EventKind::Eviction), 1);
        assert_eq!(s.fetch_latency.count(), 1);
    }

    #[test]
    fn span_probes_are_inert_without_a_tracer() {
        for t in [Telemetry::disabled(), Telemetry::enabled()] {
            assert!(!t.tracing());
            let id = t.span_begin(SpanKind::GuardSlowRemote, 1, 0);
            assert!(id.is_none());
            assert!(!t.span_active());
            t.span_end(id, 10);
            t.timeline_access(0, true);
            if let Some(s) = t.snapshot() {
                assert!(s.trace.is_none());
            }
        }
    }

    #[test]
    fn with_trace_records_spans_and_timeline() {
        let t = Telemetry::with_trace(TraceConfig::on());
        assert!(t.tracing() && t.is_enabled());
        let root = t.span_begin(SpanKind::GuardSlowRemote, 7, 100);
        assert!(t.span_active());
        t.span_leaf(Span {
            kind: SpanKind::Transfer,
            start: 100,
            end: 180,
            parent: Span::NO_PARENT,
            arg: 4096,
            wait: 0,
            shard: 0,
            fault: Span::NO_FAULT,
            core: Span::NO_CORE,
        });
        t.span_end(root, 200);
        t.timeline_access(100, true);
        let trace = t.snapshot().unwrap().trace.unwrap();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[1].parent, 0);
        assert_eq!(trace.timeline.misses, vec![1]);
        // A disabled TraceConfig attaches no tracer at all.
        assert!(!Telemetry::with_trace(TraceConfig::default()).tracing());
    }

    #[test]
    fn residency_lifetime_tracking() {
        let t = Telemetry::enabled();
        t.note_resident(7, 100);
        t.note_evicted(7, 350);
        // Evicting an unknown id records nothing.
        t.note_evicted(99, 400);
        let s = t.snapshot().unwrap();
        assert_eq!(s.residency.count(), 1);
        assert_eq!(s.residency.max(), 250);
    }
}
