//! Per-guard-site attribution.
//!
//! A *site* is one guard-bearing IR instruction in the compiled module,
//! identified by the stable pair (function index, value index). The site
//! table accumulates fast/slow outcomes, cycles, and stall cycles per site
//! so the runner can answer "*which* guard is slow" — the data behind the
//! paper's per-workload breakdown figures.

use std::collections::HashMap;

/// Stable identifier of a guard site: `(function index << 32) | value index`
/// in the compiled module. Stable for a given compiled module, cheap to
/// carry through the interpreter hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteKey(pub u64);

impl SiteKey {
    /// Builds a key from function and value indices.
    pub fn new(func: u32, value: u32) -> Self {
        Self(((func as u64) << 32) | value as u64)
    }

    /// Function index of the site.
    pub fn func(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Value (instruction) index of the site.
    pub fn value(self) -> u32 {
        self.0 as u32
    }
}

impl std::fmt::Display for SiteKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}:v{}", self.func(), self.value())
    }
}

/// Accumulated per-site counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Total executions of the site.
    pub hits: u64,
    /// Fast-path executions.
    pub fast: u64,
    /// Slow-path executions resolved without a transfer.
    pub slow_local: u64,
    /// Slow-path executions that fetched from remote.
    pub slow_remote: u64,
    /// Custody-check failures attributed to the site.
    pub custody_exits: u64,
    /// Total cycles charged at the site (checks + stalls).
    pub cycles: u64,
    /// Cycles spent stalled on the network at the site.
    pub stall_cycles: u64,
    /// Duplicate guards statically folded into this (surviving) site by
    /// redundant-guard elimination. Recorded at compile time, so every run
    /// shows which hot sites absorbed how many deleted checks.
    pub elided: u64,
    /// Loop levels this site's guard was hoisted out of by loop-invariant
    /// guard motion (0 = the guard executes where it was inserted).
    /// Recorded at compile time, like `elided`.
    pub hoisted: u64,
}

impl SiteStats {
    /// Folds another site's counters into this one.
    pub fn merge(&mut self, other: &Self) {
        self.hits += other.hits;
        self.fast += other.fast;
        self.slow_local += other.slow_local;
        self.slow_remote += other.slow_remote;
        self.custody_exits += other.custody_exits;
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.elided += other.elided;
        self.hoisted = self.hoisted.max(other.hoisted);
    }

    /// Slow-path executions of either flavor.
    pub fn slow(&self) -> u64 {
        self.slow_local + self.slow_remote
    }
}

/// Counters keyed by [`SiteKey`].
#[derive(Clone, Debug, Default)]
pub struct SiteTable {
    map: HashMap<SiteKey, SiteStats>,
}

impl SiteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct sites seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no site has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Mutable access to a site's counters, creating them on first use.
    #[inline]
    pub fn stats_mut(&mut self, key: SiteKey) -> &mut SiteStats {
        self.map.entry(key).or_default()
    }

    /// A site's counters, if it was ever recorded.
    pub fn get(&self, key: SiteKey) -> Option<&SiteStats> {
        self.map.get(&key)
    }

    /// All `(key, stats)` pairs, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (SiteKey, &SiteStats)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }

    /// The `n` sites with the most stall cycles (ties broken by total
    /// cycles, then key, so the order is deterministic).
    pub fn top_by_stall(&self, n: usize) -> Vec<(SiteKey, SiteStats)> {
        let mut rows: Vec<(SiteKey, SiteStats)> = self.map.iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_by(|a, b| {
            b.1.stall_cycles
                .cmp(&a.1.stall_cycles)
                .then(b.1.cycles.cmp(&a.1.cycles))
                .then(a.0.cmp(&b.0))
        });
        rows.truncate(n);
        rows
    }

    /// Folds another table into this one.
    pub fn merge(&mut self, other: &Self) {
        for (k, v) in other.map.iter() {
            self.map.entry(*k).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_packs_and_unpacks() {
        let k = SiteKey::new(7, 42);
        assert_eq!(k.func(), 7);
        assert_eq!(k.value(), 42);
        assert_eq!(k.to_string(), "f7:v42");
        assert_eq!(SiteKey::new(u32::MAX, u32::MAX).func(), u32::MAX);
    }

    #[test]
    fn top_by_stall_orders_deterministically() {
        let mut t = SiteTable::new();
        t.stats_mut(SiteKey::new(0, 1)).stall_cycles = 10;
        t.stats_mut(SiteKey::new(0, 2)).stall_cycles = 30;
        t.stats_mut(SiteKey::new(0, 3)).stall_cycles = 20;
        // Tie on stall; broken by cycles.
        t.stats_mut(SiteKey::new(0, 4)).stall_cycles = 10;
        t.stats_mut(SiteKey::new(0, 4)).cycles = 5;
        let top = t.top_by_stall(3);
        assert_eq!(top[0].0, SiteKey::new(0, 2));
        assert_eq!(top[1].0, SiteKey::new(0, 3));
        assert_eq!(top[2].0, SiteKey::new(0, 4));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SiteTable::new();
        let mut b = SiteTable::new();
        a.stats_mut(SiteKey::new(1, 1)).hits = 2;
        b.stats_mut(SiteKey::new(1, 1)).hits = 3;
        b.stats_mut(SiteKey::new(1, 2)).fast = 1;
        a.merge(&b);
        assert_eq!(a.get(SiteKey::new(1, 1)).unwrap().hits, 5);
        assert_eq!(a.get(SiteKey::new(1, 2)).unwrap().fast, 1);
        assert_eq!(a.len(), 2);
    }
}
