//! Unified run reports.
//!
//! A [`RunReport`] composes the per-subsystem counter structs (exposed
//! generically through [`StatGroup`] so this crate stays a leaf), the
//! telemetry histograms, and the per-guard-site attribution table, and
//! renders as either a human-readable text block or machine-readable JSON.

use crate::events::EventKind;
use crate::hist::Histogram;
use crate::json::Json;
use crate::site::{SiteKey, SiteStats, SiteTable};
use crate::trace::TimelineSnapshot;

/// Counter structs that can publish themselves into a report section.
/// Implemented by `ExecStats`, `RuntimeStats`, `TransferStats`, and
/// `PagerStats` in their own crates.
pub trait StatGroup {
    /// Section name, e.g. `"exec"` or `"runtime"`.
    fn group_name(&self) -> &'static str;

    /// Field names and values, in display order.
    fn stat_fields(&self) -> Vec<(&'static str, u64)>;

    /// This group as a report section.
    fn section(&self) -> StatSection {
        StatSection {
            name: self.group_name().to_string(),
            fields: self
                .stat_fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// Counter structs that can be folded together for multi-run aggregation.
pub trait MergeStats {
    /// Accumulates `other` into `self` (counters add, peaks take the max).
    fn merge(&mut self, other: &Self);
}

/// One named group of counters inside a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatSection {
    /// Section name.
    pub name: String,
    /// `(field, value)` pairs in display order.
    pub fields: Vec<(String, u64)>,
}

/// One row of the guard-site attribution table.
#[derive(Clone, Debug)]
pub struct SiteRow {
    /// Stable site key.
    pub key: SiteKey,
    /// Human-readable label (function, value, access kind); falls back to
    /// the key's `f<func>:v<value>` form when the compiler produced none.
    pub label: String,
    /// Accumulated counters.
    pub stats: SiteStats,
}

/// Number of site rows shown by the human renderer.
pub const TOP_SITES: usize = 10;

/// A complete, self-describing record of one run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Memory system the run executed on.
    pub system: String,
    /// Free-form configuration metadata (`local_fraction`, `object_size`, ...).
    pub meta: Vec<(String, String)>,
    /// Subsystem counter sections.
    pub sections: Vec<StatSection>,
    /// Named latency/size distributions.
    pub histograms: Vec<(String, Histogram)>,
    /// Guard-site attribution, hottest (most stall cycles) first.
    pub sites: Vec<SiteRow>,
    /// Per-kind event totals (nonzero kinds only).
    pub event_counts: Vec<(String, u64)>,
    /// Events not retained by the trace ring.
    pub events_dropped: u64,
    /// Windowed time series (only when the run traced; `None` keeps the
    /// report byte-identical to untraced runs).
    pub timeline: Option<TimelineSnapshot>,
}

impl RunReport {
    /// An empty report for `workload` on `system`.
    pub fn new(workload: impl Into<String>, system: impl Into<String>) -> Self {
        Self {
            workload: workload.into(),
            system: system.into(),
            ..Self::default()
        }
    }

    /// Adds a configuration key/value.
    pub fn push_meta(&mut self, key: impl Into<String>, value: impl ToString) {
        self.meta.push((key.into(), value.to_string()));
    }

    /// Adds a counter section from any [`StatGroup`].
    pub fn push_section(&mut self, group: &dyn StatGroup) {
        self.sections.push(group.section());
    }

    /// Adds a counter section under a caller-chosen name instead of the
    /// group's own — for per-instance sections like one per remote shard
    /// (`"shard0"`, `"shard1"`, ...), where [`StatGroup::group_name`]'s
    /// `&'static str` cannot carry the instance index.
    pub fn push_named_section(&mut self, name: impl Into<String>, group: &dyn StatGroup) {
        let mut section = group.section();
        section.name = name.into();
        self.sections.push(section);
    }

    /// Adds a named histogram (empty ones are kept: they show the probe ran).
    pub fn push_histogram(&mut self, name: impl Into<String>, h: Histogram) {
        self.histograms.push((name.into(), h));
    }

    /// Fills the site table, resolving labels via `label_of` (return `None`
    /// to fall back to the key form). Rows are sorted hottest-first.
    pub fn set_sites(&mut self, table: &SiteTable, label_of: impl Fn(SiteKey) -> Option<String>) {
        self.sites = table
            .top_by_stall(usize::MAX)
            .into_iter()
            .map(|(key, stats)| SiteRow {
                key,
                label: label_of(key).unwrap_or_else(|| key.to_string()),
                stats,
            })
            .collect();
    }

    /// Records the per-kind event totals from a ring's counters.
    pub fn set_event_counts(&mut self, count_of: impl Fn(EventKind) -> u64, dropped: u64) {
        self.event_counts = EventKind::ALL
            .iter()
            .filter_map(|&k| {
                let c = count_of(k);
                (c > 0).then(|| (k.name().to_string(), c))
            })
            .collect();
        self.events_dropped = dropped;
    }

    /// Attaches the windowed time series of a traced run.
    pub fn set_timeline(&mut self, timeline: TimelineSnapshot) {
        self.timeline = Some(timeline);
    }

    /// A section's value, for programmatic consumers (benches, tests).
    pub fn field(&self, section: &str, field: &str) -> Option<u64> {
        self.sections
            .iter()
            .find(|s| s.name == section)?
            .fields
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, v)| *v)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Machine-readable JSON form. The `timeline` key appears only for
    /// traced runs, so untraced report bytes stay stable across builds
    /// with and without tracing support.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("workload".into(), Json::str(&self.workload)),
            ("system".into(), Json::str(&self.system)),
            (
                "meta".into(),
                Json::Obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "stats".into(),
                Json::Obj(
                    self.sections
                        .iter()
                        .map(|s| {
                            (
                                s.name.clone(),
                                Json::Obj(
                                    s.fields
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ),
            (
                "guard_sites".into(),
                Json::Arr(
                    self.sites
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("site".into(), Json::str(r.key.to_string())),
                                ("label".into(), Json::str(&r.label)),
                                ("hits".into(), Json::Int(r.stats.hits)),
                                ("fast".into(), Json::Int(r.stats.fast)),
                                ("slow_local".into(), Json::Int(r.stats.slow_local)),
                                ("slow_remote".into(), Json::Int(r.stats.slow_remote)),
                                ("custody_exits".into(), Json::Int(r.stats.custody_exits)),
                                ("cycles".into(), Json::Int(r.stats.cycles)),
                                ("stall_cycles".into(), Json::Int(r.stats.stall_cycles)),
                                ("elided".into(), Json::Int(r.stats.elided)),
                                ("hoisted".into(), Json::Int(r.stats.hoisted)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events".into(),
                Json::Obj(
                    self.event_counts
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            ("events_dropped".into(), Json::Int(self.events_dropped)),
        ];
        if let Some(t) = &self.timeline {
            pairs.push(("timeline".into(), t.to_json()));
        }
        Json::Obj(pairs)
    }

    /// Human-readable rendering: sections, histogram summaries, and the
    /// top-[`TOP_SITES`] guard-site table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== run report: {} on {} ==",
            self.workload, self.system
        );
        if !self.meta.is_empty() {
            let kv: Vec<String> = self.meta.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "config: {}", kv.join(" "));
        }
        for s in &self.sections {
            let kv: Vec<String> = s.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let _ = writeln!(out, "[{:>8}] {}", s.name, kv.join(" "));
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "hist {name}: {h}");
        }
        if !self.event_counts.is_empty() {
            let kv: Vec<String> = self
                .event_counts
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(
                out,
                "events: {} (dropped={})",
                kv.join(" "),
                self.events_dropped
            );
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "warning: {} event(s) dropped from the trace ring — per-kind \
                 totals above remain exact, but the retained event list is \
                 truncated",
                self.events_dropped
            );
        }
        if let Some(t) = &self.timeline {
            out.push_str(&t.render());
        }
        if !self.sites.is_empty() {
            let _ = writeln!(out, "top guard sites by stall cycles:");
            let _ = writeln!(
                out,
                "  {:>4}  {:<32} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>7} {:>7}",
                "rank",
                "site",
                "hits",
                "fast",
                "slow_loc",
                "slow_rem",
                "cycles",
                "stall",
                "elided",
                "hoist"
            );
            for (i, r) in self.sites.iter().take(TOP_SITES).enumerate() {
                let _ = writeln!(
                    out,
                    "  {:>4}  {:<32} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>7} {:>7}",
                    i + 1,
                    r.label,
                    r.stats.hits,
                    r.stats.fast,
                    r.stats.slow_local,
                    r.stats.slow_remote,
                    r.stats.cycles,
                    r.stats.stall_cycles,
                    r.stats.elided,
                    r.stats.hoisted
                );
            }
            if self.sites.len() > TOP_SITES {
                let _ = writeln!(out, "  ... and {} more sites", self.sites.len() - TOP_SITES);
            }
        }
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl StatGroup for Fake {
        fn group_name(&self) -> &'static str {
            "fake"
        }
        fn stat_fields(&self) -> Vec<(&'static str, u64)> {
            vec![("a", 1), ("b", 2)]
        }
    }

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("stream", "trackfm");
        r.push_meta("local_fraction", 0.25);
        r.push_section(&Fake);
        let mut h = Histogram::new();
        h.record(100);
        h.record(30_000);
        r.push_histogram("fetch_latency_cycles", h);
        let mut t = SiteTable::new();
        let s = t.stats_mut(SiteKey::new(0, 7));
        s.hits = 10;
        s.slow_remote = 3;
        s.stall_cycles = 90_000;
        r.set_sites(&t, |k| (k.value() == 7).then(|| "main:v7:read".to_string()));
        r.set_event_counts(|k| if k == EventKind::DemandFetch { 3 } else { 0 }, 1);
        r
    }

    #[test]
    fn named_sections_override_the_group_name() {
        let mut r = RunReport::new("stream", "trackfm");
        r.push_named_section("shard0", &Fake);
        r.push_named_section("shard1", &Fake);
        assert_eq!(r.field("shard0", "a"), Some(1));
        assert_eq!(r.field("shard1", "b"), Some(2));
        assert_eq!(r.field("fake", "a"), None);
        let doc = Json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert_eq!(
            doc.get("stats")
                .unwrap()
                .get("shard1")
                .unwrap()
                .get("a")
                .unwrap(),
            &Json::Int(1)
        );
        assert!(r.render().contains("[  shard0] a=1 b=2"));
    }

    #[test]
    fn field_and_histogram_lookup() {
        let r = sample_report();
        assert_eq!(r.field("fake", "b"), Some(2));
        assert_eq!(r.field("fake", "zz"), None);
        assert_eq!(r.field("zz", "b"), None);
        assert_eq!(r.histogram("fetch_latency_cycles").unwrap().count(), 2);
    }

    #[test]
    fn json_round_trips_and_contains_everything() {
        let r = sample_report();
        let text = r.to_json().to_string_pretty();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("workload").and_then(Json::as_str), Some("stream"));
        assert_eq!(
            doc.get("stats")
                .unwrap()
                .get("fake")
                .unwrap()
                .get("a")
                .unwrap(),
            &Json::Int(1)
        );
        let hist = doc
            .get("histograms")
            .unwrap()
            .get("fetch_latency_cycles")
            .unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(2));
        assert!(hist.get("p99").and_then(Json::as_u64).unwrap() >= 30_000);
        let sites = doc.get("guard_sites").unwrap().as_arr().unwrap();
        assert_eq!(
            sites[0].get("label").and_then(Json::as_str),
            Some("main:v7:read")
        );
        assert_eq!(
            sites[0].get("stall_cycles").and_then(Json::as_u64),
            Some(90_000)
        );
        assert_eq!(
            doc.get("events")
                .unwrap()
                .get("demand_fetch")
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(doc.get("events_dropped").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn human_render_shows_site_table() {
        let r = sample_report();
        let text = r.render();
        assert!(text.contains("run report: stream on trackfm"));
        assert!(text.contains("top guard sites"));
        assert!(text.contains("main:v7:read"));
        assert!(text.contains("fetch_latency_cycles"));
    }

    #[test]
    fn dropped_events_raise_a_warning_line() {
        let mut r = sample_report();
        // sample_report records dropped=1.
        assert!(r.render().contains("warning: 1 event(s) dropped"));
        r.set_event_counts(|_| 1, 0);
        assert!(!r.render().contains("warning:"));
    }

    #[test]
    fn timeline_appears_only_when_set() {
        let mut r = sample_report();
        let json = r.to_json().to_string_pretty();
        assert!(!json.contains("\"timeline\""));
        assert!(!r.render().contains("timeline ("));
        r.set_timeline(TimelineSnapshot {
            bucket_cycles: 100,
            accesses: vec![4, 2],
            misses: vec![1, 2],
            occupancy_bytes: vec![0, 4096],
            shard_ppm: vec![],
            shard_degraded: vec![],
            core_accesses: vec![],
        });
        let json = r.to_json().to_string_pretty();
        let doc = Json::parse(&json).unwrap();
        let t = doc.get("timeline").expect("timeline key present");
        assert_eq!(t.get("bucket_cycles").and_then(Json::as_u64), Some(100));
        assert_eq!(t.get("accesses").unwrap().as_arr().unwrap().len(), 2);
        assert!(r.render().contains("miss_rate"));
    }
}
