//! # tfm-telemetry — the observability layer of the TrackFM reproduction
//!
//! Everything the evaluation needs to *attribute* cycles, in one
//! dependency-free leaf crate:
//!
//! * [`Telemetry`] — a cheaply-clonable handle shared by the machine, the
//!   memory systems, the runtime, the pager, and the link, so one run's
//!   events interleave on a single cycle timeline. Disabled by default;
//!   every probe on a disabled handle is a single branch.
//! * [`EventRing`] / [`Event`] / [`EventKind`] — a fixed-capacity trace of
//!   cycle-stamped events (guard fast/slow, custody exit, demand fetch,
//!   prefetch issue/hit/late, eviction, writeback, page fault, alloc/free).
//! * [`Histogram`] — log₂-bucketed distributions with p50/p90/p99
//!   accessors, used for fetch latency, stall-per-access, residency
//!   lifetime, and transfer sizes.
//! * [`SiteTable`] / [`SiteKey`] — per-guard-site attribution: slow-path
//!   and stall counters keyed by the originating IR instruction, the data
//!   behind "top-N hottest guard sites".
//! * [`RunReport`] — the unified record of a run: the four subsystem stat
//!   structs (via [`StatGroup`]), the histograms, and the site table, with
//!   human-readable and JSON renderers. [`Json`] is a minimal hand-rolled
//!   tree/writer/parser so nothing here needs serde.
//! * [`MergeStats`] — the common `merge` trait the bench harness uses for
//!   multi-run aggregation.
//! * [`trace`] — causal span tracing: a fixed-capacity span tree stamped
//!   in simulated cycles (roots per runtime operation, children per
//!   transfer/retry/kernel round), a windowed [`Timeline`] of miss rate /
//!   occupancy / shard health, and exporters to Chrome trace-event JSON
//!   and folded-stacks flamegraphs. Off by default and pay-for-use.
//!
//! See `DESIGN.md` ("Telemetry & run reports") for how the pieces wire
//! together.

pub mod events;
pub mod handle;
pub mod hist;
pub mod json;
pub mod report;
pub mod site;
pub mod trace;

pub use events::{Event, EventKind, EventRing, EVENT_KINDS};
pub use handle::{Telemetry, TelemetryInner, TelemetrySnapshot, DEFAULT_RING_CAPACITY};
pub use hist::{Histogram, BUCKETS};
pub use json::Json;
pub use report::{MergeStats, RunReport, SiteRow, StatGroup, StatSection, TOP_SITES};
pub use site::{SiteKey, SiteStats, SiteTable};
pub use trace::{
    sparkline, Span, SpanId, SpanKind, SpanTracer, Timeline, TimelineSnapshot, TraceConfig,
    TraceSnapshot,
};
