//! Cycle-stamped event tracing.
//!
//! Events land in a fixed-capacity ring: recording never allocates after
//! construction and never blocks — once the ring is full the oldest events
//! are overwritten (and counted as dropped). Per-kind totals keep counting
//! even for events the ring no longer retains.

/// What happened. The `arg` of the carrying [`Event`] is kind-specific:
/// a site key for guard events, an object/page id for memory events, a
/// byte count for allocation events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Guard took the fast path (resident object, custody held).
    GuardFast,
    /// Guard slow path resolved locally (state-table hit, no transfer).
    GuardSlowLocal,
    /// Guard slow path fetched the object from remote memory.
    GuardSlowRemote,
    /// Custody check failed; the access left the cached object.
    CustodyExit,
    /// Chunked-loop boundary check executed.
    BoundaryCheck,
    /// Chunked-loop locality guard executed.
    LocalityGuard,
    /// Demand fetch issued by the runtime.
    DemandFetch,
    /// Prefetch issued by the stride prefetcher.
    PrefetchIssue,
    /// Access hit an already-completed prefetch.
    PrefetchHit,
    /// Access hit an in-flight prefetch and had to wait for it.
    PrefetchLate,
    /// Object or page evicted from local memory.
    Eviction,
    /// Dirty object or page written back to remote memory.
    Writeback,
    /// Page fault serviced without a transfer (kernel baseline).
    MinorFault,
    /// Page fault requiring a remote transfer (kernel baseline).
    MajorFault,
    /// Allocation.
    Alloc,
    /// Deallocation.
    Free,
    /// The link injected a fault into a transfer attempt (arg: fault kind
    /// code).
    FaultInjected,
    /// A consumer retried a faulted transfer (arg: attempt number).
    Retry,
    /// Sustained link faults: the runtime entered degraded mode (arg:
    /// EWMA fault rate in ppm).
    Degraded,
    /// The link recovered: the runtime restored the fast configuration
    /// (arg: EWMA fault rate in ppm).
    Recovered,
    /// A shard was declared Down after a fail-fast crash signal (arg:
    /// shard index).
    ShardDown,
    /// A crashed shard restarted and entered recovery (arg: shard index).
    ShardRecovering,
    /// A recovering shard finished its ledger replay and rejoined (arg:
    /// shard index).
    ShardUp,
    /// One redo-ledger key was re-synced onto a recovering shard (arg:
    /// object key).
    Resync,
    /// One key was re-replicated off a Down shard onto a substitute (arg:
    /// object key).
    ReReplicate,
    /// A demand miss joined another core's pending fetch instead of issuing
    /// its own transfer (arg: object id). Multi-core scheduler only.
    FetchJoin,
}

/// Number of event kinds — derived from [`EventKind::ALL`] so adding a
/// variant can't silently desync the counter table (the `name()` match and
/// the `ALL` list are the only places a new kind must be added, and both
/// are checked by `kinds_cover_declaration_order`).
pub const EVENT_KINDS: usize = EventKind::ALL.len();

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: &'static [EventKind] = &[
        EventKind::GuardFast,
        EventKind::GuardSlowLocal,
        EventKind::GuardSlowRemote,
        EventKind::CustodyExit,
        EventKind::BoundaryCheck,
        EventKind::LocalityGuard,
        EventKind::DemandFetch,
        EventKind::PrefetchIssue,
        EventKind::PrefetchHit,
        EventKind::PrefetchLate,
        EventKind::Eviction,
        EventKind::Writeback,
        EventKind::MinorFault,
        EventKind::MajorFault,
        EventKind::Alloc,
        EventKind::Free,
        EventKind::FaultInjected,
        EventKind::Retry,
        EventKind::Degraded,
        EventKind::Recovered,
        EventKind::ShardDown,
        EventKind::ShardRecovering,
        EventKind::ShardUp,
        EventKind::Resync,
        EventKind::ReReplicate,
        EventKind::FetchJoin,
    ];

    /// Stable snake_case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::GuardFast => "guard_fast",
            EventKind::GuardSlowLocal => "guard_slow_local",
            EventKind::GuardSlowRemote => "guard_slow_remote",
            EventKind::CustodyExit => "custody_exit",
            EventKind::BoundaryCheck => "boundary_check",
            EventKind::LocalityGuard => "locality_guard",
            EventKind::DemandFetch => "demand_fetch",
            EventKind::PrefetchIssue => "prefetch_issue",
            EventKind::PrefetchHit => "prefetch_hit",
            EventKind::PrefetchLate => "prefetch_late",
            EventKind::Eviction => "eviction",
            EventKind::Writeback => "writeback",
            EventKind::MinorFault => "minor_fault",
            EventKind::MajorFault => "major_fault",
            EventKind::Alloc => "alloc",
            EventKind::Free => "free",
            EventKind::FaultInjected => "fault_injected",
            EventKind::Retry => "retry",
            EventKind::Degraded => "degraded",
            EventKind::Recovered => "recovered",
            EventKind::ShardDown => "shard_down",
            EventKind::ShardRecovering => "shard_recovering",
            EventKind::ShardUp => "shard_up",
            EventKind::Resync => "resync",
            EventKind::ReReplicate => "re_replicate",
            EventKind::FetchJoin => "fetch_join",
        }
    }
}

/// One trace entry: when, what, and a kind-specific argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (site key, object id, byte count, ...).
    pub arg: u64,
}

/// Fixed-capacity ring buffer of [`Event`]s.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest retained event (only meaningful once full).
    head: usize,
    dropped: u64,
    counts: [u64; EVENT_KINDS],
}

impl EventRing {
    /// A ring retaining at most `capacity` events. Capacity 0 disables
    /// retention (counts still accumulate).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            dropped: 0,
            counts: [0; EVENT_KINDS],
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events overwritten (or not retained) because the ring was
    /// full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed, retained or not.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total events of `kind` ever pushed, retained or not.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Records an event, overwriting the oldest one when full.
    #[inline]
    pub fn push(&mut self, e: Event) {
        self.counts[e.kind as usize] += 1;
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.buf.len();
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (newer, older) = self.buf.split_at(self.head);
        older.iter().chain(newer.iter())
    }

    /// Retained events as a vector, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            kind: EventKind::GuardFast,
            arg: cycle * 10,
        }
    }

    #[test]
    fn fills_then_wraps_preserving_order() {
        let mut r = EventRing::new(4);
        for c in 0..4 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3]);

        // Two more: 0 and 1 are overwritten.
        r.push(ev(4));
        r.push(ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4, 5]);
        assert_eq!(r.total(), 6);
        assert_eq!(r.count(EventKind::GuardFast), 6);
        assert_eq!(r.count(EventKind::Eviction), 0);
    }

    #[test]
    fn wraps_many_times() {
        let mut r = EventRing::new(3);
        for c in 0..100 {
            r.push(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 97);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![97, 98, 99]);
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn kind_names_are_unique_and_cover_all() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), EVENT_KINDS);
    }

    #[test]
    fn kinds_cover_declaration_order() {
        // `counts[kind as usize]` indexing relies on ALL being exactly the
        // declaration order with no gaps or duplicates.
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{} out of order in ALL", k.name());
        }
    }
}
