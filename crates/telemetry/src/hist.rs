//! Log-bucketed histograms.
//!
//! Power-of-two buckets over the full `u64` range: bucket 0 holds the value
//! 0, bucket `i` (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`. Recording is
//! a `leading_zeros` plus two adds — cheap enough to sit on the guard slow
//! path — and quantiles come back as the observed-max-clamped upper bound of
//! the bucket holding the target rank.

use crate::json::Json;

/// Number of buckets: one for zero plus one per power of two up to `2^63`.
pub const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, `floor(log2(v)) + 1` otherwise.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive `(lo, hi)` value range covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the sample
    /// of rank `ceil(q * count)`, clamped to the observed min/max. `q` is
    /// clamped to `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (_, hi) = Self::bucket_range(i);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Occupied buckets as `(lo, hi, count)` triples, low to high.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON form: summary stats plus the occupied buckets.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Int(self.count)),
            ("sum".into(), Json::Int(self.sum)),
            ("min".into(), Json::Int(self.min())),
            ("max".into(), Json::Int(self.max)),
            ("mean".into(), Json::Num(self.mean())),
            ("p50".into(), Json::Int(self.p50())),
            ("p90".into(), Json::Int(self.p90())),
            ("p99".into(), Json::Int(self.p99())),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets()
                        .map(|(lo, hi, c)| {
                            Json::Obj(vec![
                                ("lo".into(), Json::Int(lo)),
                                ("hi".into(), Json::Int(hi)),
                                ("count".into(), Json::Int(c)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p90={} p99={} max={} mean={:.1}",
            self.count,
            self.min(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every bucket's range round-trips through bucket_of.
        for i in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_of(lo), i);
            assert_eq!(Histogram::bucket_of(hi), i);
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        // Every quantile of a single sample is that sample (bucket upper
        // bound clamped to the observed max).
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
        assert_eq!(h.quantile(1.0), 42);
    }

    #[test]
    fn saturation_at_u64_max() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        // Sum saturates instead of overflowing.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn quantiles_track_distribution() {
        let mut h = Histogram::new();
        // 90 small samples, 10 large ones.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        assert!(h.p50() < 256, "p50={}", h.p50());
        assert!(h.p99() >= 65536, "p99={}", h.p99());
        assert!(h.p99() <= 131072);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(0);
        }
        h.record(7);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 7);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets[0], (0, 0, 5));
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        a.record(2);
        b.record(1 << 20);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1 << 20);
        assert_eq!(a.sum(), 3 + (1 << 20));
    }
}
