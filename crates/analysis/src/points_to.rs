//! Allocation-site memory classification (the guard-check analysis backbone).
//!
//! TrackFM must guard every load/store that may touch heap-allocated memory
//! and may skip accesses that provably touch only the stack or globals
//! (§3.1: "The pass ignores accesses to stack and global objects by
//! leveraging NOELLE's program dependence graph abstraction, which is
//! powered by several high-accuracy memory alias analyses").
//!
//! This module implements the equivalent as a flow-insensitive,
//! allocation-site-based classification over SSA values: every pointer value
//! is assigned a [`MemClass`], propagated to a fixpoint through copies, phi,
//! select, GEP and casts. Anything that may be heap (including values of
//! unknown provenance, e.g. pointers loaded from memory or passed in as
//! parameters) must be guarded; the run-time custody check (Fig. 4) keeps
//! this conservative answer correct and merely costs a few cycles.

use tfm_ir::{FuncId, Function, InstKind, Intrinsic, Type, Value};

/// Conservative classification of what a value may point to.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum MemClass {
    /// Not a pointer (or never used as one); bottom of the lattice.
    NonPtr,
    /// Definitely a TrackFM-managed (or libc) heap pointer.
    Heap,
    /// Definitely a stack slot pointer.
    Stack,
    /// Definitely a global data pointer.
    Global,
    /// Canonical pointer produced by a guard or chunk dereference: already
    /// localized, must not be re-guarded.
    Localized,
    /// Heap allocation pruned from remoting (§5 / MaPHeA-style): always
    /// local, never guarded.
    LocalHeap,
    /// Could be anything; top of the lattice.
    Unknown,
}

impl MemClass {
    /// Lattice join.
    pub fn join(self, other: MemClass) -> MemClass {
        use MemClass::*;
        match (self, other) {
            (a, b) if a == b => a,
            (NonPtr, x) | (x, NonPtr) => x,
            _ => Unknown,
        }
    }
}

/// Per-value memory classification for one function.
#[derive(Clone, Debug)]
pub struct PointsTo {
    class: Vec<MemClass>,
}

impl PointsTo {
    /// Runs the classification to a fixpoint.
    pub fn compute(f: &Function) -> Self {
        Self::compute_with_locals(f, &std::collections::HashSet::new())
    }

    /// [`PointsTo::compute`], with a set of allocation sites that have been
    /// pruned from remoting: their results classify as
    /// [`MemClass::LocalHeap`] and need no guards.
    pub fn compute_with_locals(
        f: &Function,
        local_sites: &std::collections::HashSet<Value>,
    ) -> Self {
        Self::compute_with_env(f, local_sites, &[], &|_| MemClass::Unknown)
    }

    /// [`PointsTo::compute_with_locals`], with interprocedural facts: the
    /// classes of this function's own pointer parameters (by parameter
    /// index; missing entries fall back to [`MemClass::Unknown`]) and the
    /// return-value class of each callee. Both refine values the
    /// intraprocedural analysis writes off as `Unknown`; non-pointer-typed
    /// parameters and call results keep the legacy `NonPtr` treatment, so
    /// refinement can only *narrow* the guarded set, never grow it.
    pub fn compute_with_env(
        f: &Function,
        local_sites: &std::collections::HashSet<Value>,
        param_class: &[MemClass],
        ret_class_of: &dyn Fn(FuncId) -> MemClass,
    ) -> Self {
        let n = f.num_insts();
        let mut class = vec![MemClass::NonPtr; n];
        let live = f.live_insts();
        let mut changed = true;
        while changed {
            changed = false;
            for &v in &live {
                let new = if local_sites.contains(&v) {
                    MemClass::LocalHeap
                } else {
                    Self::transfer(f, &class, v, param_class, ret_class_of)
                };
                let joined = class[v.index()].join(new);
                if joined != class[v.index()] {
                    class[v.index()] = joined;
                    changed = true;
                }
            }
        }
        PointsTo { class }
    }

    fn transfer(
        f: &Function,
        class: &[MemClass],
        v: Value,
        param_class: &[MemClass],
        ret_class_of: &dyn Fn(FuncId) -> MemClass,
    ) -> MemClass {
        use MemClass::*;
        match f.kind(v) {
            InstKind::Alloca { .. } => Stack,
            InstKind::GlobalAddr(_) => Global,
            InstKind::IntrinsicCall { intr, args } => match intr {
                Intrinsic::Malloc
                | Intrinsic::Calloc
                | Intrinsic::Realloc
                | Intrinsic::TfmAlloc
                | Intrinsic::TfmCalloc
                | Intrinsic::TfmRealloc => Heap,
                Intrinsic::GuardRead | Intrinsic::GuardWrite | Intrinsic::ChunkDeref => Localized,
                _ => {
                    let _ = args;
                    NonPtr
                }
            },
            InstKind::Param(i) => {
                if f.ty(v) == Some(Type::Ptr) {
                    param_class.get(*i as usize).copied().unwrap_or(Unknown)
                } else {
                    NonPtr
                }
            }
            InstKind::Load { .. } => {
                if f.ty(v) == Some(Type::Ptr) {
                    Unknown
                } else {
                    NonPtr
                }
            }
            InstKind::Call { func, .. } => {
                if f.ty(v) == Some(Type::Ptr) {
                    ret_class_of(*func)
                } else {
                    NonPtr
                }
            }
            InstKind::Gep { base, .. } => class[base.index()],
            InstKind::Cast(_, a) => {
                // Pointer provenance flows through int<->ptr casts: TrackFM
                // explicitly supports pointers round-tripped through integers
                // (§3.2, "even if a pointer is cast to an integer type").
                class[a.index()]
            }
            InstKind::Phi(incs) => incs
                .iter()
                .fold(NonPtr, |acc, (_, iv)| acc.join(class[iv.index()])),
            InstKind::Select { tval, fval, .. } => class[tval.index()].join(class[fval.index()]),
            InstKind::Binary(_, a, b) => {
                // Offset math on a pointer-derived integer keeps provenance.
                class[a.index()].join(class[b.index()])
            }
            _ => NonPtr,
        }
    }

    /// The classification of a value.
    pub fn class(&self, v: Value) -> MemClass {
        self.class[v.index()]
    }

    /// True if an access through `ptr` must be guarded: the pointer may be a
    /// TrackFM heap pointer.
    pub fn needs_guard(&self, ptr: Value) -> bool {
        matches!(self.class(ptr), MemClass::Heap | MemClass::Unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, CastOp, FunctionBuilder, Intrinsic, Module, Signature, Type};

    fn classify(build: impl FnOnce(&mut FunctionBuilder) -> Vec<Value>) -> (PointsTo, Vec<Value>) {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        let vals;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            vals = build(&mut b);
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        (PointsTo::compute(m.function(id)), vals)
    }

    #[test]
    fn classifies_allocation_sites() {
        let (pt, v) = classify(|b| {
            let heap = b.malloc_const(64);
            let stack = b.alloca(16, 8);
            vec![heap, stack]
        });
        assert_eq!(pt.class(v[0]), MemClass::Heap);
        assert_eq!(pt.class(v[1]), MemClass::Stack);
        assert!(pt.needs_guard(v[0]));
        assert!(!pt.needs_guard(v[1]));
    }

    #[test]
    fn gep_preserves_class() {
        let (pt, v) = classify(|b| {
            let heap = b.malloc_const(64);
            let i = b.iconst(Type::I64, 3);
            let g = b.gep(heap, i, 8, 0);
            vec![g]
        });
        assert_eq!(pt.class(v[0]), MemClass::Heap);
    }

    #[test]
    fn provenance_survives_int_roundtrip() {
        // §3.2: pointer cast to int, offset, cast back must still be guarded.
        let (pt, v) = classify(|b| {
            let heap = b.malloc_const(64);
            let as_int = b.cast(CastOp::PtrToInt, heap, Type::I64);
            let eight = b.iconst(Type::I64, 8);
            let off = b.binop(BinOp::Add, as_int, eight);
            let back = b.cast(CastOp::IntToPtr, off, Type::Ptr);
            vec![back]
        });
        assert_eq!(pt.class(v[0]), MemClass::Heap);
        assert!(pt.needs_guard(v[0]));
    }

    #[test]
    fn ptr_params_and_loaded_ptrs_are_unknown() {
        let (pt, v) = classify(|b| {
            let p = b.param(0);
            let loaded = b.load(Type::Ptr, p);
            vec![p, loaded]
        });
        assert_eq!(pt.class(v[0]), MemClass::Unknown);
        assert_eq!(pt.class(v[1]), MemClass::Unknown);
        assert!(pt.needs_guard(v[0]));
    }

    #[test]
    fn guard_results_are_localized() {
        let (pt, v) = classify(|b| {
            let heap = b.malloc_const(64);
            let loc = b.intrinsic(Intrinsic::GuardRead, vec![heap]);
            vec![loc]
        });
        assert_eq!(pt.class(v[0]), MemClass::Localized);
        assert!(!pt.needs_guard(v[0]));
    }

    #[test]
    fn phi_mixing_heap_and_stack_is_unknown() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let phi;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            let x = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let c = b.icmp(tfm_ir::CmpOp::Sgt, x, z);
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            let h = b.malloc_const(64);
            b.br(j);
            b.switch_to_block(e);
            let s = b.alloca(8, 8);
            b.br(j);
            b.switch_to_block(j);
            phi = b.phi(Type::Ptr, &[(t, h), (e, s)]);
            b.ret(Some(z));
        }
        let pt = PointsTo::compute(m.function(id));
        assert_eq!(pt.class(phi), MemClass::Unknown);
        assert!(pt.needs_guard(phi));
    }

    #[test]
    fn phi_of_same_class_keeps_the_class() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let phi;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            let x = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let c = b.icmp(tfm_ir::CmpOp::Sgt, x, z);
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            let h1 = b.malloc_const(64);
            b.br(j);
            b.switch_to_block(e);
            let h2 = b.malloc_const(128);
            b.br(j);
            b.switch_to_block(j);
            phi = b.phi(Type::Ptr, &[(t, h1), (e, h2)]);
            b.ret(Some(z));
        }
        let pt = PointsTo::compute(m.function(id));
        assert_eq!(pt.class(phi), MemClass::Heap);
        assert!(pt.needs_guard(phi));
    }

    #[test]
    fn select_joins_arm_classes() {
        // heap/heap stays Heap; heap/localized degrades to Unknown (and so
        // stays conservatively guarded).
        let (pt, v) = classify(|b| {
            let x = b.param(1);
            let z = b.iconst(Type::I64, 0);
            let c = b.icmp(tfm_ir::CmpOp::Sgt, x, z);
            let h1 = b.malloc_const(64);
            let h2 = b.malloc_const(64);
            let same = b.select(c, h1, h2);
            let loc = b.intrinsic(Intrinsic::GuardRead, vec![h1]);
            let mixed = b.select(c, h1, loc);
            vec![same, mixed]
        });
        assert_eq!(pt.class(v[0]), MemClass::Heap);
        assert_eq!(pt.class(v[1]), MemClass::Unknown);
        assert!(pt.needs_guard(v[1]));
    }

    #[test]
    fn gep_and_cast_chains_pin_through_phi() {
        // gep(cast(phi(heap, heap))) — class survives the whole chain.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let (chain, locchain);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            let x = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let c = b.icmp(tfm_ir::CmpOp::Sgt, x, z);
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            let h1 = b.malloc_const(64);
            b.br(j);
            b.switch_to_block(e);
            let h2 = b.malloc_const(64);
            b.br(j);
            b.switch_to_block(j);
            let phi = b.phi(Type::Ptr, &[(t, h1), (e, h2)]);
            let as_int = b.cast(CastOp::PtrToInt, phi, Type::I64);
            let back = b.cast(CastOp::IntToPtr, as_int, Type::Ptr);
            chain = b.gep(back, x, 8, 16);
            // Localized custody also survives gep/cast chains.
            let g = b.intrinsic(Intrinsic::GuardRead, vec![chain]);
            let gi = b.cast(CastOp::PtrToInt, g, Type::I64);
            let gb = b.cast(CastOp::IntToPtr, gi, Type::Ptr);
            locchain = b.gep(gb, x, 8, 0);
            b.ret(Some(z));
        }
        let pt = PointsTo::compute(m.function(id));
        assert_eq!(pt.class(chain), MemClass::Heap);
        assert!(pt.needs_guard(chain));
        assert_eq!(pt.class(locchain), MemClass::Localized);
        assert!(!pt.needs_guard(locchain));
    }

    #[test]
    fn unknown_provenance_param_chains_stay_guarded() {
        // A pointer parameter pushed through gep/cast/binary chains must
        // remain conservatively guarded: its provenance is unknowable.
        let (pt, v) = classify(|b| {
            let p = b.param(0);
            let i = b.param(1);
            let g1 = b.gep(p, i, 8, 0);
            let as_int = b.cast(CastOp::PtrToInt, g1, Type::I64);
            let off = b.binop(BinOp::Add, as_int, i);
            let back = b.cast(CastOp::IntToPtr, off, Type::Ptr);
            let g2 = b.gep(back, i, 1, -4);
            vec![g2]
        });
        assert_eq!(pt.class(v[0]), MemClass::Unknown);
        assert!(pt.needs_guard(v[0]));
    }

    #[test]
    fn pruned_local_sites_propagate_localheap() {
        use std::collections::HashSet;
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let (site, derived);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let i = b.param(0);
            site = b.malloc_const(64);
            derived = b.gep(site, i, 8, 0);
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        let locals: HashSet<_> = [site].into_iter().collect();
        let pt = PointsTo::compute_with_locals(m.function(id), &locals);
        assert_eq!(pt.class(site), MemClass::LocalHeap);
        assert_eq!(pt.class(derived), MemClass::LocalHeap);
        assert!(!pt.needs_guard(derived));
    }

    #[test]
    fn join_laws() {
        use MemClass::*;
        for a in [NonPtr, Heap, Stack, Global, Localized, LocalHeap, Unknown] {
            assert_eq!(a.join(a), a);
            assert_eq!(a.join(NonPtr), a);
            assert_eq!(NonPtr.join(a), a);
            assert_eq!(a.join(Unknown), Unknown);
            for b in [Heap, Stack, Global, Localized, LocalHeap] {
                if a != b && a != NonPtr {
                    assert_eq!(a.join(b), Unknown);
                }
            }
        }
    }
}
