//! # tfm-analysis — program analyses for the TrackFM compiler
//!
//! The TrackFM paper builds its passes on NOELLE's program-wide abstractions:
//! a program dependence graph backed by "several high-accuracy memory alias
//! analyses" (used by the guard-check analysis to skip stack/global
//! accesses), a dependence-pattern induction-variable analysis (used by loop
//! chunking), and a profiling engine (used to filter low-density loops).
//!
//! This crate provides the equivalents over [`tfm_ir`]:
//!
//! * [`mod@cfg`] — reverse postorder and friends;
//! * [`dom`] — a Cooper–Harvey–Kennedy dominator tree;
//! * [`loops`] — natural-loop forest, preheader creation, exit edges;
//! * [`defuse`] — def-use chains;
//! * [`points_to`] — allocation-site memory classification (heap / stack /
//!   global / localized / unknown), the alias backbone of the guard-check
//!   analysis;
//! * [`guard_check`] — forward available-guards dataflow (which SSA values
//!   hold custody at each program point), behind the soundness lint and the
//!   redundant-guard elimination pass;
//! * [`induction`] — basic and derived induction variables plus strided
//!   loop accesses, the backbone of loop chunking and prefetch planning;
//! * [`callgraph`] — the module call graph with Tarjan SCC condensation,
//!   giving the bottom-up order interprocedural analyses run in;
//! * [`summaries`] — per-function effect summaries (custody transparency,
//!   may-free / may-evacuate, region read/write sets, parameter and
//!   return-value memory classes and custody) propagated across call
//!   sites, the whole-program layer behind call-aware guard checking,
//!   interprocedural parameter classification, and guard motion;
//! * [`profile`] — edge/block execution profiles gathered by the simulator
//!   and consumed by the chunking cost model.

pub mod callgraph;
pub mod cfg;
pub mod defuse;
pub mod dom;
pub mod guard_check;
pub mod induction;
pub mod loops;
pub mod points_to;
pub mod profile;
pub mod summaries;

pub use callgraph::{CallGraph, CallSite};
pub use dom::{DomTree, PostDomTree};
pub use guard_check::{AvailableGuards, CallEffects, Cover, CoverSrc, GuardKind};
pub use induction::{BasicIv, LoopAccess};
pub use loops::{LoopForest, NaturalLoop};
pub use points_to::{MemClass, PointsTo};
pub use profile::Profile;
pub use summaries::{FnSummary, ModuleSummaries, RegionSet};
