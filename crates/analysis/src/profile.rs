//! Execution profiles.
//!
//! The paper couples its chunking cost model with NOELLE's profiling engine
//! (§3.4: "we leverage NOELLE's profiling engine to collect loop code
//! coverage statistics", used in Fig. 8/15 to filter loops where chunking
//! would hurt). The simulator's profiling mode produces this structure; the
//! `trackfm` chunking analysis consumes it.

use crate::loops::NaturalLoop;
use std::collections::HashMap;
use tfm_ir::{Block, Function};

/// Per-function block and edge execution counts.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// `(function name, block) → executions`.
    pub block_counts: HashMap<(String, Block), u64>,
    /// `(function name, from, to) → edge traversals`.
    pub edge_counts: HashMap<(String, Block, Block), u64>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a block execution.
    pub fn count_block(&mut self, func: &str, b: Block) {
        *self.block_counts.entry((func.to_string(), b)).or_insert(0) += 1;
    }

    /// Records an edge traversal.
    pub fn count_edge(&mut self, func: &str, from: Block, to: Block) {
        *self
            .edge_counts
            .entry((func.to_string(), from, to))
            .or_insert(0) += 1;
    }

    /// Executions of `b` in `func`.
    pub fn block_count(&self, func: &str, b: Block) -> u64 {
        self.block_counts
            .get(&(func.to_string(), b))
            .copied()
            .unwrap_or(0)
    }

    /// Total times the loop was entered (edges into the header from outside
    /// the loop).
    pub fn loop_entries(&self, f: &Function, lp: &NaturalLoop) -> u64 {
        f.preds(lp.header)
            .into_iter()
            .filter(|p| !lp.contains(*p))
            .map(|p| {
                self.edge_counts
                    .get(&(f.name.clone(), p, lp.header))
                    .copied()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Total loop iterations (header executions).
    pub fn loop_iterations(&self, f: &Function, lp: &NaturalLoop) -> u64 {
        self.block_count(&f.name, lp.header)
    }

    /// Average iterations per entry, or `None` if the loop never ran.
    ///
    /// This is the quantity the profile-guided chunking filter needs: a loop
    /// that averages only a handful of iterations cannot amortize a
    /// locality-invariant guard, regardless of static object density.
    pub fn avg_trip_count(&self, f: &Function, lp: &NaturalLoop) -> Option<f64> {
        let entries = self.loop_entries(f, lp);
        if entries == 0 {
            return None;
        }
        // Header executes (iterations + 1) times per entry for rotated-exit
        // loops; we report raw iterations-per-entry which is what the cost
        // model integrates over.
        Some(self.loop_iterations(f, lp) as f64 / entries as f64)
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (k, v) in &other.block_counts {
            *self.block_counts.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.edge_counts {
            *self.edge_counts.entry(k.clone()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use crate::loops::LoopForest;
    use tfm_ir::{FunctionBuilder, Module, Signature, Type};

    fn looped_module() -> (Module, tfm_ir::FuncId) {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |_b, _i| {});
            b.ret(Some(zero));
        }
        (m, id)
    }

    #[test]
    fn trip_count_from_edge_counts() {
        let (m, id) = looped_module();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let lp = &forest.loops[0];
        let pre = lp.preheader(f).unwrap();
        let latch = lp.latches[0];

        let mut p = Profile::new();
        // Simulate 2 entries, 10 iterations each: header runs 22 times
        // (10 body iterations + 1 exit check, per entry).
        for _ in 0..2 {
            p.count_edge("f", pre, lp.header);
            for _ in 0..10 {
                p.count_block("f", lp.header);
                p.count_edge("f", latch, lp.header);
            }
            p.count_block("f", lp.header); // exit check
        }
        assert_eq!(p.loop_entries(f, lp), 2);
        assert_eq!(p.loop_iterations(f, lp), 22);
        assert_eq!(p.avg_trip_count(f, lp), Some(11.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Profile::new();
        a.count_block("f", Block(1));
        let mut b = Profile::new();
        b.count_block("f", Block(1));
        b.count_block("f", Block(2));
        a.merge(&b);
        assert_eq!(a.block_count("f", Block(1)), 2);
        assert_eq!(a.block_count("f", Block(2)), 1);
    }

    #[test]
    fn unexecuted_loop_has_no_trip_count() {
        let (m, id) = looped_module();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let p = Profile::new();
        assert_eq!(p.avg_trip_count(f, &forest.loops[0]), None);
    }
}
