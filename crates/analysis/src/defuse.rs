//! Def-use chains.

use tfm_ir::{Function, Value};

/// Users of every value in a function.
#[derive(Clone, Debug)]
pub struct Uses {
    users: Vec<Vec<Value>>,
}

impl Uses {
    /// Computes def-use chains for the live instructions of `f`.
    pub fn compute(f: &Function) -> Self {
        let mut users = vec![Vec::new(); f.num_insts()];
        for v in f.live_insts() {
            f.kind(v).for_each_operand(|op| {
                users[op.index()].push(v);
            });
        }
        Uses { users }
    }

    /// The instructions using `v` (with multiplicity, in block order).
    pub fn users(&self, v: Value) -> &[Value] {
        &self.users[v.index()]
    }

    /// True if `v` has no users.
    pub fn is_unused(&self, v: Value) -> bool {
        self.users[v.index()].is_empty()
    }

    /// Number of uses of `v`.
    pub fn num_uses(&self, v: Value) -> usize {
        self.users[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, FunctionBuilder, Module, Signature, Type};

    #[test]
    fn tracks_users_with_multiplicity() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let (x, dbl, unused, ret_v);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            x = b.param(0);
            dbl = b.binop(BinOp::Add, x, x);
            unused = b.iconst(Type::I64, 9);
            ret_v = dbl;
            b.ret(Some(ret_v));
        }
        let uses = Uses::compute(m.function(id));
        assert_eq!(uses.num_uses(x), 2); // both operands of dbl
        assert_eq!(uses.users(x), &[dbl, dbl]);
        assert_eq!(uses.num_uses(dbl), 1);
        assert!(uses.is_unused(unused));
    }
}
