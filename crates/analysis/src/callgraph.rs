//! Module call graph with SCC condensation.
//!
//! The interprocedural analyses (see [`crate::summaries`]) need two things
//! from the call structure: the set of direct call edges, and an order in
//! which per-function summaries can be computed bottom-up (callees before
//! callers) with recursion handled soundly. Both come from Tarjan's
//! strongly-connected-components algorithm: the SCC condensation of the
//! call graph is a DAG, its reverse topological order *is* the bottom-up
//! order, and mutually-recursive functions land in one component that the
//! summary fixpoint iterates until stable.
//!
//! The IR has direct calls only ([`InstKind::Call`] carries a `FuncId`), so
//! the graph is exact: there are no indirect-call over-approximation edges.

use std::collections::HashMap;
use tfm_ir::{FuncId, InstKind, Module};

/// One call site: the calling function and the call instruction's callee.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The function containing the call.
    pub caller: FuncId,
    /// The call instruction (a value of `caller`).
    pub inst: tfm_ir::Value,
    /// The function being called.
    pub callee: FuncId,
}

/// The module's direct call graph plus its SCC condensation.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Every function in the module, in id order.
    funcs: Vec<FuncId>,
    /// Per caller: distinct callees (deduplicated, in first-call order).
    callees: HashMap<FuncId, Vec<FuncId>>,
    /// Per callee: distinct callers (deduplicated).
    callers: HashMap<FuncId, Vec<FuncId>>,
    /// Every call site, in (caller, instruction) order.
    sites: Vec<CallSite>,
    /// SCC id per function (indexed by `FuncId.0`); components are numbered
    /// in reverse topological (bottom-up) order: callees' components first.
    scc_of: Vec<u32>,
    /// Members of each component, in `scc_of` numbering.
    sccs: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph of `module` and condenses it.
    pub fn compute(module: &Module) -> Self {
        let funcs: Vec<FuncId> = module.function_ids().collect();
        let mut callees: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
        let mut callers: HashMap<FuncId, Vec<FuncId>> = HashMap::new();
        let mut sites = Vec::new();
        for &id in &funcs {
            let f = module.function(id);
            for v in f.live_insts() {
                if let InstKind::Call { func, .. } = f.kind(v) {
                    sites.push(CallSite {
                        caller: id,
                        inst: v,
                        callee: *func,
                    });
                    let outs = callees.entry(id).or_default();
                    if !outs.contains(func) {
                        outs.push(*func);
                    }
                    let ins = callers.entry(*func).or_default();
                    if !ins.contains(&id) {
                        ins.push(id);
                    }
                }
            }
        }
        let (scc_of, sccs) = condense(&funcs, &callees);
        CallGraph {
            funcs,
            callees,
            callers,
            sites,
            scc_of,
            sccs,
        }
    }

    /// All functions, in id order.
    pub fn functions(&self) -> &[FuncId] {
        &self.funcs
    }

    /// Distinct direct callees of `f` (empty for leaves).
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        self.callees.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Distinct direct callers of `f` (empty for roots).
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        self.callers.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every call site in the module.
    pub fn sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Call sites whose callee is `f`.
    pub fn sites_of(&self, f: FuncId) -> impl Iterator<Item = &CallSite> {
        self.sites.iter().filter(move |s| s.callee == f)
    }

    /// The SCC id of `f`. Components are numbered bottom-up: if `f` calls
    /// `g` and they are not mutually recursive, `scc_id(g) < scc_id(f)`.
    pub fn scc_id(&self, f: FuncId) -> u32 {
        self.scc_of[f.0 as usize]
    }

    /// The components in bottom-up (reverse topological) order: processing
    /// them in index order visits every callee's component before any of its
    /// callers' components.
    pub fn sccs_bottom_up(&self) -> &[Vec<FuncId>] {
        &self.sccs
    }

    /// True when `f` participates in recursion (its component has more than
    /// one member, or it calls itself directly).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.sccs[self.scc_of[f.0 as usize] as usize].len() > 1 || self.callees(f).contains(&f)
    }

    /// Functions with no in-module callers. Entry points reached from
    /// outside (e.g. `main`, or anything a harness invokes by name) must be
    /// treated as roots by interprocedural refinement regardless.
    pub fn uncalled(&self) -> Vec<FuncId> {
        self.funcs
            .iter()
            .copied()
            .filter(|f| self.callers(*f).is_empty())
            .collect()
    }
}

/// Tarjan's SCC algorithm (iterative), returning `(scc_of, components)`
/// with components numbered in reverse topological order.
fn condense(
    funcs: &[FuncId],
    callees: &HashMap<FuncId, Vec<FuncId>>,
) -> (Vec<u32>, Vec<Vec<FuncId>>) {
    let n = funcs.iter().map(|f| f.0 as usize + 1).max().unwrap_or(0);
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0u32; n];
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS frames: (node, next-callee cursor).
    for &root in funcs {
        let root = root.0 as usize;
        if index[root] != UNVISITED {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let outs = callees
                .get(&FuncId(v as u32))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            if *cursor < outs.len() {
                let w = outs[*cursor].0 as usize;
                *cursor += 1;
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len() as u32;
                        comp.push(FuncId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_by_key(|f| f.0);
                    sccs.push(comp);
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    (scc_of, sccs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature, Type};

    /// Builds a module whose call structure is given by `edges` over `n`
    /// functions named `f0..fn`.
    fn graph(n: usize, edges: &[(usize, usize)]) -> (Module, Vec<FuncId>) {
        let mut m = Module::new("t");
        let ids: Vec<FuncId> = (0..n)
            .map(|i| m.declare_function(format!("f{i}"), Signature::new(vec![], Some(Type::I64))))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            let calls: Vec<FuncId> = edges
                .iter()
                .filter(|(a, _)| *a == i)
                .map(|(_, b)| ids[*b])
                .collect();
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let mut last = b.iconst(Type::I64, i as i64);
            for c in calls {
                last = b.call(c, vec![], Some(Type::I64));
            }
            b.ret(Some(last));
        }
        m.verify().unwrap();
        (m, ids)
    }

    #[test]
    fn edges_and_sites_are_exact() {
        let (m, ids) = graph(3, &[(0, 1), (0, 2), (1, 2)]);
        let cg = CallGraph::compute(&m);
        assert_eq!(cg.callees(ids[0]), &[ids[1], ids[2]]);
        assert_eq!(cg.callees(ids[1]), &[ids[2]]);
        assert!(cg.callees(ids[2]).is_empty());
        assert_eq!(cg.callers(ids[2]), &[ids[0], ids[1]]);
        assert_eq!(cg.sites().len(), 3);
        assert_eq!(cg.sites_of(ids[2]).count(), 2);
        assert_eq!(cg.uncalled(), vec![ids[0]]);
    }

    #[test]
    fn bottom_up_order_visits_callees_first() {
        let (m, ids) = graph(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]);
        let cg = CallGraph::compute(&m);
        // Leaf f2 must come before f1/f3, which come before f0.
        assert!(cg.scc_id(ids[2]) < cg.scc_id(ids[1]));
        assert!(cg.scc_id(ids[2]) < cg.scc_id(ids[3]));
        assert!(cg.scc_id(ids[1]) < cg.scc_id(ids[0]));
        assert!(cg.scc_id(ids[3]) < cg.scc_id(ids[0]));
        // Walking sccs_bottom_up in index order respects every edge.
        for site in cg.sites() {
            assert!(cg.scc_id(site.callee) <= cg.scc_id(site.caller));
        }
        assert_eq!(cg.sccs_bottom_up().len(), 4);
    }

    #[test]
    fn mutual_recursion_condenses_to_one_component() {
        let (m, ids) = graph(3, &[(0, 1), (1, 2), (2, 1)]);
        let cg = CallGraph::compute(&m);
        assert_eq!(cg.scc_id(ids[1]), cg.scc_id(ids[2]));
        assert_ne!(cg.scc_id(ids[0]), cg.scc_id(ids[1]));
        assert!(cg.is_recursive(ids[1]));
        assert!(cg.is_recursive(ids[2]));
        assert!(!cg.is_recursive(ids[0]));
        let comp = &cg.sccs_bottom_up()[cg.scc_id(ids[1]) as usize];
        assert_eq!(comp.as_slice(), &[ids[1], ids[2]]);
    }

    #[test]
    fn self_recursion_is_detected() {
        let (m, ids) = graph(2, &[(0, 0), (0, 1)]);
        let cg = CallGraph::compute(&m);
        assert!(cg.is_recursive(ids[0]));
        assert!(!cg.is_recursive(ids[1]));
        assert_eq!(cg.sccs_bottom_up().len(), 2);
    }
}
