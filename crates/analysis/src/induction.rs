//! Induction-variable analysis and strided-access detection.
//!
//! NOELLE detects induction variables "as patterns in the dependence graph,
//! rather than building on variable analysis" (§3.4, fn. 6). We implement the
//! same idea directly on SSA def-use patterns: a basic IV is a header phi
//! whose loop-carried input is a constant-step add/sub of the phi itself;
//! strided accesses are loads/stores whose address is a GEP of a
//! loop-invariant base indexed by an IV (possibly through casts or constant
//! offsets).
//!
//! The loop-chunking pass (§3.4) uses these results to decide which accesses
//! can trade per-element fast-path guards for per-object boundary checks,
//! and the prefetch pass uses the stride sign/magnitude to plan sequential
//! prefetching.

use crate::loops::NaturalLoop;
use tfm_ir::{CastOp, Function, InstKind, Value};

/// A basic induction variable: `phi` starts at `init` and advances by the
/// compile-time constant `step` each iteration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BasicIv {
    /// The header phi.
    pub phi: Value,
    /// Initial value (from outside the loop).
    pub init: Value,
    /// Constant per-iteration step (may be negative).
    pub step: i64,
}

/// A strided memory access inside a loop.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LoopAccess {
    /// The load or store instruction.
    pub inst: Value,
    /// True for stores.
    pub is_store: bool,
    /// The GEP computing the address.
    pub gep: Value,
    /// Loop-invariant base pointer.
    pub base: Value,
    /// The governing IV.
    pub iv: BasicIv,
    /// Byte distance between consecutive iterations' accesses
    /// (`gep.scale × iv.step`; may be negative).
    pub stride: i64,
    /// Width of the accessed element in bytes.
    pub access_size: u32,
}

impl LoopAccess {
    /// The collection "element size" used by the paper's density model
    /// (`d = o / e`): the absolute stride, i.e. how far apart consecutive
    /// touches land.
    pub fn element_size(&self) -> u64 {
        self.stride.unsigned_abs().max(1)
    }

    /// True when consecutive iterations touch adjacent or overlapping
    /// elements in ascending order — the profile the stride prefetcher wants.
    pub fn is_sequential(&self) -> bool {
        self.stride > 0
    }
}

/// Finds the basic induction variables of a loop.
pub fn basic_ivs(f: &Function, lp: &NaturalLoop) -> Vec<BasicIv> {
    let mut out = Vec::new();
    for &v in f.block_insts(lp.header) {
        let InstKind::Phi(incs) = f.kind(v) else {
            continue;
        };
        // Partition incomings into loop-carried and entry edges.
        let mut init = None;
        let mut carried = None;
        let mut ok = true;
        for (pred, val) in incs {
            if lp.contains(*pred) {
                if carried.replace(*val).is_some() {
                    ok = false; // multiple latch edges with different values
                }
            } else if let Some(prev) = init.replace(*val) {
                if prev != *val {
                    ok = false;
                }
            }
        }
        let (Some(init), Some(carried), true) = (init, carried, ok) else {
            continue;
        };
        if let Some(step) = constant_step(f, carried, v) {
            out.push(BasicIv { phi: v, init, step });
        }
    }
    out
}

/// If `next` computes `phi ± constant`, return the signed step.
fn constant_step(f: &Function, next: Value, phi: Value) -> Option<i64> {
    match f.kind(next) {
        InstKind::Binary(op, a, b) => {
            let (ka, kb) = (f.kind(*a), f.kind(*b));
            match op {
                tfm_ir::BinOp::Add => {
                    if *a == phi {
                        const_of(kb)
                    } else if *b == phi {
                        const_of(ka)
                    } else {
                        None
                    }
                }
                tfm_ir::BinOp::Sub if *a == phi => const_of(kb).map(|c| -c),
                _ => None,
            }
        }
        _ => None,
    }
}

fn const_of(k: &InstKind) -> Option<i64> {
    match k {
        InstKind::ConstInt(c) => Some(*c),
        _ => None,
    }
}

/// True if `v` is defined outside the loop (loop-invariant by SSA).
pub fn is_invariant(f: &Function, lp: &NaturalLoop, v: Value) -> bool {
    !lp.contains(f.inst(v).block)
}

/// Resolves an index expression to an IV it is an affine function of:
/// accepts the phi itself, integer casts of it, and `phi + const`.
fn index_iv<'a>(f: &Function, ivs: &'a [BasicIv], mut idx: Value) -> Option<&'a BasicIv> {
    for _ in 0..4 {
        if let Some(iv) = ivs.iter().find(|iv| iv.phi == idx) {
            return Some(iv);
        }
        match f.kind(idx) {
            InstKind::Cast(CastOp::Sext | CastOp::Zext | CastOp::Trunc, inner) => idx = *inner,
            InstKind::Binary(tfm_ir::BinOp::Add | tfm_ir::BinOp::Sub, a, b) => {
                if const_of(f.kind(*b)).is_some() {
                    idx = *a;
                } else if const_of(f.kind(*a)).is_some() {
                    idx = *b;
                } else {
                    return None;
                }
            }
            _ => return None,
        }
    }
    None
}

/// Finds all strided accesses of a loop given its basic IVs.
pub fn strided_accesses(f: &Function, lp: &NaturalLoop, ivs: &[BasicIv]) -> Vec<LoopAccess> {
    let mut out = Vec::new();
    for &b in &lp.blocks {
        for &v in f.block_insts(b) {
            let (ptr, is_store, access_size) = match f.kind(v) {
                InstKind::Load { ptr } => {
                    let sz = f.ty(v).map(|t| t.size()).unwrap_or(8);
                    (*ptr, false, sz)
                }
                InstKind::Store { ptr, val } => {
                    let sz = f.ty(*val).map(|t| t.size()).unwrap_or(8);
                    (*ptr, true, sz)
                }
                _ => continue,
            };
            let InstKind::Gep {
                base,
                index,
                scale,
                disp: _,
            } = f.kind(ptr)
            else {
                continue;
            };
            if !is_invariant(f, lp, *base) {
                continue;
            }
            let Some(iv) = index_iv(f, ivs, *index) else {
                continue;
            };
            out.push(LoopAccess {
                inst: v,
                is_store,
                gep: ptr,
                base: *base,
                iv: *iv,
                stride: (*scale as i64) * iv.step,
                access_size,
            });
        }
    }
    out.sort_by_key(|a| a.inst);
    out
}

/// Static trip-count estimate: available when the governing comparison is
/// `iv < constant` with constant init and step.
pub fn static_trip_count(f: &Function, lp: &NaturalLoop, ivs: &[BasicIv]) -> Option<u64> {
    let term = f.terminator(lp.header)?;
    let InstKind::CondBr { cond, .. } = f.kind(term) else {
        return None;
    };
    let InstKind::Icmp(_, a, b) = f.kind(*cond) else {
        return None;
    };
    let (iv, bound) = if let Some(iv) = ivs.iter().find(|iv| iv.phi == *a) {
        (iv, *b)
    } else if let Some(iv) = ivs.iter().find(|iv| iv.phi == *b) {
        (iv, *a)
    } else {
        return None;
    };
    let init = const_of(f.kind(iv.init))?;
    let bound = const_of(f.kind(bound))?;
    if iv.step > 0 && bound > init {
        Some(((bound - init) as u64).div_ceil(iv.step as u64))
    } else if iv.step < 0 && init > bound {
        Some(((init - bound) as u64).div_ceil(iv.step.unsigned_abs()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::DomTree;
    use crate::loops::LoopForest;
    use tfm_ir::{FunctionBuilder, Module, Signature, Type};

    fn with_loop(
        elems: i64,
        scale: u32,
        build_body: impl FnOnce(&mut FunctionBuilder, Value, Value),
    ) -> (Module, tfm_ir::FuncId) {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, elems);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(arr, i, scale, 0);
                build_body(b, addr, i);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        (m, id)
    }

    fn analyse(m: &Module, id: tfm_ir::FuncId) -> (Vec<BasicIv>, Vec<LoopAccess>, Option<u64>) {
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        assert_eq!(forest.loops.len(), 1);
        let lp = &forest.loops[0];
        let ivs = basic_ivs(f, lp);
        let accesses = strided_accesses(f, lp, &ivs);
        let tc = static_trip_count(f, lp, &ivs);
        (ivs, accesses, tc)
    }

    #[test]
    fn detects_basic_iv_and_trip_count() {
        let (m, id) = with_loop(100, 8, |b, addr, _i| {
            let _ = b.load(Type::I64, addr);
        });
        let (ivs, _, tc) = analyse(&m, id);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 1);
        assert_eq!(tc, Some(100));
    }

    #[test]
    fn detects_strided_load_and_store() {
        let (m, id) = with_loop(64, 4, |b, addr, i| {
            let x = b.load(Type::I32, addr);
            let y = b.binop(tfm_ir::BinOp::Add, x, x);
            let _ = i;
            b.store(addr, y);
        });
        let (_, accesses, _) = analyse(&m, id);
        assert_eq!(accesses.len(), 2);
        let load = accesses.iter().find(|a| !a.is_store).unwrap();
        let store = accesses.iter().find(|a| a.is_store).unwrap();
        assert_eq!(load.stride, 4);
        assert_eq!(load.access_size, 4);
        assert_eq!(load.element_size(), 4);
        assert!(load.is_sequential());
        assert_eq!(store.stride, 4);
    }

    #[test]
    fn sees_through_index_cast() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 10);
            b.counted_loop(zero, n, 1, |b, i| {
                let i32v = b.cast(CastOp::Trunc, i, Type::I32);
                let i64v = b.cast(CastOp::Sext, i32v, Type::I64);
                let addr = b.gep(arr, i64v, 8, 0);
                let _ = b.load(Type::I64, addr);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let (_, accesses, _) = analyse(&m, id);
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].stride, 8);
    }

    #[test]
    fn non_invariant_base_is_skipped() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 10);
            b.counted_loop(zero, n, 1, |b, i| {
                // Base depends on a value loaded in the loop → not invariant.
                let slot = b.gep(arr, i, 8, 0);
                let base = b.load(Type::Ptr, slot);
                let addr = b.gep(base, i, 8, 0);
                let _ = b.load(Type::I64, addr);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let lp = &forest.loops[0];
        let ivs = basic_ivs(f, lp);
        let accesses = strided_accesses(f, lp, &ivs);
        // Only the invariant-base access (`slot` load) qualifies.
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].base, m.function(id).param(0));
    }

    #[test]
    fn negative_step_gives_negative_stride() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let n = b.iconst(Type::I64, 100);
            let zero = b.iconst(Type::I64, 0);
            // for (i = 100; 0 < i; i -= 2)
            let pre = b.current_block();
            let hdr = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            b.br(hdr);
            b.switch_to_block(hdr);
            let i = b.phi(Type::I64, &[(pre, n)]);
            let c = b.icmp(tfm_ir::CmpOp::Slt, zero, i);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let addr = b.gep(arr, i, 8, 0);
            let _ = b.load(Type::I64, addr);
            let two = b.iconst(Type::I64, 2);
            let i2 = b.binop(tfm_ir::BinOp::Sub, i, two);
            b.add_phi_incoming(i, body, i2);
            b.br(hdr);
            b.switch_to_block(exit);
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let lp = &forest.loops[0];
        let ivs = basic_ivs(f, lp);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, -2);
        let acc = strided_accesses(f, lp, &ivs);
        assert_eq!(acc[0].stride, -16);
        assert!(!acc[0].is_sequential());
        assert_eq!(acc[0].element_size(), 16);
        // `0 < i` form with const bound and init: trip count = 50.
        assert_eq!(static_trip_count(f, lp, &ivs), Some(50));
    }

    #[test]
    fn derived_iv_through_cast_and_constant_offset() {
        // index = sext(trunc(i)) + 5: the cast chain and the constant
        // offset are both peeled, so the access is still IV-strided.
        let (m, id) = {
            let mut m = Module::new("t");
            let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let arr = b.param(0);
                let zero = b.iconst(Type::I64, 0);
                let n = b.iconst(Type::I64, 12);
                b.counted_loop(zero, n, 1, |b, i| {
                    let t = b.cast(CastOp::Trunc, i, Type::I32);
                    let w = b.cast(CastOp::Sext, t, Type::I64);
                    let five = b.iconst(Type::I64, 5);
                    let j = b.binop(tfm_ir::BinOp::Add, w, five);
                    let addr = b.gep(arr, j, 4, 0);
                    let _ = b.load(Type::I32, addr);
                });
                b.ret(Some(zero));
            }
            m.verify().unwrap();
            (m, id)
        };
        let (ivs, accesses, tc) = analyse(&m, id);
        assert_eq!(ivs.len(), 1);
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].stride, 4);
        assert_eq!(tc, Some(12));
    }

    #[test]
    fn negative_stride_survives_an_index_cast() {
        // Downward loop with a cast on the index: the derived IV is found
        // through the cast and keeps the negative stride.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let n = b.iconst(Type::I64, 64);
            let zero = b.iconst(Type::I64, 0);
            let pre = b.current_block();
            let hdr = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            b.br(hdr);
            b.switch_to_block(hdr);
            let i = b.phi(Type::I64, &[(pre, n)]);
            let c = b.icmp(tfm_ir::CmpOp::Slt, zero, i);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let t = b.cast(CastOp::Trunc, i, Type::I32);
            let w = b.cast(CastOp::Zext, t, Type::I64);
            let addr = b.gep(arr, w, 8, 0);
            let _ = b.load(Type::I64, addr);
            let one = b.iconst(Type::I64, 1);
            let i2 = b.binop(tfm_ir::BinOp::Sub, i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(hdr);
            b.switch_to_block(exit);
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let lp = &forest.loops[0];
        let ivs = basic_ivs(f, lp);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, -1);
        let acc = strided_accesses(f, lp, &ivs);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].stride, -8);
        assert!(!acc[0].is_sequential());
        assert_eq!(static_trip_count(f, lp, &ivs), Some(64));
    }

    #[test]
    fn non_unit_step_access_and_rounded_trip_count() {
        // for (i = 0; i < 10; i += 3): four iterations (ceil), and the
        // access stride multiplies scale by the step.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 10);
            b.counted_loop(zero, n, 3, |b, i| {
                let addr = b.gep(arr, i, 4, 0);
                let _ = b.load(Type::I32, addr);
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let (ivs, accesses, tc) = analyse(&m, id);
        assert_eq!(ivs[0].step, 3);
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].stride, 12);
        assert_eq!(accesses[0].access_size, 4);
        assert_eq!(accesses[0].element_size(), 12);
        assert!(accesses[0].is_sequential());
        assert_eq!(tc, Some(4));
    }

    #[test]
    fn zero_trip_and_wrong_direction_loops_have_no_static_count() {
        // init == bound (never entered) and init > bound with a positive
        // step (never entered) both yield None, not Some(0): the analysis
        // only promises counts >= 1.
        for (init, bound) in [(10i64, 10i64), (20, 10)] {
            let mut m = Module::new("t");
            let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let arr = b.param(0);
                let i0 = b.iconst(Type::I64, init);
                let n = b.iconst(Type::I64, bound);
                b.counted_loop(i0, n, 1, |b, i| {
                    let addr = b.gep(arr, i, 8, 0);
                    let _ = b.load(Type::I64, addr);
                });
                b.ret(Some(i0));
            }
            m.verify().unwrap();
            let (_, _, tc) = analyse(&m, id);
            assert_eq!(tc, None, "init={init} bound={bound}");
        }
    }

    #[test]
    fn derived_iv_chain_deeper_than_the_cap_is_rejected() {
        // index_iv peels at most 4 wrappers; a 5-deep chain is dropped
        // rather than mis-attributed.
        let (m, id) = {
            let mut m = Module::new("t");
            let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let arr = b.param(0);
                let zero = b.iconst(Type::I64, 0);
                let n = b.iconst(Type::I64, 8);
                b.counted_loop(zero, n, 1, |b, i| {
                    let one = b.iconst(Type::I64, 1);
                    let mut j = i;
                    for _ in 0..5 {
                        j = b.binop(tfm_ir::BinOp::Add, j, one);
                    }
                    let addr = b.gep(arr, j, 8, 0);
                    let _ = b.load(Type::I64, addr);
                });
                b.ret(Some(zero));
            }
            m.verify().unwrap();
            (m, id)
        };
        let (_, accesses, _) = analyse(&m, id);
        assert!(accesses.is_empty(), "5-deep chain must not be claimed");
    }
}
