//! Natural-loop detection and loop-shape utilities.
//!
//! Loop chunking (§3.4 of the paper) operates on natural loops with a
//! recognizable loop-governing induction variable. This module finds the
//! loop forest, loop exits, and provides preheader creation (needed to host
//! `tfm.chunk.begin`).

use crate::cfg;
use crate::dom::DomTree;
use std::collections::HashSet;
use tfm_ir::{Block, Function, InstData, InstKind};

/// A natural loop.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges).
    pub header: Block,
    /// Source blocks of back edges.
    pub latches: Vec<Block>,
    /// All blocks in the loop body (including the header).
    pub blocks: HashSet<Block>,
    /// Index of the enclosing loop in the forest, if any.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
}

impl NaturalLoop {
    /// True if the loop contains `b`.
    pub fn contains(&self, b: Block) -> bool {
        self.blocks.contains(&b)
    }

    /// Edges leaving the loop as `(inside, outside)` pairs.
    pub fn exit_edges(&self, f: &Function) -> Vec<(Block, Block)> {
        let mut out = Vec::new();
        for &b in &self.blocks {
            for s in f.succs(b) {
                if !self.contains(s) {
                    out.push((b, s));
                }
            }
        }
        out.sort();
        out
    }

    /// The unique predecessor of the header outside the loop, if there is
    /// exactly one.
    pub fn preheader(&self, f: &Function) -> Option<Block> {
        let outside: Vec<Block> = f
            .preds(self.header)
            .into_iter()
            .filter(|p| !self.contains(*p))
            .collect();
        match outside.as_slice() {
            [one] if f.succs(*one).len() == 1 => Some(*one),
            _ => None,
        }
    }
}

/// All natural loops of a function, with nesting information.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// The loops, outermost-first is NOT guaranteed; use `depth`.
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Finds all natural loops using back edges (`latch → header` where the
    /// header dominates the latch). Loops sharing a header are merged.
    pub fn compute(f: &Function, dt: &DomTree) -> Self {
        let mut by_header: Vec<(Block, Vec<Block>)> = Vec::new();
        for b in cfg::reverse_postorder(f) {
            for s in f.succs(b) {
                if dt.dominates(s, b) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => by_header.push((s, vec![b])),
                    }
                }
            }
        }
        let preds = cfg::predecessors(f);
        let mut loops: Vec<NaturalLoop> = by_header
            .into_iter()
            .map(|(header, latches)| {
                let mut blocks: HashSet<Block> = HashSet::new();
                blocks.insert(header);
                let mut stack: Vec<Block> = latches.clone();
                while let Some(b) = stack.pop() {
                    if blocks.insert(b) {
                        for &p in &preds[b.index()] {
                            if dt.is_reachable(p) {
                                stack.push(p);
                            }
                        }
                    }
                }
                NaturalLoop {
                    header,
                    latches,
                    blocks,
                    parent: None,
                    depth: 1,
                }
            })
            .collect();

        // Nesting: the parent of loop L is the smallest loop that strictly
        // contains L's header and is not L itself.
        let containers: Vec<Vec<usize>> = (0..loops.len())
            .map(|i| {
                (0..loops.len())
                    .filter(|&j| {
                        j != i
                            && loops[j].blocks.contains(&loops[i].header)
                            && loops[j].blocks.len() > loops[i].blocks.len()
                    })
                    .collect()
            })
            .collect();
        for i in 0..loops.len() {
            let parent = containers[i]
                .iter()
                .copied()
                .min_by_key(|&j| loops[j].blocks.len());
            loops[i].parent = parent;
        }
        // Depth by walking parents.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = d;
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: Block) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.blocks.len())
    }
}

/// Ensures the loop has a dedicated preheader, creating one if necessary.
///
/// A new block is inserted between all outside predecessors and the header;
/// phi labels are rewritten. Returns the preheader block. The loop's block
/// set is unchanged (the preheader is outside the loop).
pub fn ensure_preheader(f: &mut Function, lp: &NaturalLoop) -> Block {
    if let Some(ph) = lp.preheader(f) {
        return ph;
    }
    let header = lp.header;
    let outside: Vec<Block> = f
        .preds(header)
        .into_iter()
        .filter(|p| !lp.contains(*p))
        .collect();
    let ph = f.create_block();
    // Retarget each outside predecessor's terminator edges header -> ph.
    for &p in &outside {
        let t = f.terminator(p).expect("pred must be terminated");
        let mut kind = f.kind(t).clone();
        kind.for_each_successor_mut(|s| {
            if *s == header {
                *s = ph;
            }
        });
        f.inst_mut(t).kind = kind;
    }
    // Merge phi incomings from outside preds into a phi in the preheader when
    // there are several; with one outside pred we can just relabel.
    if outside.len() == 1 {
        f.redirect_phi_pred(header, outside[0], ph);
    } else {
        for &v in f.block_insts(header).to_vec().iter() {
            let InstKind::Phi(incs) = f.kind(v).clone() else {
                continue;
            };
            let ty = f.ty(v);
            let (from_out, from_in): (Vec<_>, Vec<_>) =
                incs.into_iter().partition(|(p, _)| outside.contains(p));
            if from_out.is_empty() {
                continue;
            }
            let merged = f.push_inst(
                ph,
                InstData {
                    kind: InstKind::Phi(from_out),
                    ty,
                    block: ph,
                },
            );
            let mut new_incs = from_in;
            new_incs.push((ph, merged));
            f.inst_mut(v).kind = InstKind::Phi(new_incs);
        }
    }
    f.push_inst(
        ph,
        InstData {
            kind: InstKind::Br(header),
            ty: None,
            block: ph,
        },
    );
    ph
}

/// Splits the CFG edge `from → to`, returning the new intermediate block
/// (which ends in `br to`). Phi labels in `to` are rewritten. Used to host
/// `tfm.chunk.end` on loop-exit edges.
///
/// # Panics
/// Panics if `from` has no terminator or no edge to `to`.
pub fn split_edge(f: &mut Function, from: Block, to: Block) -> Block {
    let mid = f.create_block();
    let t = f.terminator(from).expect("split_edge: `from` unterminated");
    let mut kind = f.kind(t).clone();
    let mut found = false;
    kind.for_each_successor_mut(|s| {
        if *s == to {
            *s = mid;
            found = true;
        }
    });
    assert!(found, "split_edge: no edge {from} -> {to}");
    f.inst_mut(t).kind = kind;
    f.redirect_phi_pred(to, from, mid);
    f.push_inst(
        mid,
        InstData {
            kind: InstKind::Br(to),
            ty: None,
            block: mid,
        },
    );
    mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, CmpOp, FunctionBuilder, Module, Signature, Type};

    fn nested_loops() -> (Module, tfm_ir::FuncId) {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |b, _i| {
                let z2 = b.iconst(Type::I64, 0);
                b.counted_loop(z2, n, 1, |_b, _j| {});
            });
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        (m, id)
    }

    #[test]
    fn finds_two_nested_loops() {
        let (m, id) = nested_loops();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loops.iter().find(|l| l.depth == 1).unwrap();
        let inner = forest.loops.iter().find(|l| l.depth == 2).unwrap();
        assert!(outer.blocks.len() > inner.blocks.len());
        assert!(outer.blocks.is_superset(&inner.blocks));
        assert!(inner.parent.is_some());
    }

    #[test]
    fn counted_loop_has_preheader_and_exit() {
        let (m, id) = nested_loops();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        for l in &forest.loops {
            assert!(l.preheader(f).is_some(), "counted loops have preheaders");
            assert_eq!(l.exit_edges(f).len(), 1);
            assert_eq!(l.latches.len(), 1);
        }
    }

    #[test]
    fn innermost_containing_picks_smaller_loop() {
        let (m, id) = nested_loops();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let inner = forest.loops.iter().find(|l| l.depth == 2).unwrap();
        let got = forest.innermost_containing(inner.header).unwrap();
        assert_eq!(got.header, inner.header);
    }

    #[test]
    fn split_edge_rewrites_terminator_and_phis() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let (t_bb, j_bb, phi);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            t_bb = b.create_block();
            let e_bb = b.create_block();
            j_bb = b.create_block();
            let x = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let one = b.iconst(Type::I64, 1);
            let c = b.icmp(CmpOp::Sgt, x, z);
            b.cond_br(c, t_bb, e_bb);
            b.switch_to_block(t_bb);
            b.br(j_bb);
            b.switch_to_block(e_bb);
            b.br(j_bb);
            b.switch_to_block(j_bb);
            phi = b.phi(Type::I64, &[(t_bb, z), (e_bb, one)]);
            b.ret(Some(phi));
        }
        m.verify().unwrap();
        let f = m.function_mut(id);
        let mid = split_edge(f, t_bb, j_bb);
        assert_eq!(f.succs(t_bb), vec![mid]);
        assert_eq!(f.succs(mid), vec![j_bb]);
        m.verify().unwrap();
        let f = m.function(id);
        if let InstKind::Phi(incs) = f.kind(phi) {
            assert!(incs.iter().any(|(p, _)| *p == mid));
            assert!(!incs.iter().any(|(p, _)| *p == t_bb));
        } else {
            unreachable!()
        }
    }

    #[test]
    fn ensure_preheader_creates_block_for_shared_entry() {
        // Build a loop whose header has two outside predecessors.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let (hdr, body, exit);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let e1 = b.create_block();
            let e2 = b.create_block();
            hdr = b.create_block();
            body = b.create_block();
            exit = b.create_block();
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let ten = b.iconst(Type::I64, 10);
            let c = b.icmp(CmpOp::Sgt, n, zero);
            b.cond_br(c, e1, e2);
            b.switch_to_block(e1);
            b.br(hdr);
            b.switch_to_block(e2);
            b.br(hdr);
            b.switch_to_block(hdr);
            let i = b.phi(Type::I64, &[(e1, zero), (e2, ten)]);
            let cc = b.icmp(CmpOp::Slt, i, n);
            b.cond_br(cc, body, exit);
            b.switch_to_block(body);
            let one = b.iconst(Type::I64, 1);
            let i2 = b.binop(BinOp::Add, i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(hdr);
            b.switch_to_block(exit);
            b.ret(Some(i));
        }
        m.verify().unwrap();
        let f = m.function_mut(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let lp = forest.loops.iter().find(|l| l.header == hdr).unwrap();
        assert!(lp.preheader(f).is_none());
        let ph = ensure_preheader(f, lp);
        m.verify().unwrap();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        let lp = forest.loops.iter().find(|l| l.header == hdr).unwrap();
        assert_eq!(lp.preheader(f), Some(ph));
    }
}

#[cfg(test)]
mod irreducible_tests {
    use super::*;
    use tfm_ir::{CmpOp, FunctionBuilder, Module, Signature, Type};

    /// An irreducible region (two-entry cycle) has no natural loops: neither
    /// cycle header dominates the other, so no back edge exists. The
    /// analyses must degrade gracefully (no loops reported, nothing panics).
    #[test]
    fn irreducible_cycles_yield_no_natural_loops() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let x_bb = b.create_block();
            let y_bb = b.create_block();
            let exit = b.create_block();
            let p = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let c = b.icmp(CmpOp::Sgt, p, zero);
            // Two entries into the cycle {x, y}.
            b.cond_br(c, x_bb, y_bb);
            b.switch_to_block(x_bb);
            let cx = b.icmp(CmpOp::Sgt, p, zero);
            b.cond_br(cx, y_bb, exit);
            b.switch_to_block(y_bb);
            let cy = b.icmp(CmpOp::Slt, p, zero);
            b.cond_br(cy, x_bb, exit);
            b.switch_to_block(exit);
            b.ret(Some(p));
        }
        m.verify().unwrap();
        let f = m.function(id);
        let dt = crate::dom::DomTree::compute(f);
        let forest = LoopForest::compute(f, &dt);
        assert!(
            forest.loops.is_empty(),
            "irreducible cycle is not a natural loop"
        );
    }
}
