//! Dominator tree (Cooper–Harvey–Kennedy "a simple, fast dominance
//! algorithm").

use crate::cfg;
use tfm_ir::{Block, Function};

/// The dominator tree of a function's CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: Vec<Option<Block>>,
    rpo_num: Vec<usize>,
    rpo: Vec<Block>,
}

impl DomTree {
    /// Computes the dominator tree.
    pub fn compute(f: &Function) -> Self {
        let rpo = cfg::reverse_postorder(f);
        let mut rpo_num = vec![usize::MAX; f.num_blocks()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }
        let preds = cfg::predecessors(f);
        let mut idom: Vec<Option<Block>> = vec![None; f.num_blocks()];
        idom[f.entry_block().index()] = Some(f.entry_block());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let processed: Vec<Block> = preds[b.index()]
                    .iter()
                    .copied()
                    .filter(|p| idom[p.index()].is_some())
                    .collect();
                let Some(&first) = processed.first() else {
                    continue;
                };
                let mut new = first;
                for &p in &processed[1..] {
                    new = Self::intersect(&idom, &rpo_num, p, new);
                }
                if idom[b.index()] != Some(new) {
                    idom[b.index()] = Some(new);
                    changed = true;
                }
            }
        }
        DomTree { idom, rpo_num, rpo }
    }

    fn intersect(idom: &[Option<Block>], rpo: &[usize], mut a: Block, mut b: Block) -> Block {
        while a != b {
            while rpo[a.index()] > rpo[b.index()] {
                a = idom[a.index()].expect("processed predecessor");
            }
            while rpo[b.index()] > rpo[a.index()] {
                b = idom[b.index()].expect("processed predecessor");
            }
        }
        a
    }

    /// The immediate dominator of `b` (`None` for the entry block and for
    /// unreachable blocks).
    pub fn idom(&self, b: Block) -> Option<Block> {
        let d = self.idom[b.index()]?;
        if d == b {
            None
        } else {
            Some(d)
        }
    }

    /// True iff `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = match self.idom[cur.index()] {
                Some(n) => n,
                None => return false,
            };
            if next == cur {
                return false; // reached entry
            }
            cur = next;
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: Block) -> bool {
        self.idom[b.index()].is_some()
    }

    /// The blocks in reverse postorder.
    pub fn rpo(&self) -> &[Block] {
        &self.rpo
    }

    /// Reverse-postorder number of a block (`usize::MAX` if unreachable).
    pub fn rpo_number(&self, b: Block) -> usize {
        self.rpo_num[b.index()]
    }

    /// Children lists of the dominator tree (indexed by block).
    pub fn children(&self) -> Vec<Vec<Block>> {
        let mut out = vec![Vec::new(); self.idom.len()];
        for i in 0..self.idom.len() {
            let b = Block::from_index(i);
            if let Some(p) = self.idom(b) {
                out[p.index()].push(b);
            }
        }
        out
    }
}

/// Dominance frontiers (Cytron et al.): `DF(b)` = blocks where `b`'s
/// dominance ends — exactly where SSA construction places phis.
pub fn dominance_frontier(f: &Function, dt: &DomTree) -> Vec<Vec<Block>> {
    let mut df = vec![Vec::new(); f.num_blocks()];
    for b in f.blocks() {
        if !dt.is_reachable(b) {
            continue;
        }
        let preds: Vec<Block> = cfg::predecessors(f)[b.index()]
            .iter()
            .copied()
            .filter(|p| dt.is_reachable(*p))
            .collect();
        if preds.len() < 2 {
            continue;
        }
        let Some(idom_b) = dt.idom(b) else { continue };
        for p in preds {
            let mut runner = p;
            while runner != idom_b {
                if !df[runner.index()].contains(&b) {
                    df[runner.index()].push(b);
                }
                match dt.idom(runner) {
                    Some(next) => runner = next,
                    None => break,
                }
            }
        }
    }
    df
}

/// The post-dominator tree: `a` post-dominates `b` when every path from `b`
/// to function exit passes through `a`.
///
/// Computed with the same iterative CHK scheme as [`DomTree`] but over the
/// reversed CFG, with a virtual exit joining every `ret` block (and every
/// `unreachable` terminator, so aborting paths don't vacuously
/// post-dominate). Used by the guard-motion pass's cross-block read→write
/// upgrade: a write guard may absorb into an earlier read guard only when
/// the write's block post-dominates the read's (the upgraded guard never
/// dirties an object the original program would not have).
#[derive(Clone, Debug)]
pub struct PostDomTree {
    /// Immediate post-dominator in virtual indices (`nblocks` = virtual
    /// exit); `None` for blocks that never reach an exit.
    ipdom: Vec<Option<usize>>,
    nblocks: usize,
}

impl PostDomTree {
    /// Computes the post-dominator tree.
    pub fn compute(f: &Function) -> Self {
        let n = f.num_blocks();
        let exit = n; // virtual exit node
                      // Reverse-CFG edges: block -> its CFG predecessors; exits -> ret
                      // and unreachable blocks.
        let preds = cfg::predecessors(f);
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut rpreds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for b in f.blocks() {
            if f.succs(b).is_empty() && !f.block_insts(b).is_empty() {
                rsuccs[exit].push(b.index());
                rpreds[b.index()].push(exit);
            }
            for &p in &preds[b.index()] {
                rsuccs[b.index()].push(p.index());
                rpreds[p.index()].push(b.index());
            }
        }
        // RPO of the reverse graph from the virtual exit.
        let mut order = Vec::new();
        let mut state = vec![0u8; n + 1];
        let mut stack = vec![(exit, 0usize)];
        state[exit] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < rsuccs[b].len() {
                let s = rsuccs[b][*i];
                *i += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        let mut rpo_num = vec![usize::MAX; n + 1];
        for (i, &b) in order.iter().enumerate() {
            rpo_num[b] = i;
        }
        let mut ipdom: Vec<Option<usize>> = vec![None; n + 1];
        ipdom[exit] = Some(exit);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let processed: Vec<usize> = rpreds[b]
                    .iter()
                    .copied()
                    .filter(|&p| ipdom[p].is_some() && rpo_num[p] != usize::MAX)
                    .collect();
                let Some(&first) = processed.first() else {
                    continue;
                };
                let mut new = first;
                for &p in &processed[1..] {
                    new = Self::intersect(&ipdom, &rpo_num, p, new);
                }
                if ipdom[b] != Some(new) {
                    ipdom[b] = Some(new);
                    changed = true;
                }
            }
        }
        PostDomTree { ipdom, nblocks: n }
    }

    fn intersect(ipdom: &[Option<usize>], rpo: &[usize], mut a: usize, mut b: usize) -> usize {
        while a != b {
            while rpo[a] > rpo[b] {
                a = ipdom[a].expect("processed predecessor");
            }
            while rpo[b] > rpo[a] {
                b = ipdom[b].expect("processed predecessor");
            }
        }
        a
    }

    /// The immediate post-dominator of `b` (`None` when `b` is the last
    /// block before exit or never reaches one).
    pub fn ipdom(&self, b: Block) -> Option<Block> {
        let d = self.ipdom[b.index()]?;
        if d == self.nblocks || d == b.index() {
            None
        } else {
            Some(Block::from_index(d))
        }
    }

    /// True iff `a` post-dominates `b` (reflexive).
    pub fn postdominates(&self, a: Block, b: Block) -> bool {
        if self.ipdom[b.index()].is_none() {
            return false; // never reaches an exit
        }
        let mut cur = b.index();
        loop {
            if cur == a.index() {
                return true;
            }
            let next = match self.ipdom[cur] {
                Some(n) => n,
                None => return false,
            };
            if next == cur || next == self.nblocks {
                return false;
            }
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{CmpOp, FunctionBuilder, Module, Signature, Type};

    /// entry -> (A | B) -> join -> loop{hdr -> body -> hdr} -> exit
    fn build() -> (Module, tfm_ir::FuncId, Vec<Block>) {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let blocks;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let a = b.create_block();
            let bb = b.create_block();
            let join = b.create_block();
            let hdr = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            blocks = vec![b.entry_block(), a, bb, join, hdr, body, exit];
            let x = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let c = b.icmp(CmpOp::Sgt, x, z);
            b.cond_br(c, a, bb);
            b.switch_to_block(a);
            b.br(join);
            b.switch_to_block(bb);
            b.br(join);
            b.switch_to_block(join);
            b.br(hdr);
            b.switch_to_block(hdr);
            let i = b.phi(Type::I64, &[(join, z)]);
            let c2 = b.icmp(CmpOp::Slt, i, x);
            b.cond_br(c2, body, exit);
            b.switch_to_block(body);
            let one = b.iconst(Type::I64, 1);
            let i2 = b.binop(tfm_ir::BinOp::Add, i, one);
            b.add_phi_incoming(i, body, i2);
            b.br(hdr);
            b.switch_to_block(exit);
            b.ret(Some(i));
        }
        m.verify().unwrap();
        (m, id, blocks)
    }

    #[test]
    fn idoms_are_correct() {
        let (m, id, bl) = build();
        let dt = DomTree::compute(m.function(id));
        let (entry, a, bb, join, hdr, body, exit) =
            (bl[0], bl[1], bl[2], bl[3], bl[4], bl[5], bl[6]);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(a), Some(entry));
        assert_eq!(dt.idom(bb), Some(entry));
        assert_eq!(dt.idom(join), Some(entry));
        assert_eq!(dt.idom(hdr), Some(join));
        assert_eq!(dt.idom(body), Some(hdr));
        assert_eq!(dt.idom(exit), Some(hdr));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (m, id, bl) = build();
        let dt = DomTree::compute(m.function(id));
        let (entry, a, _bb, join, hdr, body, exit) =
            (bl[0], bl[1], bl[2], bl[3], bl[4], bl[5], bl[6]);
        for &b in &bl {
            assert!(dt.dominates(b, b));
            assert!(dt.dominates(entry, b));
        }
        assert!(dt.dominates(join, exit));
        assert!(dt.dominates(hdr, body));
        assert!(!dt.dominates(a, join));
        assert!(!dt.dominates(body, exit));
    }

    #[test]
    fn dominance_frontier_of_diamond() {
        let (m, id, bl) = build();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let df = dominance_frontier(f, &dt);
        let (_entry, a, bb, join, hdr, body, _exit) =
            (bl[0], bl[1], bl[2], bl[3], bl[4], bl[5], bl[6]);
        // The diamond arms' frontier is the join block.
        assert_eq!(df[a.index()], vec![join]);
        assert_eq!(df[bb.index()], vec![join]);
        // The loop body's frontier is the header; the header is in its own
        // frontier (back edge).
        assert_eq!(df[body.index()], vec![hdr]);
        assert!(df[hdr.index()].contains(&hdr));
        // The join dominates everything after it: empty frontier.
        assert!(df[join.index()].is_empty());
    }

    #[test]
    fn children_reconstruct_idoms() {
        let (m, id, _) = build();
        let f = m.function(id);
        let dt = DomTree::compute(f);
        let children = dt.children();
        for b in f.blocks() {
            for &c in &children[b.index()] {
                assert_eq!(dt.idom(c), Some(b));
            }
        }
    }

    #[test]
    fn postdominators_of_diamond_and_loop() {
        let (m, id, bl) = build();
        let f = m.function(id);
        let pdt = PostDomTree::compute(f);
        let (entry, a, bb, join, hdr, body, exit) =
            (bl[0], bl[1], bl[2], bl[3], bl[4], bl[5], bl[6]);
        // Every block post-dominates itself; the exit post-dominates all.
        for &b in &bl {
            assert!(pdt.postdominates(b, b));
            assert!(pdt.postdominates(exit, b));
        }
        // The join post-dominates both arms and the entry; the arms
        // post-dominate nothing but themselves.
        assert!(pdt.postdominates(join, a));
        assert!(pdt.postdominates(join, bb));
        assert!(pdt.postdominates(join, entry));
        assert!(!pdt.postdominates(a, entry));
        assert!(!pdt.postdominates(bb, entry));
        // The loop header post-dominates its body (the only way out is back
        // through the header); the body does not post-dominate the header.
        assert!(pdt.postdominates(hdr, body));
        assert!(!pdt.postdominates(body, hdr));
        assert_eq!(pdt.ipdom(a), Some(join));
        assert_eq!(pdt.ipdom(exit), None);
    }

    #[test]
    fn unreachable_terminators_do_not_vacuously_postdominate() {
        // entry -> (ret | unreachable): the ret arm must not post-dominate
        // the entry (the aborting path never passes through it... but both
        // arms reach the virtual exit, so neither postdominates entry).
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        let (entry, r, u);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            entry = b.entry_block();
            r = b.create_block();
            u = b.create_block();
            let x = b.param(0);
            b.cond_br(x, r, u);
            b.switch_to_block(r);
            b.ret(Some(x));
            b.switch_to_block(u);
            b.unreachable();
        }
        let pdt = PostDomTree::compute(m.function(id));
        assert!(!pdt.postdominates(r, entry));
        assert!(!pdt.postdominates(u, entry));
        assert!(pdt.postdominates(r, r));
    }

    #[test]
    fn unreachable_blocks_not_dominated() {
        let (mut m, id, _) = build();
        let dead = m.function_mut(id).create_block();
        let dt = DomTree::compute(m.function(id));
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(m.function(id).entry_block(), dead));
    }
}
