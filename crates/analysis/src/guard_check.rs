//! Available-guards dataflow analysis.
//!
//! A forward, flow-sensitive analysis over one function: at every program
//! point it computes the set of SSA pointer values whose *custody* has been
//! established along **all** incoming paths — i.e. values that either are a
//! guard / chunk-dereference result, or were the pointer argument of one,
//! with no custody-clobbering operation in between.
//!
//! * **gen** — `tfm.guard.read(p)`, `tfm.guard.write(p)` and
//!   `tfm.chunk.deref(h, p)` establish custody for both the result and the
//!   pointer operand `p`.
//! * **kill** — calls and every other intrinsic (allocation, free,
//!   `memcpy`/`memset`, chunk begin/end, prefetch, runtime init) may run
//!   arbitrary code, free or reuse backing memory, or re-shape residency:
//!   they clear the whole set. Guards themselves do **not** kill: a guard may
//!   evict *other* objects under local-budget pressure, but in this runtime's
//!   object model canonical addresses are stable (eviction is a residency /
//!   cost event, never an invalidation — see `tfm_sim::memsys`), so an
//!   earlier guard's canonical result stays dereferenceable. Under a runtime
//!   that unmaps or moves localized objects, guards would have to join the
//!   kill set.
//! * **meet** — set intersection at control-flow joins. Phi-aware: a phi is
//!   covered when *every* incoming value is covered in its predecessor's
//!   out-state; the covers meet (same source guard → that guard, different
//!   guards → a merged cover usable by the lint but not by elimination).
//!
//! The analysis is optimistic (unvisited predecessors are ⊤) and iterates
//! over reverse postorder to the greatest fixpoint, so loop-carried coverage
//! through phis is found precisely.
//!
//! Consumers: the soundness lint (`trackfm::passes::lint`) errors on
//! may-heap accesses not covered at their program point, and the
//! redundant-guard elimination pass (`trackfm::passes::guard_elim`) replaces
//! a covered, duplicate guard with the earlier guard's canonical result.

use crate::cfg;
use std::collections::HashMap;
use tfm_ir::{Block, Function, InstKind, Intrinsic, Value};

/// What kind of custody a cover carries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GuardKind {
    /// Established by `tfm.guard.read`: the object is localized for reading.
    Read,
    /// Established by `tfm.guard.write`: localized *and* marked dirty.
    Write,
    /// Established by `tfm.chunk.deref`: localized via a chunk stream (the
    /// stream's write intent lives on its `tfm.chunk.begin` flags).
    Chunk,
}

impl GuardKind {
    /// Meet of two custody kinds along different paths: the weaker guarantee
    /// survives (`Write` meets `Read` as `Read`; mixed chunk/guard custody
    /// degrades to `Read`).
    pub fn meet(self, other: GuardKind) -> GuardKind {
        if self == other {
            self
        } else {
            GuardKind::Read
        }
    }

    /// True when custody of this kind is enough for a guard of kind
    /// `needed`: a write guard subsumes a read guard, never vice versa, and
    /// chunk custody subsumes neither (its write intent is per-stream).
    pub fn covers(self, needed: GuardKind) -> bool {
        match (self, needed) {
            (a, b) if a == b => true,
            (GuardKind::Write, GuardKind::Read) => true,
            _ => false,
        }
    }
}

/// Where a cover came from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CoverSrc {
    /// One specific guard / chunk-deref instruction established custody on
    /// every path: its result is a canonical pointer elimination can reuse.
    Guard(Value),
    /// Different guards established custody on different paths. Enough for
    /// the soundness lint, but there is no single canonical result to
    /// rewrite uses to.
    Merged,
}

/// Custody established for one SSA value at a program point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cover {
    /// The establishing guard, when unique.
    pub src: CoverSrc,
    /// The kind of custody held.
    pub kind: GuardKind,
}

impl Cover {
    /// Meet along two paths.
    pub fn meet(self, other: Cover) -> Cover {
        Cover {
            src: if self.src == other.src {
                self.src
            } else {
                CoverSrc::Merged
            },
            kind: self.kind.meet(other.kind),
        }
    }
}

/// The covered-value set at one program point.
pub type CoverMap = HashMap<Value, Cover>;

/// Interprocedural call effects for one function, precomputed from the
/// module summaries (see `crate::summaries`): which call instructions are
/// custody-transparent, which call results carry custody, and which
/// parameters enter the function already covered at every call site.
///
/// This is plain per-instruction data so the dataflow core stays independent
/// of how the facts were derived; [`crate::summaries::ModuleSummaries`]
/// builds it bottom-up over the call graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CallEffects {
    /// Call instructions whose callee is custody-transparent (provably never
    /// frees, allocates, or otherwise clobbers custody): they do **not**
    /// clear the available set.
    pub transparent: std::collections::HashSet<Value>,
    /// Call instructions whose result is a localized pointer guarded on
    /// every return path of the callee; the call gens a cover of this kind
    /// for its own result.
    pub ret_cover: HashMap<Value, GuardKind>,
    /// Parameter values holding custody established at *every* call site of
    /// this function; they seed the entry block's in-state with a
    /// [`CoverSrc::Merged`] cover (lint-usable, never elimination-usable —
    /// the establishing guard lives in another function).
    pub entry_cover: HashMap<Value, GuardKind>,
}

fn meet_maps(a: &CoverMap, b: &CoverMap) -> CoverMap {
    let mut out = CoverMap::new();
    for (v, ca) in a {
        if let Some(cb) = b.get(v) {
            out.insert(*v, ca.meet(*cb));
        }
    }
    out
}

/// Applies one (non-phi) instruction's transfer function to `map`.
///
/// Phis are resolved at block entry by [`AvailableGuards::compute`]; this
/// helper ignores them, so consumers can walk a block's instructions from
/// the block-in state and query coverage before each access.
pub fn apply(f: &Function, map: &mut CoverMap, v: Value) {
    apply_ctx(f, map, v, None);
}

/// [`apply`], with optional interprocedural call effects: transparent
/// callees keep the set alive, and calls returning guarded pointers gen a
/// cover for their result.
pub fn apply_ctx(f: &Function, map: &mut CoverMap, v: Value, fx: Option<&CallEffects>) {
    match f.kind(v) {
        InstKind::IntrinsicCall { intr, args } => match intr {
            Intrinsic::GuardRead | Intrinsic::GuardWrite => {
                let kind = if *intr == Intrinsic::GuardWrite {
                    GuardKind::Write
                } else {
                    GuardKind::Read
                };
                let cover = Cover {
                    src: CoverSrc::Guard(v),
                    kind,
                };
                map.insert(v, cover);
                if let Some(&p) = args.first() {
                    map.insert(p, cover);
                }
            }
            Intrinsic::ChunkDeref => {
                let cover = Cover {
                    src: CoverSrc::Guard(v),
                    kind: GuardKind::Chunk,
                };
                map.insert(v, cover);
                if let Some(&p) = args.get(1) {
                    map.insert(p, cover);
                }
            }
            _ => map.clear(),
        },
        InstKind::Call { .. } => {
            let transparent = fx.is_some_and(|fx| fx.transparent.contains(&v));
            if !transparent {
                map.clear();
            }
            if let Some(&kind) = fx.and_then(|fx| fx.ret_cover.get(&v)) {
                map.insert(
                    v,
                    Cover {
                        src: CoverSrc::Guard(v),
                        kind,
                    },
                );
            }
        }
        // Custody flows through pointer arithmetic on the covered value
        // (within-object offsets; the same rule `points_to` uses to keep
        // `Localized` on derived pointers).
        InstKind::Gep { base, .. } => {
            if let Some(c) = map.get(base).copied() {
                map.insert(v, c);
            }
        }
        InstKind::Cast(_, a) => {
            if let Some(c) = map.get(a).copied() {
                map.insert(v, c);
            }
        }
        InstKind::Binary(_, a, b) => {
            // Pointer ± pointer-derived-integer arithmetic: covered when
            // either operand is (mirrors points_to provenance through ints).
            let c = map.get(a).copied().or_else(|| map.get(b).copied());
            if let Some(c) = c {
                map.insert(v, c);
            }
        }
        InstKind::Select { tval, fval, .. } => {
            if let (Some(&a), Some(&b)) = (map.get(tval), map.get(fval)) {
                map.insert(v, a.meet(b));
            }
        }
        _ => {}
    }
}

/// Per-function available-guards fixpoint: covered values at each block
/// entry (`None` for unreachable blocks).
#[derive(Clone, Debug)]
pub struct AvailableGuards {
    block_in: Vec<Option<CoverMap>>,
    effects: Option<CallEffects>,
}

impl AvailableGuards {
    /// Runs the forward dataflow to its greatest fixpoint with the
    /// conservative intraprocedural call model (every call kills).
    pub fn compute(f: &Function) -> Self {
        Self::compute_with(f, None)
    }

    /// [`AvailableGuards::compute`], with optional interprocedural call
    /// effects: custody-transparent callees no longer clear the set, calls
    /// returning guarded pointers gen covers, and parameters guarded at
    /// every call site seed the entry state.
    pub fn compute_with(f: &Function, effects: Option<CallEffects>) -> Self {
        let fx = effects.as_ref();
        let nblocks = f.num_blocks();
        let rpo = cfg::reverse_postorder(f);
        let preds = cfg::predecessors(f);
        // `None` = ⊤ (not yet computed / unreachable): optimistic start so
        // loop back-edges don't pessimize the first pass.
        let mut ins: Vec<Option<CoverMap>> = vec![None; nblocks];
        let mut outs: Vec<Option<CoverMap>> = vec![None; nblocks];
        let entry = f.entry_block();
        let entry_map: CoverMap = fx
            .map(|fx| {
                fx.entry_cover
                    .iter()
                    .map(|(&p, &kind)| {
                        (
                            p,
                            Cover {
                                src: CoverSrc::Merged,
                                kind,
                            },
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                let mut inb = if b == entry {
                    entry_map.clone()
                } else {
                    // Intersection over predecessors with known out-state;
                    // ⊤ predecessors are skipped (optimism).
                    let mut acc: Option<CoverMap> = None;
                    for &p in &preds[b.index()] {
                        if let Some(po) = &outs[p.index()] {
                            acc = Some(match acc {
                                None => po.clone(),
                                Some(a) => meet_maps(&a, po),
                            });
                        }
                    }
                    acc.unwrap_or_default()
                };
                // Phi-aware coverage: a phi is covered when every incoming
                // value is covered in its predecessor's out-state.
                for &v in f.block_insts(b) {
                    let InstKind::Phi(incs) = f.kind(v) else {
                        continue;
                    };
                    let mut cover: Option<Cover> = None;
                    let mut all = !incs.is_empty();
                    for (p, iv) in incs {
                        match &outs[p.index()] {
                            // ⊤ predecessor: optimistically covered.
                            None => {}
                            Some(po) => match po.get(iv) {
                                Some(&c) => {
                                    cover = Some(match cover {
                                        None => c,
                                        Some(acc) => acc.meet(c),
                                    });
                                }
                                None => {
                                    all = false;
                                    break;
                                }
                            },
                        }
                    }
                    if all {
                        if let Some(c) = cover {
                            inb.insert(v, c);
                        }
                    } else {
                        inb.remove(&v);
                    }
                }
                if ins[b.index()].as_ref() != Some(&inb) {
                    ins[b.index()] = Some(inb.clone());
                    changed = true;
                }
                let mut outb = inb;
                for &v in f.block_insts(b) {
                    apply_ctx(f, &mut outb, v, fx);
                }
                if outs[b.index()].as_ref() != Some(&outb) {
                    outs[b.index()] = Some(outb);
                    changed = true;
                }
            }
        }
        AvailableGuards {
            block_in: ins,
            effects,
        }
    }

    /// Applies one instruction's transfer function under the same call
    /// effects this analysis was computed with. Consumers walking a block
    /// from [`AvailableGuards::block_in`] must use this (not the free
    /// [`apply`]) so their view matches the fixpoint.
    pub fn apply(&self, f: &Function, map: &mut CoverMap, v: Value) {
        apply_ctx(f, map, v, self.effects.as_ref());
    }

    /// Covered values at `b`'s entry (after phi resolution); `None` when the
    /// block is unreachable.
    pub fn block_in(&self, b: Block) -> Option<&CoverMap> {
        self.block_in.get(b.index()).and_then(|m| m.as_ref())
    }

    /// The cover of `ptr` immediately before instruction `at` (walking the
    /// block from its in-state). `None` when `at`'s block is unreachable or
    /// `ptr` is not covered there.
    pub fn cover_before(&self, f: &Function, at: Value, ptr: Value) -> Option<Cover> {
        let b = f.inst(at).block;
        let mut map = self.block_in(b)?.clone();
        for &v in f.block_insts(b) {
            if v == at {
                break;
            }
            apply_ctx(f, &mut map, v, self.effects.as_ref());
        }
        map.get(&ptr).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{BinOp, FunctionBuilder, InstKind, Module, Signature, Type};

    fn guard(b: &mut FunctionBuilder, p: Value, write: bool) -> Value {
        let intr = if write {
            Intrinsic::GuardWrite
        } else {
            Intrinsic::GuardRead
        };
        b.intrinsic(intr, vec![p])
    }

    #[test]
    fn straightline_gen_and_call_kill() {
        let mut m = Module::new("t");
        let helper = m.declare_function("h", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(helper));
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let (p, g, x, call);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            p = b.param(0);
            g = guard(&mut b, p, false);
            x = b.load(Type::I64, g);
            call = b.call(helper, vec![], Some(Type::I64));
            let y = b.load(Type::I64, g);
            let s = b.binop(BinOp::Add, x, y);
            let s2 = b.binop(BinOp::Add, s, call);
            b.ret(Some(s2));
        }
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        // Covered between the guard and the call...
        let c = ag.cover_before(f, x, p).unwrap();
        assert_eq!(c.src, CoverSrc::Guard(g));
        assert_eq!(c.kind, GuardKind::Read);
        assert!(ag.cover_before(f, x, g).is_some());
        // ...and killed by the call.
        let after = f.block_insts(f.entry_block());
        let second_load = after[after.iter().position(|&v| v == call).unwrap() + 1];
        assert!(ag.cover_before(f, second_load, p).is_none());
        assert!(ag.cover_before(f, second_load, g).is_none());
    }

    #[test]
    fn alloc_intrinsics_kill_but_guards_do_not() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr, Type::Ptr], None));
        let (p, q, g2, mal);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            p = b.param(0);
            q = b.param(1);
            let g1 = guard(&mut b, p, false);
            let _ = g1;
            g2 = guard(&mut b, q, true);
            mal = b.malloc_const(64);
            b.store(g2, mal);
            b.ret(None);
        }
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        // The second guard does not kill the first pointer's custody...
        let c = ag.cover_before(f, mal, p).unwrap();
        assert_eq!(c.kind, GuardKind::Read);
        assert_eq!(ag.cover_before(f, mal, q).unwrap().kind, GuardKind::Write);
        // ...but the allocation kills everything.
        let insts = f.block_insts(f.entry_block());
        let store_v = insts[insts.iter().position(|&v| v == mal).unwrap() + 1];
        assert!(matches!(f.kind(store_v), InstKind::Store { .. }));
        assert!(ag.cover_before(f, store_v, p).is_none());
        assert!(ag.cover_before(f, store_v, q).is_none());
    }

    #[test]
    fn meet_is_intersection_at_joins() {
        // Guard on `p` only on the then-path: not covered at the join.
        // Guard on `q` on both paths (different guards): covered, Merged.
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::Ptr, Type::I64], None),
        );
        let (p, q, join_load);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            p = b.param(0);
            q = b.param(1);
            let c = b.param(2);
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            let gp = guard(&mut b, p, false);
            let _ = b.load(Type::I64, gp);
            let gq1 = guard(&mut b, q, false);
            let _ = b.load(Type::I64, gq1);
            b.br(j);
            b.switch_to_block(e);
            let gq2 = guard(&mut b, q, false);
            let _ = b.load(Type::I64, gq2);
            b.br(j);
            b.switch_to_block(j);
            join_load = b.load(Type::I64, p);
            b.ret(None);
        }
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        assert!(
            ag.cover_before(f, join_load, p).is_none(),
            "one-sided guard"
        );
        let cq = ag.cover_before(f, join_load, q).unwrap();
        assert_eq!(cq.src, CoverSrc::Merged, "two different guards merge");
        assert_eq!(cq.kind, GuardKind::Read);
    }

    #[test]
    fn phi_of_covered_values_stays_covered() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::Ptr, Type::I64], None),
        );
        let (phi, use_load);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let q = b.param(1);
            let c = b.param(2);
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            let gp = guard(&mut b, p, true);
            b.br(j);
            b.switch_to_block(e);
            let gq = guard(&mut b, q, true);
            b.br(j);
            b.switch_to_block(j);
            phi = b.phi(Type::Ptr, &[(t, gp), (e, gq)]);
            use_load = b.load(Type::I64, phi);
            b.ret(None);
        }
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        let c = ag.cover_before(f, use_load, phi).unwrap();
        assert_eq!(c.src, CoverSrc::Merged);
        assert_eq!(c.kind, GuardKind::Write);
    }

    #[test]
    fn phi_with_one_uncovered_incoming_is_uncovered() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::Ptr, Type::I64], None),
        );
        let (phi, use_load);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let q = b.param(1);
            let c = b.param(2);
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            let gp = guard(&mut b, p, false);
            b.br(j);
            b.switch_to_block(e);
            b.br(j);
            b.switch_to_block(j);
            phi = b.phi(Type::Ptr, &[(t, gp), (e, q)]);
            use_load = b.load(Type::I64, phi);
            b.ret(None);
        }
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        assert!(ag.cover_before(f, use_load, phi).is_none());
    }

    #[test]
    fn loop_carried_coverage_survives_the_backedge() {
        // g = guard(p) before the loop; the loop body only loads through g:
        // coverage must hold at every iteration (greatest fixpoint through
        // the backedge), since nothing in the loop kills.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr, Type::I64], None));
        let (g, body_load);
        let mut body_load_v = None;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let n = b.param(1);
            g = guard(&mut b, p, false);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |b, i| {
                let addr = b.gep(g, i, 8, 0);
                body_load_v = Some(b.load(Type::I64, addr));
            });
            b.ret(None);
        }
        body_load = body_load_v.unwrap();
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        let c = ag.cover_before(f, body_load, g).unwrap();
        assert_eq!(c.src, CoverSrc::Guard(g));
        // The derived gep address is covered too.
        let InstKind::Load { ptr } = *f.kind(body_load) else {
            panic!()
        };
        assert!(ag.cover_before(f, body_load, ptr).is_some());
    }

    #[test]
    fn loop_with_killing_call_loses_coverage_at_the_join() {
        // The loop body calls a helper: at the header (join of entry and
        // backedge) the pre-loop guard must not be available.
        let mut m = Module::new("t");
        let helper = m.declare_function("h", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(helper));
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr, Type::I64], None));
        let g;
        let mut body_load_v = None;
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let n = b.param(1);
            g = guard(&mut b, p, false);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |b, i| {
                let _ = b.call(helper, vec![], Some(Type::I64));
                let addr = b.gep(g, i, 8, 0);
                body_load_v = Some(b.load(Type::I64, addr));
            });
            b.ret(None);
        }
        let body_load = body_load_v.unwrap();
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        assert!(
            ag.cover_before(f, body_load, g).is_none(),
            "call inside the loop kills coverage across the backedge"
        );
    }

    #[test]
    fn chunk_deref_covers_and_select_meets() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::Ptr, Type::I64], None),
        );
        let (sel, use_load, cd);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let q = b.param(1);
            let c = b.param(2);
            let flags = b.iconst(Type::I64, 1);
            let h = b.intrinsic(Intrinsic::ChunkBegin, vec![p, flags]);
            cd = b.intrinsic(Intrinsic::ChunkDeref, vec![h, p]);
            let gq = guard(&mut b, q, true);
            sel = b.select(c, cd, gq);
            use_load = b.load(Type::I64, sel);
            b.ret(None);
        }
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        let c = ag.cover_before(f, use_load, cd).unwrap();
        assert_eq!(c.kind, GuardKind::Chunk);
        let cs = ag.cover_before(f, use_load, sel).unwrap();
        assert_eq!(cs.src, CoverSrc::Merged);
        assert_eq!(cs.kind, GuardKind::Read, "chunk meets write as read");
    }

    #[test]
    fn dead_blocks_grant_no_coverage_to_live_joins() {
        // ⊤-predecessor optimism, pinned: a guard inside an *unreachable*
        // block must not leak coverage into a reachable join that lists the
        // dead block as a predecessor. The dead block's state stays ⊤ and
        // is skipped at the meet — the join's in-state comes from live
        // paths only, which here never guard `p`.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], None));
        let (join, dead);
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            join = b.create_block();
            dead = b.create_block();
            b.br(join); // entry falls through without guarding p
            b.switch_to_block(dead); // no predecessors: unreachable
            let _g = guard(&mut b, p, true);
            b.br(join);
            b.switch_to_block(join);
            let _ = b.load(Type::I64, p);
            b.ret(None);
        }
        m.verify().unwrap();
        let f = m.function(id);
        let ag = AvailableGuards::compute(f);
        // The dead block is never computed ...
        assert_eq!(ag.block_in(dead), None);
        // ... and the join sees no cover for p despite dead's guard.
        let inb = ag.block_in(join).expect("join is reachable");
        assert!(
            !inb.contains_key(&f.param(0)),
            "coverage must not flow out of an unreachable block"
        );
    }

    #[test]
    fn kind_lattice_laws() {
        use GuardKind::*;
        for k in [Read, Write, Chunk] {
            assert_eq!(k.meet(k), k);
            assert!(k.covers(k));
        }
        assert_eq!(Write.meet(Read), Read);
        assert_eq!(Chunk.meet(Write), Read);
        assert!(Write.covers(Read));
        assert!(!Read.covers(Write));
        assert!(!Chunk.covers(Read), "chunk write intent is per-stream");
        assert!(!Chunk.covers(Write));
    }
}
