//! Control-flow graph utilities.

use tfm_ir::{Block, Function};

/// Blocks in reverse postorder starting at the entry (unreachable blocks are
/// omitted).
pub fn reverse_postorder(f: &Function) -> Vec<Block> {
    let mut order = Vec::new();
    let mut state: Vec<u8> = vec![0; f.num_blocks()];
    let mut stack = vec![(f.entry_block(), 0usize)];
    state[f.entry_block().index()] = 1;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.succs(b);
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();
    order
}

/// Predecessor lists for every block, computed in one pass (unlike
/// [`Function::preds`], which is O(blocks) per query).
pub fn predecessors(f: &Function) -> Vec<Vec<Block>> {
    let mut preds = vec![Vec::new(); f.num_blocks()];
    for b in f.blocks() {
        for s in f.succs(b) {
            preds[s.index()].push(b);
        }
    }
    preds
}

/// True if `b` is reachable from the entry block.
pub fn is_reachable(f: &Function, b: Block) -> bool {
    reverse_postorder(f).contains(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{CmpOp, FunctionBuilder, Module, Signature, Type};

    fn diamond() -> (Module, tfm_ir::FuncId) {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let t = b.create_block();
            let e = b.create_block();
            let j = b.create_block();
            let x = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let c = b.icmp(CmpOp::Sgt, x, z);
            b.cond_br(c, t, e);
            b.switch_to_block(t);
            b.br(j);
            b.switch_to_block(e);
            b.br(j);
            b.switch_to_block(j);
            b.ret(Some(x));
        }
        (m, id)
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (m, id) = diamond();
        let f = m.function(id);
        let rpo = reverse_postorder(f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry_block());
        // Join must come after both arms.
        let join = rpo.last().unwrap();
        assert_eq!(join.index(), 3);
    }

    #[test]
    fn unreachable_blocks_omitted() {
        let (mut m, id) = diamond();
        let f = m.function_mut(id);
        let dead = f.create_block();
        let rpo = reverse_postorder(f);
        assert!(!rpo.contains(&dead));
        assert!(!is_reachable(f, dead));
    }

    #[test]
    fn predecessors_match_function_preds() {
        let (m, id) = diamond();
        let f = m.function(id);
        let preds = predecessors(f);
        for b in f.blocks() {
            let mut a = preds[b.index()].clone();
            let mut e = f.preds(b);
            a.sort();
            e.sort();
            assert_eq!(a, e);
        }
    }
}
