//! Bottom-up interprocedural function-effect summaries.
//!
//! TrackFM leans on NOELLE's whole-program abstractions; this module is the
//! equivalent over [`tfm_ir`]: one [`FnSummary`] per function, computed
//! bottom-up over the [`crate::callgraph::CallGraph`]'s SCC condensation,
//! answering the three questions the compiler's consumers ask:
//!
//! 1. **Custody transparency** (`kills_custody`): may calling this function
//!    clobber the caller's available guards? False only when the function
//!    (and everything it transitively calls) contains no allocation, free,
//!    or other custody-killing intrinsic — then `guard_check` keeps the
//!    caller's cover set alive across the call, and `guard_motion` may hoist
//!    guards out of loops whose bodies call it.
//! 2. **Parameter / return memory classes** (`param_class`, `ret_class`):
//!    the join over every call site of the argument's [`MemClass`] (and the
//!    join over every return of the returned value's class), so `points_to`
//!    can classify parameters the intraprocedural analysis writes off as
//!    `Unknown` — and the `guards` pass can skip provably stack / global /
//!    local-heap pointers entirely.
//! 3. **Custody propagation** (`param_custody`, `ret_custody`): the meet
//!    over every call site of the argument's cover (and over every return
//!    of the returned value's cover), so custody established in the caller
//!    survives into the callee (entry seeding) and custody established in
//!    the callee survives back (call-result covers).
//!
//! Soundness rules worth spelling out:
//!
//! * A `Localized` parameter or return class is **demoted to `Unknown`**
//!   unless the matching custody fact holds. Class says "the value is a
//!   canonical pointer"; custody says "its object is still localized on
//!   every path". Only together do they justify skipping a guard.
//! * Call-result covers are only emitted when the callee's return class is
//!   `Localized`: a cover on a *raw* returned pointer is fine for the lint
//!   but must never become an elimination survivor (rewriting accesses to a
//!   raw pointer would trap on canonical-address checking).
//! * Refinement only ever narrows the intraprocedural answer: pointer
//!   parameters start from `Unknown` at roots, non-pointer parameters keep
//!   the legacy `NonPtr` treatment, so turning the analysis on can remove
//!   guards but never add one.
//! * **Roots** — `main` (whatever the pipeline says it is called) plus every
//!   SCC no outside function calls into — are assumed callable from the
//!   harness with arbitrary arguments: their parameters stay `Unknown` and
//!   carry no custody.
//!
//! The dynamic mirror lives in `tfm_sim::Machine`: the guard sanitizer
//! propagates custody shadows across call/return and only clobbers the
//! caller's shadows when the callee *actually* executed a killing
//! operation, so the dynamic kill set is always a subset of the static
//! may-kill set and lint-clean programs stay sanitizer-clean.

use crate::callgraph::CallGraph;
use crate::guard_check::{AvailableGuards, CallEffects, GuardKind};
use crate::points_to::{MemClass, PointsTo};
use std::collections::{HashMap, HashSet};
use tfm_ir::{FuncId, Function, InstKind, Intrinsic, Module, Type, Value};

/// A set of abstract memory regions a function may read or write.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RegionSet(u8);

impl RegionSet {
    /// TrackFM-managed (or localized) heap memory.
    pub const HEAP: RegionSet = RegionSet(1);
    /// Stack slots.
    pub const STACK: RegionSet = RegionSet(2);
    /// Module globals.
    pub const GLOBAL: RegionSet = RegionSet(4);
    /// Unknown provenance.
    pub const UNKNOWN: RegionSet = RegionSet(8);

    /// The empty set.
    pub fn empty() -> RegionSet {
        RegionSet(0)
    }

    /// Set union (in place).
    pub fn insert(&mut self, other: RegionSet) {
        self.0 |= other.0;
    }

    /// True when `other`'s regions are all present.
    pub fn contains(self, other: RegionSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no region is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The region an access through a pointer of class `c` touches.
    pub fn of_class(c: MemClass) -> RegionSet {
        match c {
            MemClass::Heap | MemClass::Localized | MemClass::LocalHeap => RegionSet::HEAP,
            MemClass::Stack => RegionSet::STACK,
            MemClass::Global => RegionSet::GLOBAL,
            MemClass::NonPtr | MemClass::Unknown => RegionSet::UNKNOWN,
        }
    }

    /// Compact `HSG?` rendering (dash for absent regions).
    pub fn render(self) -> String {
        let mut s = String::new();
        for (bit, ch) in [
            (RegionSet::HEAP, 'H'),
            (RegionSet::STACK, 'S'),
            (RegionSet::GLOBAL, 'G'),
            (RegionSet::UNKNOWN, '?'),
        ] {
            s.push(if self.contains(bit) { ch } else { '-' });
        }
        s
    }
}

/// The per-function effect summary.
#[derive(Clone, Debug, PartialEq)]
pub struct FnSummary {
    /// May this function (transitively) clobber the caller's custody set?
    pub kills_custody: bool,
    /// May it (transitively) free or shrink heap memory?
    pub may_free: bool,
    /// May it (transitively) allocate — and therefore trigger evacuation at
    /// a collection point?
    pub may_evacuate: bool,
    /// Regions it (transitively) reads.
    pub reads: RegionSet,
    /// Regions it (transitively) writes.
    pub writes: RegionSet,
    /// Join over every call site of each argument's memory class
    /// (`Unknown` for root parameters).
    pub param_class: Vec<MemClass>,
    /// Meet over every call site of each argument's custody.
    pub param_custody: Vec<Option<GuardKind>>,
    /// Join over every return of the returned value's class (`NonPtr` for
    /// void / non-pointer returns).
    pub ret_class: MemClass,
    /// Meet over every return of the returned value's custody.
    pub ret_custody: Option<GuardKind>,
}

impl FnSummary {
    /// The conservative summary: kills everything, parameters unknown.
    pub fn conservative(f: &Function) -> FnSummary {
        FnSummary {
            kills_custody: true,
            may_free: true,
            may_evacuate: true,
            reads: RegionSet::UNKNOWN,
            writes: RegionSet::UNKNOWN,
            param_class: f
                .sig
                .params
                .iter()
                .map(|t| {
                    if *t == Type::Ptr {
                        MemClass::Unknown
                    } else {
                        MemClass::NonPtr
                    }
                })
                .collect(),
            param_custody: vec![None; f.sig.params.len()],
            ret_class: if f.sig.ret == Some(Type::Ptr) {
                MemClass::Unknown
            } else {
                MemClass::NonPtr
            },
            ret_custody: None,
        }
    }

    /// True when calling this function provably leaves the caller's
    /// available-guard set intact.
    pub fn custody_transparent(&self) -> bool {
        !self.kills_custody
    }
}

/// Custody lattice used during the descending fixpoint: ⊤ (no constraint
/// seen yet) → a kind → ⊥ (no custody).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Cust {
    Top,
    Kind(GuardKind),
    Bottom,
}

impl Cust {
    fn meet(self, other: Cust) -> Cust {
        match (self, other) {
            (Cust::Top, x) | (x, Cust::Top) => x,
            (Cust::Bottom, _) | (_, Cust::Bottom) => Cust::Bottom,
            (Cust::Kind(a), Cust::Kind(b)) => Cust::Kind(a.meet(b)),
        }
    }

    /// Conservative readout: ⊤ (never constrained — unreachable function or
    /// value) reads as no custody.
    fn out(self) -> Option<GuardKind> {
        match self {
            Cust::Kind(k) => Some(k),
            _ => None,
        }
    }
}

/// Guard kinds that propagate across calls: chunk custody stays per-stream
/// (its write intent lives on the `tfm.chunk.begin` flags).
fn propagable(k: GuardKind) -> Option<GuardKind> {
    match k {
        GuardKind::Read | GuardKind::Write => Some(k),
        GuardKind::Chunk => None,
    }
}

/// Whole-module summaries plus the call graph they were computed over.
#[derive(Clone, Debug)]
pub struct ModuleSummaries {
    cg: CallGraph,
    sums: HashMap<FuncId, FnSummary>,
    roots: HashSet<FuncId>,
}

impl ModuleSummaries {
    /// Computes summaries bottom-up over the SCC condensation. `roots`
    /// names functions callable from outside the module (the pipeline
    /// passes its `main_name`); uncalled functions and source SCCs are
    /// added automatically.
    pub fn compute(module: &Module, roots: &[&str]) -> Self {
        Self::compute_with_locals(module, roots, &HashMap::new())
    }

    /// [`ModuleSummaries::compute`], honoring pruned-local allocation sites
    /// (per function) so classes agree with what the `guards` pass sees.
    pub fn compute_with_locals(
        module: &Module,
        roots: &[&str],
        local_sites: &HashMap<FuncId, HashSet<Value>>,
    ) -> Self {
        let cg = CallGraph::compute(module);
        let root_set = root_set(module, &cg, roots);
        let n = module
            .function_ids()
            .map(|f| f.index() + 1)
            .max()
            .unwrap_or(0);
        let empty_locals = HashSet::new();
        let locals_of =
            |fid: FuncId| -> &HashSet<Value> { local_sites.get(&fid).unwrap_or(&empty_locals) };

        // Phase 1 — boolean effects, a least fixpoint (optimistic `false`
        // start) over the bottom-up SCC order; only intra-SCC edges need
        // iteration.
        let mut kills = vec![false; n];
        let mut frees = vec![false; n];
        let mut evacs = vec![false; n];
        for scc in cg.sccs_bottom_up() {
            let mut changed = true;
            while changed {
                changed = false;
                for &fid in scc {
                    let f = module.function(fid);
                    let (mut k, mut fr, mut ev) = (false, false, false);
                    for v in f.live_insts() {
                        match f.kind(v) {
                            InstKind::IntrinsicCall { intr, .. } => match intr {
                                Intrinsic::GuardRead
                                | Intrinsic::GuardWrite
                                | Intrinsic::ChunkDeref => {}
                                Intrinsic::Malloc
                                | Intrinsic::Calloc
                                | Intrinsic::TfmAlloc
                                | Intrinsic::TfmCalloc => {
                                    k = true;
                                    ev = true;
                                }
                                Intrinsic::Realloc | Intrinsic::TfmRealloc => {
                                    k = true;
                                    ev = true;
                                    fr = true;
                                }
                                Intrinsic::Free | Intrinsic::TfmFree => {
                                    k = true;
                                    fr = true;
                                }
                                _ => k = true,
                            },
                            InstKind::Call { func, .. } => {
                                k |= kills[func.index()];
                                fr |= frees[func.index()];
                                ev |= evacs[func.index()];
                            }
                            _ => {}
                        }
                    }
                    if (k, fr, ev) != (kills[fid.index()], frees[fid.index()], evacs[fid.index()]) {
                        kills[fid.index()] |= k;
                        frees[fid.index()] |= fr;
                        evacs[fid.index()] |= ev;
                        changed = true;
                    }
                }
            }
        }

        // Phase 2 — custody, a descending (⊤-start) must fixpoint. Custody
        // facts are independent of memory classes, so this converges before
        // classes are touched. Roots get no parameter custody.
        let mut param_cust: Vec<Vec<Cust>> = module
            .function_ids()
            .map(|fid| {
                let f = module.function(fid);
                f.sig
                    .params
                    .iter()
                    .map(|t| {
                        if root_set.contains(&fid) || *t != Type::Ptr {
                            Cust::Bottom
                        } else {
                            Cust::Top
                        }
                    })
                    .collect()
            })
            .collect();
        let mut ret_cust: Vec<Cust> = module
            .function_ids()
            .map(|fid| {
                if module.function(fid).sig.ret == Some(Type::Ptr) {
                    Cust::Top
                } else {
                    Cust::Bottom
                }
            })
            .collect();
        loop {
            let mut changed = false;
            // Fresh per-round site constraints, met into the state below.
            let mut site_cust: Vec<Vec<Cust>> = param_cust
                .iter()
                .map(|p| vec![Cust::Top; p.len()])
                .collect();
            let mut new_ret = ret_cust.clone();
            for fid in module.function_ids() {
                let f = module.function(fid);
                let fx = build_effects(f, fid, &kills, &ret_cust, &param_cust);
                let ag = AvailableGuards::compute_with(f, Some(fx));
                for bi in 0..f.num_blocks() {
                    let b = tfm_ir::Block::from_index(bi);
                    let Some(start) = ag.block_in(b) else {
                        continue;
                    };
                    let mut map = start.clone();
                    for &v in f.block_insts(b) {
                        match f.kind(v) {
                            InstKind::Call { func, args } => {
                                for (i, a) in args.iter().enumerate() {
                                    let c = map
                                        .get(a)
                                        .and_then(|c| propagable(c.kind))
                                        .map(Cust::Kind)
                                        .unwrap_or(Cust::Bottom);
                                    let slot = &mut site_cust[func.index()][i];
                                    *slot = slot.meet(c);
                                }
                            }
                            InstKind::Ret(Some(rv)) if f.sig.ret == Some(Type::Ptr) => {
                                let c = map
                                    .get(rv)
                                    .and_then(|c| propagable(c.kind))
                                    .map(Cust::Kind)
                                    .unwrap_or(Cust::Bottom);
                                new_ret[fid.index()] = new_ret[fid.index()].meet(c);
                            }
                            _ => {}
                        }
                        ag.apply(f, &mut map, v);
                    }
                }
            }
            for fid in module.function_ids() {
                let i = fid.index();
                if new_ret[i] != ret_cust[i] {
                    ret_cust[i] = new_ret[i];
                    changed = true;
                }
                if root_set.contains(&fid) {
                    continue;
                }
                for (p, site) in param_cust[i].iter_mut().zip(&site_cust[i]) {
                    let met = p.meet(*site);
                    if met != *p {
                        *p = met;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 3 — classes, an ascending (⊥-start) join fixpoint with the
        // custody-gated Localized demotion applied as facts are produced.
        let mut param_class: Vec<Vec<MemClass>> = module
            .function_ids()
            .map(|fid| {
                let f = module.function(fid);
                f.sig
                    .params
                    .iter()
                    .map(|t| {
                        if *t != Type::Ptr {
                            MemClass::NonPtr
                        } else if root_set.contains(&fid) {
                            MemClass::Unknown
                        } else {
                            MemClass::NonPtr
                        }
                    })
                    .collect()
            })
            .collect();
        let mut ret_class: Vec<MemClass> = vec![MemClass::NonPtr; n];
        let mut pts: HashMap<FuncId, PointsTo> = HashMap::new();
        loop {
            let mut changed = false;
            let rc_snapshot = ret_class.clone();
            pts.clear();
            for fid in module.function_ids() {
                let f = module.function(fid);
                let pt = PointsTo::compute_with_env(
                    f,
                    locals_of(fid),
                    &param_class[fid.index()],
                    &|g| rc_snapshot[g.index()],
                );
                pts.insert(fid, pt);
            }
            for fid in module.function_ids() {
                let f = module.function(fid);
                let pt = &pts[&fid];
                for v in f.live_insts() {
                    match f.kind(v) {
                        InstKind::Ret(Some(rv)) if f.sig.ret == Some(Type::Ptr) => {
                            let c = demote(pt.class(*rv), ret_cust[fid.index()].out());
                            let joined = ret_class[fid.index()].join(c);
                            if joined != ret_class[fid.index()] {
                                ret_class[fid.index()] = joined;
                                changed = true;
                            }
                        }
                        InstKind::Call { func, args } => {
                            if root_set.contains(func) {
                                continue;
                            }
                            for (i, a) in args.iter().enumerate() {
                                let slot = &mut param_class[func.index()][i];
                                if module.function(*func).sig.params[i] != Type::Ptr {
                                    continue;
                                }
                                let c = demote(pt.class(*a), param_cust[func.index()][i].out());
                                let joined = slot.join(c);
                                if joined != *slot {
                                    *slot = joined;
                                    changed = true;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 4 — region read/write sets with the final classes, another
        // bottom-up boolean-ish fixpoint.
        let mut reads = vec![RegionSet::empty(); n];
        let mut writes = vec![RegionSet::empty(); n];
        for scc in cg.sccs_bottom_up() {
            let mut changed = true;
            while changed {
                changed = false;
                for &fid in scc {
                    let f = module.function(fid);
                    let pt = &pts[&fid];
                    let (mut r, mut w) = (RegionSet::empty(), RegionSet::empty());
                    for v in f.live_insts() {
                        match f.kind(v) {
                            InstKind::Load { ptr } => r.insert(RegionSet::of_class(pt.class(*ptr))),
                            InstKind::Store { ptr, .. } => {
                                w.insert(RegionSet::of_class(pt.class(*ptr)))
                            }
                            InstKind::IntrinsicCall { intr, .. } => match intr {
                                Intrinsic::GuardRead | Intrinsic::ChunkDeref => {
                                    r.insert(RegionSet::HEAP)
                                }
                                Intrinsic::GuardWrite => {
                                    r.insert(RegionSet::HEAP);
                                    w.insert(RegionSet::HEAP);
                                }
                                i if i.is_allocation() => w.insert(RegionSet::HEAP),
                                Intrinsic::Memcpy | Intrinsic::Memset => {
                                    r.insert(RegionSet::UNKNOWN);
                                    w.insert(RegionSet::UNKNOWN);
                                }
                                _ => {}
                            },
                            InstKind::Call { func, .. } => {
                                r.insert(reads[func.index()]);
                                w.insert(writes[func.index()]);
                            }
                            _ => {}
                        }
                    }
                    if r != reads[fid.index()] || w != writes[fid.index()] {
                        reads[fid.index()].insert(r);
                        writes[fid.index()].insert(w);
                        changed = true;
                    }
                }
            }
        }

        let sums = module
            .function_ids()
            .map(|fid| {
                let i = fid.index();
                (
                    fid,
                    FnSummary {
                        kills_custody: kills[i],
                        may_free: frees[i],
                        may_evacuate: evacs[i],
                        reads: reads[i],
                        writes: writes[i],
                        param_class: param_class[i].clone(),
                        param_custody: param_cust[i].iter().map(|c| c.out()).collect(),
                        ret_class: ret_class[i],
                        ret_custody: ret_cust[i].out(),
                    },
                )
            })
            .collect();
        ModuleSummaries {
            cg,
            sums,
            roots: root_set,
        }
    }

    /// The summary of `f`.
    pub fn summary(&self, f: FuncId) -> &FnSummary {
        &self.sums[&f]
    }

    /// The call graph the summaries were computed over.
    pub fn callgraph(&self) -> &CallGraph {
        &self.cg
    }

    /// True when `f` is treated as externally callable (parameters unknown,
    /// no custody).
    pub fn is_root(&self, f: FuncId) -> bool {
        self.roots.contains(&f)
    }

    /// Builds the per-instruction [`CallEffects`] for `fid`, ready to hand
    /// to [`AvailableGuards::compute_with`]. Call-result covers are gated on
    /// the callee returning a *canonical* (`Localized`) pointer so
    /// elimination never rewrites accesses to a raw pointer.
    pub fn effects_for(&self, fid: FuncId, f: &Function) -> CallEffects {
        let mut fx = CallEffects::default();
        for v in f.live_insts() {
            if let InstKind::Call { func, .. } = f.kind(v) {
                let s = self.summary(*func);
                if s.custody_transparent() {
                    fx.transparent.insert(v);
                }
                if f.ty(v) == Some(Type::Ptr) && s.ret_class == MemClass::Localized {
                    if let Some(k) = s.ret_custody {
                        fx.ret_cover.insert(v, k);
                    }
                }
            }
        }
        let s = self.summary(fid);
        for (i, c) in s.param_custody.iter().enumerate() {
            if let Some(k) = *c {
                fx.entry_cover.insert(f.param(i), k);
            }
        }
        fx
    }

    /// Per-function [`PointsTo`] refined with this module's summaries.
    pub fn points_to_for(
        &self,
        fid: FuncId,
        f: &Function,
        local_sites: &HashSet<Value>,
    ) -> PointsTo {
        let s = self.summary(fid);
        PointsTo::compute_with_env(f, local_sites, &s.param_class, &|g| {
            self.summary(g).ret_class
        })
    }
}

/// Applies the Localized-demands-custody rule.
fn demote(c: MemClass, custody: Option<GuardKind>) -> MemClass {
    if c == MemClass::Localized && custody.is_none() {
        MemClass::Unknown
    } else {
        c
    }
}

/// Roots: named entry points, plus every SCC without callers outside
/// itself (covers uncalled functions and uncalled recursive groups).
fn root_set(module: &Module, cg: &CallGraph, roots: &[&str]) -> HashSet<FuncId> {
    let mut set: HashSet<FuncId> = module
        .function_ids()
        .filter(|&fid| roots.contains(&module.function(fid).name.as_str()))
        .collect();
    for scc in cg.sccs_bottom_up() {
        let member: HashSet<FuncId> = scc.iter().copied().collect();
        let externally_called = scc
            .iter()
            .any(|&f| cg.callers(f).iter().any(|c| !member.contains(c)));
        if !externally_called {
            set.extend(scc.iter().copied());
        }
    }
    set
}

/// [`CallEffects`] from in-progress custody state (phase 2) — custody
/// covers are ungated there; the final [`ModuleSummaries::effects_for`]
/// applies the canonical-return gate.
fn build_effects(
    f: &Function,
    fid: FuncId,
    kills: &[bool],
    ret_cust: &[Cust],
    param_cust: &[Vec<Cust>],
) -> CallEffects {
    let mut fx = CallEffects::default();
    for v in f.live_insts() {
        if let InstKind::Call { func, .. } = f.kind(v) {
            if !kills[func.index()] {
                fx.transparent.insert(v);
            }
            if f.ty(v) == Some(Type::Ptr) {
                if let Some(k) = ret_cust[func.index()].out() {
                    fx.ret_cover.insert(v, k);
                }
            }
        }
    }
    for (i, c) in param_cust[fid.index()].iter().enumerate() {
        if let Some(k) = c.out() {
            fx.entry_cover.insert(f.param(i), k);
        }
    }
    fx
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_ir::{FunctionBuilder, Signature};

    fn guard(b: &mut FunctionBuilder, p: Value, write: bool) -> Value {
        let intr = if write {
            Intrinsic::GuardWrite
        } else {
            Intrinsic::GuardRead
        };
        b.intrinsic(intr, vec![p])
    }

    #[test]
    fn pure_helpers_are_custody_transparent_and_killers_propagate() {
        let mut m = Module::new("t");
        let pure = m.declare_function("pure", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(pure));
            let x = b.param(0);
            let one = b.iconst(Type::I64, 1);
            let y = b.binop(tfm_ir::BinOp::Add, x, one);
            b.ret(Some(y));
        }
        let alloc = m.declare_function("alloc", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(alloc));
            let p = b.malloc_const(64);
            let _ = p;
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        // Wrapper calls both: killing propagates transitively.
        let wrap = m.declare_function("wrap", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(wrap));
            let z = b.iconst(Type::I64, 0);
            let a = b.call(pure, vec![z], Some(Type::I64));
            let c = b.call(alloc, vec![], Some(Type::I64));
            let s = b.binop(tfm_ir::BinOp::Add, a, c);
            b.ret(Some(s));
        }
        let main = m.declare_function("main", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(main));
            let z = b.iconst(Type::I64, 0);
            let a = b.call(pure, vec![z], Some(Type::I64));
            let c = b.call(wrap, vec![], Some(Type::I64));
            let s = b.binop(tfm_ir::BinOp::Add, a, c);
            b.ret(Some(s));
        }
        m.verify().unwrap();
        let sums = ModuleSummaries::compute(&m, &["main"]);
        assert!(sums.summary(pure).custody_transparent());
        assert!(!sums.summary(pure).may_evacuate);
        assert!(sums.summary(alloc).kills_custody);
        assert!(sums.summary(alloc).may_evacuate);
        assert!(sums.summary(wrap).kills_custody, "kill propagates up");
        assert!(sums.summary(main).kills_custody);
    }

    #[test]
    fn recursion_reaches_a_sound_fixpoint() {
        // even/odd mutual recursion, pure: both transparent. A self-recursive
        // allocator: kills.
        let mut m = Module::new("t");
        let even = m.declare_function("even", Signature::new(vec![Type::I64], Some(Type::I64)));
        let odd = m.declare_function("odd", Signature::new(vec![Type::I64], Some(Type::I64)));
        for (this, other) in [(even, odd), (odd, even)] {
            let mut b = FunctionBuilder::new(m.function_mut(this));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let one = b.iconst(Type::I64, 1);
            let done = b.create_block();
            let rec = b.create_block();
            let c = b.icmp(tfm_ir::CmpOp::Eq, n, zero);
            b.cond_br(c, done, rec);
            b.switch_to_block(done);
            b.ret(Some(zero));
            b.switch_to_block(rec);
            let nm1 = b.binop(tfm_ir::BinOp::Sub, n, one);
            let r = b.call(other, vec![nm1], Some(Type::I64));
            b.ret(Some(r));
        }
        let selfalloc = m.declare_function(
            "selfalloc",
            Signature::new(vec![Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(selfalloc));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let one = b.iconst(Type::I64, 1);
            let done = b.create_block();
            let rec = b.create_block();
            let c = b.icmp(tfm_ir::CmpOp::Eq, n, zero);
            b.cond_br(c, done, rec);
            b.switch_to_block(done);
            b.ret(Some(zero));
            b.switch_to_block(rec);
            let _p = b.malloc_const(8);
            let nm1 = b.binop(tfm_ir::BinOp::Sub, n, one);
            let r = b.call(selfalloc, vec![nm1], Some(Type::I64));
            b.ret(Some(r));
        }
        let main = m.declare_function("main", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(main));
            let n = b.param(0);
            let a = b.call(even, vec![n], Some(Type::I64));
            let c = b.call(selfalloc, vec![n], Some(Type::I64));
            let s = b.binop(tfm_ir::BinOp::Add, a, c);
            b.ret(Some(s));
        }
        m.verify().unwrap();
        let sums = ModuleSummaries::compute(&m, &["main"]);
        assert!(sums.summary(even).custody_transparent());
        assert!(sums.summary(odd).custody_transparent());
        assert!(sums.summary(selfalloc).kills_custody);
        assert!(sums.callgraph().is_recursive(even));
    }

    #[test]
    fn param_classes_join_over_call_sites() {
        // One callee receives a stack pointer from one site and a heap
        // pointer from another: Unknown. Another receives stack from both:
        // Stack. Root (main) params stay Unknown.
        let mut m = Module::new("t");
        let sink = m.declare_function("sink", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(sink));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let stacky = m.declare_function("stacky", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(stacky));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let main = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(main));
            let rootp = b.param(0);
            let s = b.alloca(8, 8);
            let h = b.malloc_const(64);
            let a = b.call(sink, vec![s], Some(Type::I64));
            let bb = b.call(sink, vec![h], Some(Type::I64));
            let c = b.call(stacky, vec![s], Some(Type::I64));
            let d = b.load(Type::I64, rootp);
            let t1 = b.binop(tfm_ir::BinOp::Add, a, bb);
            let t2 = b.binop(tfm_ir::BinOp::Add, c, d);
            let t = b.binop(tfm_ir::BinOp::Add, t1, t2);
            b.ret(Some(t));
        }
        m.verify().unwrap();
        let sums = ModuleSummaries::compute(&m, &["main"]);
        assert_eq!(sums.summary(sink).param_class[0], MemClass::Unknown);
        assert_eq!(sums.summary(stacky).param_class[0], MemClass::Stack);
        assert_eq!(sums.summary(main).param_class[0], MemClass::Unknown);
        assert!(sums.is_root(main));
        assert!(!sums.is_root(stacky));
        // stacky only touches the stack; sink may touch anything.
        assert!(sums.summary(stacky).reads.contains(RegionSet::STACK));
        assert!(!sums.summary(stacky).reads.contains(RegionSet::UNKNOWN));
        assert!(sums.summary(sink).reads.contains(RegionSet::UNKNOWN));
    }

    #[test]
    fn custody_propagates_only_when_every_site_is_covered() {
        // covered(sink) at both sites → param Localized + custody;
        // one uncovered site → demoted to Unknown, custody gone.
        let mut m = Module::new("t");
        let sink = m.declare_function("sink", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(sink));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let mixed = m.declare_function("mixed", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(mixed));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let main = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(main));
            let h = b.malloc_const(64);
            let h2 = b.malloc_const(64);
            let g1 = guard(&mut b, h, true);
            let a = b.call(sink, vec![g1], Some(Type::I64));
            let g2 = guard(&mut b, h, false);
            let c = b.call(sink, vec![g2], Some(Type::I64));
            // `mixed` gets one guarded and one raw pointer.
            let g3 = guard(&mut b, h, false);
            let d = b.call(mixed, vec![g3], Some(Type::I64));
            let e = b.call(mixed, vec![h2], Some(Type::I64));
            let t1 = b.binop(tfm_ir::BinOp::Add, a, c);
            let t2 = b.binop(tfm_ir::BinOp::Add, d, e);
            let t = b.binop(tfm_ir::BinOp::Add, t1, t2);
            b.ret(Some(t));
        }
        m.verify().unwrap();
        let sums = ModuleSummaries::compute(&m, &["main"]);
        let s = sums.summary(sink);
        assert_eq!(s.param_class[0], MemClass::Localized);
        assert_eq!(s.param_custody[0], Some(GuardKind::Read), "write∧read→read");
        let s = sums.summary(mixed);
        assert_eq!(s.param_custody[0], None, "raw site destroys custody");
        assert_eq!(
            s.param_class[0],
            MemClass::Unknown,
            "demoted without custody"
        );
    }

    #[test]
    fn localized_returns_carry_custody_to_the_caller() {
        let mut m = Module::new("t");
        let loc = m.declare_function("loc", Signature::new(vec![Type::Ptr], Some(Type::Ptr)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(loc));
            let p = b.param(0);
            let g = guard(&mut b, p, false);
            b.ret(Some(g));
        }
        let raw = m.declare_function("raw", Signature::new(vec![Type::Ptr], Some(Type::Ptr)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(raw));
            let p = b.param(0);
            let _g = guard(&mut b, p, false);
            b.ret(Some(p)); // raw pointer covered at the return — class is not Localized
        }
        let main = m.declare_function("main", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(main));
            let p = b.param(0);
            let c1 = b.call(loc, vec![p], Some(Type::Ptr));
            let x = b.load(Type::I64, c1);
            let c2 = b.call(raw, vec![p], Some(Type::Ptr));
            let y = b.load(Type::I64, c2);
            let t = b.binop(tfm_ir::BinOp::Add, x, y);
            b.ret(Some(t));
        }
        m.verify().unwrap();
        let sums = ModuleSummaries::compute(&m, &["main"]);
        assert_eq!(sums.summary(loc).ret_class, MemClass::Localized);
        assert_eq!(sums.summary(loc).ret_custody, Some(GuardKind::Read));
        assert_ne!(sums.summary(raw).ret_class, MemClass::Localized);
        // effects_for only covers the canonical-returning call.
        let f = m.function(main);
        let fx = sums.effects_for(main, f);
        let calls: Vec<Value> = f
            .live_insts()
            .into_iter()
            .filter(|&v| matches!(f.kind(v), InstKind::Call { .. }))
            .collect();
        assert!(fx.ret_cover.contains_key(&calls[0]));
        assert!(!fx.ret_cover.contains_key(&calls[1]));
        assert!(fx.transparent.contains(&calls[0]), "guards do not kill");
    }

    #[test]
    fn conservative_summary_matches_legacy_assumptions() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::Ptr)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            b.ret(Some(p));
        }
        let s = FnSummary::conservative(m.function(id));
        assert!(s.kills_custody && s.may_free && s.may_evacuate);
        assert_eq!(s.param_class, vec![MemClass::Unknown, MemClass::NonPtr]);
        assert_eq!(s.ret_class, MemClass::Unknown);
        assert_eq!(s.param_custody, vec![None, None]);
        assert_eq!(s.ret_custody, None);
    }
}
