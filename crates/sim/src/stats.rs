//! Execution statistics.

use std::fmt;
use tfm_fastswap::PagerStats;
use tfm_net::{ShardSnapshot, TransferStats};
use tfm_runtime::RuntimeStats;
use tfm_telemetry::{MergeStats, StatGroup};

/// Counters accumulated while interpreting a program.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ExecStats {
    /// Simulated cycles (the primary performance metric).
    pub cycles: u64,
    /// IR instructions retired.
    pub instructions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Guard custody checks that exited early (non-TrackFM pointer).
    pub custody_exits: u64,
    /// Fast-path guards taken (object local & safe).
    pub guards_fast: u64,
    /// Slow-path guards where the object was already local.
    pub guards_slow_local: u64,
    /// Slow-path guards requiring a remote fetch (or in-flight wait).
    pub guards_slow_remote: u64,
    /// Chunk object-boundary checks (in-object hits).
    pub boundary_checks: u64,
    /// Chunk locality-invariant guards (object crossings).
    pub locality_guards: u64,
    /// Cycles spent stalled on the network (demand fetches + late
    /// prefetches).
    pub stall_cycles: u64,
}

impl ExecStats {
    /// Total guard events of any kind — the "#guards" series of
    /// Figs. 14b/16b.
    pub fn total_guards(&self) -> u64 {
        self.guards_fast + self.guards_slow_local + self.guards_slow_remote
    }

    /// Total slow-path guards.
    pub fn slow_guards(&self) -> u64 {
        self.guards_slow_local + self.guards_slow_remote
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} insts, guards {}/{}/{} (fast/slow-local/slow-remote), chunk {}/{} (boundary/locality), {} stall cycles",
            self.cycles,
            self.instructions,
            self.guards_fast,
            self.guards_slow_local,
            self.guards_slow_remote,
            self.boundary_checks,
            self.locality_guards,
            self.stall_cycles
        )
    }
}

impl StatGroup for ExecStats {
    fn group_name(&self) -> &'static str {
        "exec"
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cycles", self.cycles),
            ("instructions", self.instructions),
            ("loads", self.loads),
            ("stores", self.stores),
            ("custody_exits", self.custody_exits),
            ("guards_fast", self.guards_fast),
            ("guards_slow_local", self.guards_slow_local),
            ("guards_slow_remote", self.guards_slow_remote),
            ("boundary_checks", self.boundary_checks),
            ("locality_guards", self.locality_guards),
            ("stall_cycles", self.stall_cycles),
        ]
    }
}

impl MergeStats for ExecStats {
    fn merge(&mut self, other: &Self) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.loads += other.loads;
        self.stores += other.stores;
        self.custody_exits += other.custody_exits;
        self.guards_fast += other.guards_fast;
        self.guards_slow_local += other.guards_slow_local;
        self.guards_slow_remote += other.guards_slow_remote;
        self.boundary_checks += other.boundary_checks;
        self.locality_guards += other.locality_guards;
        self.stall_cycles += other.stall_cycles;
    }
}

/// Execution-engine counters (see [`crate::bytecode`]). Kept out of
/// [`ExecStats`] deliberately: engine choice changes real wall-clock
/// behavior only, so these counters must not participate in the simulated
/// statistics that are compared bit-for-bit across engines.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct EngineStats {
    /// Functions flattened to register bytecode (0 under the tree-walker;
    /// the whole module's function count after the first bytecode run).
    pub lowered_fns: u64,
    /// Instructions retired by the bytecode dispatch loop. Equals
    /// [`ExecStats::instructions`] when every call ran on bytecode.
    pub dispatched_insts: u64,
}

impl StatGroup for EngineStats {
    fn group_name(&self) -> &'static str {
        "engine"
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("lowered_fns", self.lowered_fns),
            ("dispatched_insts", self.dispatched_insts),
        ]
    }
}

impl MergeStats for EngineStats {
    fn merge(&mut self, other: &Self) {
        // Lowering is per-machine, not per-run: merging parallel runs of the
        // same lowered module keeps the module's function count, it does not
        // double it.
        self.lowered_fns = self.lowered_fns.max(other.lowered_fns);
        self.dispatched_insts += other.dispatched_insts;
    }
}

/// The result of running a program to completion.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The entry function's return value (bit pattern).
    pub ret: u64,
    /// Interpreter counters.
    pub stats: ExecStats,
    /// Execution-engine counters (all zero under the tree-walker).
    pub engine: EngineStats,
    /// Far-memory runtime counters (TrackFM/AIFM runs).
    pub runtime: Option<RuntimeStats>,
    /// Pager counters (Fastswap runs).
    pub pager: Option<PagerStats>,
    /// Network ledger (all far-memory runs; aggregated over shards).
    pub transfers: Option<TransferStats>,
    /// Per-shard ledgers and health; empty for single-node backends.
    pub shards: Vec<ShardSnapshot>,
}

impl RunResult {
    /// Simulated seconds at a given clock rate.
    pub fn seconds(&self, hz: f64) -> f64 {
        self.stats.cycles as f64 / hz
    }

    /// Simulated seconds at the paper's 2.4 GHz testbed clock.
    pub fn seconds_2_4ghz(&self) -> f64 {
        self.seconds(2.4e9)
    }

    /// Total bytes moved over the network, if this run used far memory.
    pub fn bytes_transferred(&self) -> u64 {
        self.transfers.map(|t| t.total_bytes()).unwrap_or(0)
    }

    /// Fault-or-guard event count: slow+fast guards for TrackFM runs, major
    /// faults for Fastswap runs (the comparable series of Fig. 14b).
    pub fn guards_or_faults(&self) -> u64 {
        if let Some(p) = self.pager {
            p.major_faults
        } else {
            self.stats.total_guards()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = ExecStats {
            guards_fast: 10,
            guards_slow_local: 2,
            guards_slow_remote: 3,
            ..Default::default()
        };
        assert_eq!(s.total_guards(), 15);
        assert_eq!(s.slow_guards(), 5);
        assert!(s.to_string().contains("10/2/3"));
    }

    #[test]
    fn seconds_at_clock() {
        let r = RunResult {
            ret: 0,
            stats: ExecStats {
                cycles: 2_400_000_000,
                ..Default::default()
            },
            engine: EngineStats::default(),
            runtime: None,
            pager: None,
            transfers: None,
            shards: Vec::new(),
        };
        assert!((r.seconds_2_4ghz() - 1.0).abs() < 1e-9);
        assert_eq!(r.bytes_transferred(), 0);
    }
}
