//! Memory systems: the four execution back-ends of the evaluation.
//!
//! | back-end | paper system | program form | access cost |
//! |---|---|---|---|
//! | [`LocalMem`] | "all local" baseline | any | plain loads/stores |
//! | [`FastswapMem`] | Fastswap (kernel paging) | *untransformed* | page faults at 4 KB granularity |
//! | [`TrackFmMem`] | TrackFM | *transformed* | compiler guards + object runtime |
//! | [`TrackFmMem::new_aifm`] | AIFM (library) | *transformed*¹ | smart-pointer derefs + object runtime |
//!
//! ¹ The AIFM baseline executes the same transformed program but charges the
//! costs a hand-modified application would pay: no custody checks (the
//! developer knows which pointers are remoteable) and cheaper dereferences,
//! per the substitution table in DESIGN.md.

use crate::stats::ExecStats;
use crate::trap::Trap;
use tfm_fastswap::{Pager, PagerConfig, PagerStats};
use tfm_ir::{CHUNK_FLAG_PREFETCH, CHUNK_FLAG_WRITE};
use tfm_net::{ShardSnapshot, TransferStats};
use tfm_runtime::{FarMemory, FarMemoryConfig, ObjId, RegionAllocator, RuntimeStats, TfmPtr};
use tfm_telemetry::Telemetry;
use trackfm::CostModel;

/// Base address of the canonical heap mapping.
pub const HEAP_BASE: u64 = 0x2000_0000_0000;
/// Base address of global data.
pub const GLOBAL_BASE: u64 = 0x6000_0000_0000;
/// Base address of the stack.
pub const STACK_BASE: u64 = 0x7000_0000_0000;

/// End-of-run counters from the memory system.
#[derive(Clone, Debug, Default)]
pub struct MemSummary {
    /// Far-memory runtime counters, if any.
    pub runtime: Option<RuntimeStats>,
    /// Pager counters, if any.
    pub pager: Option<PagerStats>,
    /// Network ledger, if any (aggregated over shards).
    pub transfers: Option<TransferStats>,
    /// Per-shard ledgers and health, populated only for multi-node
    /// backends (single-node summaries stay byte-identical to the
    /// pre-sharding format).
    pub shards: Vec<ShardSnapshot>,
}

/// A memory system the interpreter executes against.
///
/// All methods take `now` (the current simulated cycle) and return the extra
/// cycles the access/operation costs; the interpreter advances its clock by
/// the sum of operation cost and these extras.
pub trait MemorySystem {
    /// Allocates heap memory, returning the application-visible pointer.
    ///
    /// # Errors
    /// [`Trap::AllocFailure`] when the heap is exhausted.
    fn alloc(&mut self, size: u64, now: u64) -> Result<u64, Trap>;

    /// Allocates *always-local* heap memory (libc `malloc` left untouched
    /// by the pruning pass, §5): returns a canonical pointer whose objects
    /// are never evacuated. Defaults to [`MemorySystem::alloc`] for systems
    /// without a remote/local distinction.
    ///
    /// # Errors
    /// [`Trap::AllocFailure`] when the heap is exhausted.
    fn alloc_local(&mut self, size: u64, now: u64) -> Result<u64, Trap> {
        self.alloc(size, now)
    }

    /// Frees an allocation.
    ///
    /// # Errors
    /// [`Trap::OutOfBounds`] for pointers this system never returned.
    fn free(&mut self, ptr: u64, now: u64) -> Result<(), Trap>;

    /// Rounded size of a live allocation (for `realloc`).
    fn alloc_size(&self, ptr: u64) -> Option<u64>;

    /// Charges residency costs for a data access at `addr`.
    ///
    /// # Errors
    /// [`Trap::NonCanonicalAccess`] for unguarded TrackFM pointers.
    fn data_access(
        &mut self,
        addr: u64,
        size: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, Trap>;

    /// Executes a guard (Fig. 4): returns `(cycles, localized pointer)`.
    ///
    /// # Errors
    /// Out-of-range TrackFM pointers trap.
    fn guard(
        &mut self,
        ptr: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap>;

    /// Opens a chunk stream; returns `(cycles, handle)`.
    fn chunk_begin(&mut self, ptr: u64, flags: i64, now: u64) -> (u64, u64);

    /// Chunk dereference (boundary check or locality-invariant guard);
    /// returns `(cycles, localized pointer)`.
    ///
    /// # Errors
    /// [`Trap::BadChunkHandle`] on invalid handles.
    fn chunk_deref(
        &mut self,
        handle: u64,
        ptr: u64,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap>;

    /// Closes a chunk stream (unpins its current object).
    ///
    /// # Errors
    /// [`Trap::BadChunkHandle`] on invalid handles.
    fn chunk_end(&mut self, handle: u64, now: u64) -> Result<u64, Trap>;

    /// Asynchronous localization hint.
    fn prefetch_hint(&mut self, ptr: u64, now: u64);

    /// Translates an application address to its canonical form for raw data
    /// resolution (strips the TrackFM tag).
    fn canonical(&self, addr: u64) -> u64;

    /// Charges residency for a byte range (memcpy/memset support).
    ///
    /// # Errors
    /// Propagates residency traps.
    fn access_range(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, Trap>;

    /// Pages/evacuates everything out (cold-start between setup and run).
    fn evacuate_all(&mut self, now: u64);

    /// Clears counters and link state.
    fn reset_stats(&mut self);

    /// End-of-run counters.
    fn summary(&self) -> MemSummary;

    /// Attaches a telemetry sink. Systems with nothing to report (e.g.
    /// [`LocalMem`]) keep the default no-op.
    fn set_telemetry(&mut self, _tel: Telemetry) {}

    /// Tells the system which simulated worker core is about to execute
    /// (multi-core scheduler only; threads into per-core retry jitter).
    /// Systems without core-dependent behavior keep the default no-op.
    fn set_core(&mut self, _core: u32) {}

    /// Switches demand misses to the split issue/complete protocol
    /// (multi-core scheduler only). Off — the default everywhere — keeps
    /// the synchronous single-core path bit-identical to before the split.
    fn set_async_fetch(&mut self, _on: bool) {}

    /// Drains the completion horizon: the latest delivery cycle of any
    /// miss issued asynchronously since the last call (0 if none, and
    /// always 0 on the synchronous path). The scheduler folds it into
    /// per-request latency — a core moves on at the issue point, but the
    /// request only completes when its data lands.
    fn take_completion_horizon(&mut self) -> u64 {
        0
    }
}

// ======================================================================
// LocalMem
// ======================================================================

/// All memory is local: the "local-only" baseline every figure normalizes
/// against. Also executes *transformed* programs (guards become identity)
/// so the semantic-preservation tests can compare before/after IR.
#[derive(Clone, Debug)]
pub struct LocalMem {
    alloc: RegionAllocator,
}

impl LocalMem {
    /// Creates a local memory system over `heap_size` bytes.
    pub fn new(heap_size: u64) -> Self {
        LocalMem {
            alloc: RegionAllocator::new(heap_size, 4096),
        }
    }
}

impl MemorySystem for LocalMem {
    fn alloc(&mut self, size: u64, _now: u64) -> Result<u64, Trap> {
        let p = self.alloc.alloc(size).map_err(|_| Trap::AllocFailure)?;
        Ok(HEAP_BASE + p.offset())
    }

    fn free(&mut self, ptr: u64, _now: u64) -> Result<(), Trap> {
        if ptr < HEAP_BASE {
            return Err(Trap::OutOfBounds { addr: ptr, size: 0 });
        }
        self.alloc.free(TfmPtr::from_offset(ptr - HEAP_BASE));
        Ok(())
    }

    fn alloc_size(&self, ptr: u64) -> Option<u64> {
        ptr.checked_sub(HEAP_BASE)
            .and_then(|off| self.alloc.size_of(TfmPtr::from_offset(off)))
    }

    fn data_access(
        &mut self,
        _addr: u64,
        _size: u64,
        _write: bool,
        _now: u64,
        _stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        Ok(0)
    }

    fn guard(
        &mut self,
        ptr: u64,
        _write: bool,
        _now: u64,
        _stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        Ok((0, ptr))
    }

    fn chunk_begin(&mut self, _ptr: u64, _flags: i64, _now: u64) -> (u64, u64) {
        (0, 0)
    }

    fn chunk_deref(
        &mut self,
        _handle: u64,
        ptr: u64,
        _now: u64,
        _stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        Ok((0, ptr))
    }

    fn chunk_end(&mut self, _handle: u64, _now: u64) -> Result<u64, Trap> {
        Ok(0)
    }

    fn prefetch_hint(&mut self, _ptr: u64, _now: u64) {}

    fn canonical(&self, addr: u64) -> u64 {
        addr
    }

    fn access_range(
        &mut self,
        _addr: u64,
        _len: u64,
        _write: bool,
        _now: u64,
        _stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        Ok(0)
    }

    fn evacuate_all(&mut self, _now: u64) {}

    fn reset_stats(&mut self) {}

    fn summary(&self) -> MemSummary {
        MemSummary::default()
    }
}

// ======================================================================
// FastswapMem
// ======================================================================

/// The kernel-paging baseline: untransformed programs, page-granularity
/// faults.
#[derive(Clone)]
pub struct FastswapMem {
    alloc: RegionAllocator,
    pager: Pager,
}

impl FastswapMem {
    /// Creates a Fastswap memory system.
    pub fn new(heap_size: u64, pager_cfg: PagerConfig) -> Self {
        FastswapMem {
            alloc: RegionAllocator::new(heap_size, 4096),
            pager: Pager::new(pager_cfg),
        }
    }

    /// The pager (for assertions in tests).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }
}

impl MemorySystem for FastswapMem {
    fn alloc(&mut self, size: u64, _now: u64) -> Result<u64, Trap> {
        let p = self.alloc.alloc(size).map_err(|_| Trap::AllocFailure)?;
        Ok(HEAP_BASE + p.offset())
    }

    fn free(&mut self, ptr: u64, _now: u64) -> Result<(), Trap> {
        if ptr < HEAP_BASE {
            return Err(Trap::OutOfBounds { addr: ptr, size: 0 });
        }
        self.alloc.free(TfmPtr::from_offset(ptr - HEAP_BASE));
        Ok(())
    }

    fn alloc_size(&self, ptr: u64) -> Option<u64> {
        ptr.checked_sub(HEAP_BASE)
            .and_then(|off| self.alloc.size_of(TfmPtr::from_offset(off)))
    }

    fn data_access(
        &mut self,
        addr: u64,
        size: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        if (HEAP_BASE..GLOBAL_BASE).contains(&addr) {
            let cycles = self.pager.access(addr, size, write, now);
            stats.stall_cycles += cycles;
            Ok(cycles)
        } else {
            Ok(0)
        }
    }

    fn guard(
        &mut self,
        ptr: u64,
        _write: bool,
        _now: u64,
        _stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        Ok((0, ptr))
    }

    fn chunk_begin(&mut self, _ptr: u64, _flags: i64, _now: u64) -> (u64, u64) {
        (0, 0)
    }

    fn chunk_deref(
        &mut self,
        _handle: u64,
        ptr: u64,
        _now: u64,
        _stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        Ok((0, ptr))
    }

    fn chunk_end(&mut self, _handle: u64, _now: u64) -> Result<u64, Trap> {
        Ok(0)
    }

    fn prefetch_hint(&mut self, _ptr: u64, _now: u64) {}

    fn canonical(&self, addr: u64) -> u64 {
        addr
    }

    fn access_range(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        self.data_access(addr, len, write, now, stats)
    }

    fn evacuate_all(&mut self, now: u64) {
        self.pager.evacuate_all(now);
    }

    fn reset_stats(&mut self) {
        self.pager.reset_stats();
    }

    fn summary(&self) -> MemSummary {
        MemSummary {
            runtime: None,
            pager: Some(self.pager.stats()),
            transfers: Some(self.pager.transfer_stats()),
            shards: if self.pager.shard_count() > 1 {
                self.pager.shard_snapshots()
            } else {
                Vec::new()
            },
        }
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        self.pager.set_telemetry(tel);
    }

    fn set_async_fetch(&mut self, on: bool) {
        self.pager.set_async_fetch(on);
    }

    fn take_completion_horizon(&mut self) -> u64 {
        self.pager.take_completion_horizon()
    }
}

// ======================================================================
// TrackFmMem (and its AIFM flavor)
// ======================================================================

#[derive(Clone, Debug)]
struct ChunkStream {
    /// Pinned window: the current object and the previous one. Stencil
    /// loops touch `i-1, i, i+1` through one stream; a single-slot window
    /// would ping-pong locality guards at every object boundary.
    cur: Option<ObjId>,
    prev: Option<ObjId>,
    write: bool,
    prefetch: bool,
    last_dir: i64,
    active: bool,
}

/// The TrackFM memory system: compiler guards backed by the AIFM-like
/// object runtime.
#[derive(Clone, Debug)]
pub struct TrackFmMem {
    fm: FarMemory,
    cost: CostModel,
    streams: Vec<ChunkStream>,
    free_streams: Vec<usize>,
    /// Offsets of always-local allocations (pruned sites), whose objects
    /// hold a permanent pin.
    local_allocs: std::collections::HashSet<u64>,
    /// AIFM flavor: developer-integrated costs (no custody check, cheap
    /// smart-pointer deref).
    aifm: bool,
}

impl TrackFmMem {
    /// Creates a TrackFM memory system.
    pub fn new(cfg: FarMemoryConfig, cost: CostModel) -> Self {
        TrackFmMem {
            fm: FarMemory::new(cfg),
            cost,
            streams: Vec::new(),
            free_streams: Vec::new(),
            local_allocs: Default::default(),
            aifm: false,
        }
    }

    /// Creates the AIFM-flavored system (library-based baseline).
    pub fn new_aifm(cfg: FarMemoryConfig, cost: CostModel) -> Self {
        let mut s = Self::new(cfg, cost);
        s.aifm = true;
        s
    }

    /// The underlying runtime (for assertions in tests).
    pub fn far_memory(&self) -> &FarMemory {
        &self.fm
    }

    #[inline]
    fn canonical_of(&self, ptr: u64) -> u64 {
        HEAP_BASE + (ptr & tfm_runtime::OFFSET_MASK)
    }

    #[inline]
    fn obj_of_ptr(&self, ptr: u64) -> Result<ObjId, Trap> {
        let off = ptr & tfm_runtime::OFFSET_MASK;
        if off >= self.fm.config().heap_size {
            return Err(Trap::OutOfBounds { addr: ptr, size: 0 });
        }
        Ok(self.fm.obj_of_offset(off))
    }

    fn issue_stream_prefetch(&mut self, from: ObjId, dir: i64, now: u64) {
        let depth = self.fm.prefetch_depth() as i64;
        let max_obj = self.fm.config().num_objects() as i64;
        for k in 1..=depth {
            let target = from.0 as i64 + k * dir;
            if target < 0 || target >= max_obj {
                break;
            }
            self.fm.prefetch(ObjId(target as u64), now);
        }
    }
}

impl MemorySystem for TrackFmMem {
    fn alloc(&mut self, size: u64, now: u64) -> Result<u64, Trap> {
        self.fm
            .allocate(size, now)
            .map(|p| p.raw())
            .map_err(|_| Trap::AllocFailure)
    }

    fn alloc_local(&mut self, size: u64, now: u64) -> Result<u64, Trap> {
        let p = self
            .fm
            .allocate(size, now)
            .map_err(|_| Trap::AllocFailure)?;
        // Pin every covered object: pruned allocations never leave local
        // memory (they still count against the budget, as real DRAM would).
        let rounded = self.fm.allocator().size_of(p).unwrap_or(size);
        let first = self.fm.obj_of_offset(p.offset()).0;
        let last = self.fm.obj_of_offset(p.offset() + rounded - 1).0;
        for o in first..=last {
            self.fm.pin(ObjId(o));
        }
        self.local_allocs.insert(p.offset());
        Ok(HEAP_BASE + p.offset())
    }

    fn free(&mut self, ptr: u64, now: u64) -> Result<(), Trap> {
        // TrackFM's free performs its own custody check: pruned allocations
        // arrive as canonical pointers.
        let offset = if TfmPtr::is_tfm(ptr) {
            TfmPtr(ptr).offset()
        } else if ptr >= HEAP_BASE && ptr < HEAP_BASE + self.fm.config().heap_size {
            ptr - HEAP_BASE
        } else {
            return Err(Trap::OutOfBounds { addr: ptr, size: 0 });
        };
        if self.local_allocs.remove(&offset) {
            let rounded = self
                .fm
                .allocator()
                .size_of(TfmPtr::from_offset(offset))
                .unwrap_or(1);
            let first = self.fm.obj_of_offset(offset).0;
            let last = self.fm.obj_of_offset(offset + rounded - 1).0;
            for o in first..=last {
                self.fm.unpin(ObjId(o));
            }
        }
        self.fm.free(TfmPtr::from_offset(offset), now);
        Ok(())
    }

    fn alloc_size(&self, ptr: u64) -> Option<u64> {
        let offset = if TfmPtr::is_tfm(ptr) {
            TfmPtr(ptr).offset()
        } else if ptr >= HEAP_BASE && ptr < HEAP_BASE + self.fm.config().heap_size {
            ptr - HEAP_BASE
        } else {
            return None;
        };
        self.fm.allocator().size_of(TfmPtr::from_offset(offset))
    }

    fn data_access(
        &mut self,
        addr: u64,
        _size: u64,
        _write: bool,
        _now: u64,
        _stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        if TfmPtr::is_tfm(addr) {
            // An unguarded access to a TrackFM pointer is the §3.1 general
            // protection fault: the compiler missed a guard.
            return Err(Trap::NonCanonicalAccess { addr });
        }
        Ok(0)
    }

    fn guard(
        &mut self,
        ptr: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        if !TfmPtr::is_tfm(ptr) {
            // Custody check exits early: not a TrackFM pointer.
            if self.aifm {
                return Ok((0, ptr)); // the developer never wraps these
            }
            stats.custody_exits += 1;
            return Ok((self.cost.custody_check, ptr));
        }
        let obj = self.obj_of_ptr(ptr)?;
        if self.fm.table().is_safe(obj) {
            // Fast path.
            let cycles = if self.aifm {
                self.cost.aifm_deref
            } else if write {
                self.cost.custody_check + self.cost.guard_fast_write
            } else {
                self.cost.custody_check + self.cost.guard_fast_read
            };
            stats.guards_fast += 1;
            self.fm.fast_touch(obj, write);
            return Ok((cycles, self.canonical_of(ptr)));
        }
        // Slow path: runtime call, possibly a remote fetch, then a
        // collection point (§3.3).
        let base = if self.aifm {
            self.cost.aifm_slow
        } else if write {
            self.cost.custody_check + self.cost.guard_slow_write
        } else {
            self.cost.custody_check + self.cost.guard_slow_read
        };
        let stall = self.fm.localize(obj, write, now + base);
        if stall > 0 {
            stats.guards_slow_remote += 1;
            stats.stall_cycles += stall;
        } else {
            stats.guards_slow_local += 1;
        }
        self.fm.collection_point(now + base + stall);
        Ok((base + stall, self.canonical_of(ptr)))
    }

    fn chunk_begin(&mut self, _ptr: u64, flags: i64, _now: u64) -> (u64, u64) {
        let stream = ChunkStream {
            cur: None,
            prev: None,
            write: flags & CHUNK_FLAG_WRITE != 0,
            prefetch: flags & CHUNK_FLAG_PREFETCH != 0,
            last_dir: 1,
            active: true,
        };
        let idx = match self.free_streams.pop() {
            Some(i) => {
                self.streams[i] = stream;
                i
            }
            None => {
                self.streams.push(stream);
                self.streams.len() - 1
            }
        };
        (self.cost.alu, idx as u64)
    }

    fn chunk_deref(
        &mut self,
        handle: u64,
        ptr: u64,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        let idx = handle as usize;
        if idx >= self.streams.len() || !self.streams[idx].active {
            return Err(Trap::BadChunkHandle { handle });
        }
        if !TfmPtr::is_tfm(ptr) {
            // Chunked stream over a non-managed pointer (e.g. a stack
            // array): boundary check only.
            stats.boundary_checks += 1;
            return Ok((self.cost.boundary_check, ptr));
        }
        let obj = self.obj_of_ptr(ptr)?;
        let (cur, prev, write, prefetch) = {
            let s = &self.streams[idx];
            (s.cur, s.prev, s.write, s.prefetch)
        };
        if cur == Some(obj) || prev == Some(obj) {
            // In-window: the cheap conditional of Fig. 5.
            let c = if self.aifm {
                self.cost.boundary_check.min(self.cost.aifm_deref)
            } else {
                self.cost.boundary_check
            };
            stats.boundary_checks += 1;
            self.fm.fast_touch(obj, write);
            return Ok((c, self.canonical_of(ptr)));
        }
        // Object crossing: locality-invariant guard. The window slides:
        // the oldest pin is released, the new object pinned.
        let base = if self.aifm {
            self.cost.aifm_slow
        } else {
            self.cost.locality_guard
        };
        if let Some(old) = prev {
            self.fm.unpin(old);
        }
        if let Some(cur) = cur {
            let dir = if obj.0 >= cur.0 { 1 } else { -1 };
            self.streams[idx].last_dir = dir;
        }
        let stall = self.fm.localize(obj, write, now + base);
        if stall > 0 {
            stats.stall_cycles += stall;
        }
        self.fm.pin(obj);
        self.fm.collection_point(now + base + stall);
        if prefetch {
            let dir = self.streams[idx].last_dir;
            self.issue_stream_prefetch(obj, dir, now + base + stall);
        }
        self.streams[idx].prev = cur;
        self.streams[idx].cur = Some(obj);
        stats.locality_guards += 1;
        Ok((base + stall, self.canonical_of(ptr)))
    }

    fn chunk_end(&mut self, handle: u64, _now: u64) -> Result<u64, Trap> {
        let idx = handle as usize;
        if idx >= self.streams.len() || !self.streams[idx].active {
            return Err(Trap::BadChunkHandle { handle });
        }
        if let Some(obj) = self.streams[idx].cur.take() {
            self.fm.unpin(obj);
        }
        if let Some(obj) = self.streams[idx].prev.take() {
            self.fm.unpin(obj);
        }
        self.streams[idx].active = false;
        self.free_streams.push(idx);
        Ok(self.cost.alu)
    }

    fn prefetch_hint(&mut self, ptr: u64, now: u64) {
        if TfmPtr::is_tfm(ptr) {
            if let Ok(obj) = self.obj_of_ptr(ptr) {
                self.fm.prefetch(obj, now);
            }
        }
    }

    fn canonical(&self, addr: u64) -> u64 {
        if TfmPtr::is_tfm(addr) {
            self.canonical_of(addr)
        } else {
            addr
        }
    }

    fn access_range(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        if !TfmPtr::is_tfm(addr) {
            return Ok(0);
        }
        // Runtime-internal memcpy path: localize each covered object via the
        // slow path (pre-transformed library code, §2).
        let obj_size = self.fm.object_size();
        let start = addr & tfm_runtime::OFFSET_MASK;
        let end = start + len.max(1) - 1;
        if end >= self.fm.config().heap_size {
            return Err(Trap::OutOfBounds { addr, size: len });
        }
        let mut cycles = 0;
        for o in (start / obj_size)..=(end / obj_size) {
            let obj = ObjId(o);
            if self.fm.table().is_safe(obj) {
                self.fm.fast_touch(obj, write);
                cycles += self.cost.guard_fast_read;
                stats.guards_fast += 1;
            } else {
                let base = self.cost.guard_slow_read;
                let stall = self.fm.localize(obj, write, now + cycles + base);
                if stall > 0 {
                    stats.guards_slow_remote += 1;
                    stats.stall_cycles += stall;
                } else {
                    stats.guards_slow_local += 1;
                }
                cycles += base + stall;
            }
        }
        Ok(cycles)
    }

    fn evacuate_all(&mut self, now: u64) {
        self.fm.evacuate_all(now);
    }

    fn reset_stats(&mut self) {
        self.fm.reset_stats();
    }

    fn summary(&self) -> MemSummary {
        MemSummary {
            runtime: Some(*self.fm.stats()),
            pager: None,
            transfers: Some(self.fm.transfer_stats()),
            shards: if self.fm.shard_count() > 1 {
                self.fm.shard_snapshots()
            } else {
                Vec::new()
            },
        }
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        self.fm.set_telemetry(tel);
    }

    fn set_core(&mut self, core: u32) {
        self.fm.set_core(core);
    }

    fn set_async_fetch(&mut self, on: bool) {
        self.fm.set_async_fetch(on);
    }

    fn take_completion_horizon(&mut self) -> u64 {
        self.fm.take_completion_horizon()
    }
}

// ======================================================================
// HybridMem — the §5 "hybrid approach (compiler and kernel)" exploration.
// ======================================================================

/// A compiler+kernel hybrid: chunk streams (compiler-planned, sub-page,
/// prefetched) run on the object runtime exactly as TrackFM's do, but
/// *unchunked* heap accesses carry **no guards at all** — they execute raw,
/// and a miss vectors into a kernel-style fault handler (fixed kernel cost
/// plus the object fetch). §5 of the paper: "we were surprised how well
/// kernel-based approaches perform when there is sufficient temporal
/// locality [...] This suggests that a hybrid approach (compiler and
/// kernel) holds promise."
///
/// Programs must be compiled with `CompilerOptions { guards: false, .. }`;
/// running a hybrid binary on [`TrackFmMem`] would trap on the raw accesses.
///
/// Trade-offs vs. TrackFM: resident irregular accesses cost *zero* extra
/// cycles (no custody check, no fast-path guard), but every miss pays the
/// kernel fault cost (~1.3 K cycles) on top of the fetch instead of the
/// ~150-cycle slow-path guard. Misses are counted in
/// [`crate::ExecStats::guards_slow_remote`]/`_local` (they are the
/// fault-path events of this system).
#[derive(Clone, Debug)]
pub struct HybridMem {
    inner: TrackFmMem,
    kernel_fault_cycles: u64,
}

impl HybridMem {
    /// Creates a hybrid memory system (kernel fault cost from the paper's
    /// Table 2: 1.3 K cycles).
    pub fn new(cfg: FarMemoryConfig, cost: CostModel) -> Self {
        HybridMem {
            inner: TrackFmMem::new(cfg, cost),
            kernel_fault_cycles: 1_300,
        }
    }

    /// The underlying runtime (for assertions in tests).
    pub fn far_memory(&self) -> &FarMemory {
        self.inner.far_memory()
    }
}

impl MemorySystem for HybridMem {
    fn alloc(&mut self, size: u64, now: u64) -> Result<u64, Trap> {
        self.inner.alloc(size, now)
    }

    fn alloc_local(&mut self, size: u64, now: u64) -> Result<u64, Trap> {
        self.inner.alloc_local(size, now)
    }

    fn free(&mut self, ptr: u64, now: u64) -> Result<(), Trap> {
        self.inner.free(ptr, now)
    }

    fn alloc_size(&self, ptr: u64) -> Option<u64> {
        self.inner.alloc_size(ptr)
    }

    fn data_access(
        &mut self,
        addr: u64,
        _size: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        if !TfmPtr::is_tfm(addr) {
            return Ok(0);
        }
        // Raw access to managed memory: mapped pages are free; a miss takes
        // a kernel-style fault that localizes the object.
        let obj = self.inner.obj_of_ptr(addr)?;
        if self.inner.fm.table().is_safe(obj) {
            self.inner.fm.fast_touch(obj, write);
            return Ok(0);
        }
        let base = self.kernel_fault_cycles;
        let stall = self.inner.fm.localize(obj, write, now + base);
        if stall > 0 {
            stats.guards_slow_remote += 1;
            stats.stall_cycles += stall;
        } else {
            stats.guards_slow_local += 1;
        }
        self.inner.fm.collection_point(now + base + stall);
        Ok(base + stall)
    }

    fn guard(
        &mut self,
        ptr: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        self.inner.guard(ptr, write, now, stats)
    }

    fn chunk_begin(&mut self, ptr: u64, flags: i64, now: u64) -> (u64, u64) {
        self.inner.chunk_begin(ptr, flags, now)
    }

    fn chunk_deref(
        &mut self,
        handle: u64,
        ptr: u64,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<(u64, u64), Trap> {
        self.inner.chunk_deref(handle, ptr, now, stats)
    }

    fn chunk_end(&mut self, handle: u64, now: u64) -> Result<u64, Trap> {
        self.inner.chunk_end(handle, now)
    }

    fn prefetch_hint(&mut self, ptr: u64, now: u64) {
        self.inner.prefetch_hint(ptr, now);
    }

    fn canonical(&self, addr: u64) -> u64 {
        // Raw accesses are legal in hybrid mode: translate managed pointers.
        self.inner.canonical(addr)
    }

    fn access_range(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        now: u64,
        stats: &mut ExecStats,
    ) -> Result<u64, Trap> {
        self.inner.access_range(addr, len, write, now, stats)
    }

    fn evacuate_all(&mut self, now: u64) {
        self.inner.evacuate_all(now);
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn summary(&self) -> MemSummary {
        self.inner.summary()
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        self.inner.set_telemetry(tel);
    }

    fn set_core(&mut self, core: u32) {
        self.inner.set_core(core);
    }

    fn set_async_fetch(&mut self, on: bool) {
        self.inner.set_async_fetch(on);
    }

    fn take_completion_horizon(&mut self) -> u64 {
        self.inner.take_completion_horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_net::LinkParams;

    fn tfm_cfg(budget_objs: u64) -> FarMemoryConfig {
        FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: budget_objs * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        }
    }

    #[test]
    fn guard_paths_charge_per_table1() {
        let cost = CostModel::default();
        let mut m = TrackFmMem::new(tfm_cfg(8), cost);
        let mut st = ExecStats::default();
        let ptr = m.alloc(4096, 0).unwrap();
        assert!(TfmPtr::is_tfm(ptr));

        // Fresh object: fast path read = custody + 21.
        let (c, out) = m.guard(ptr, false, 0, &mut st).unwrap();
        assert_eq!(c, cost.custody_check + cost.guard_fast_read);
        assert_eq!(out, HEAP_BASE + (ptr & tfm_runtime::OFFSET_MASK));
        assert_eq!(st.guards_fast, 1);

        // Fast write.
        let (c, _) = m.guard(ptr, true, 0, &mut st).unwrap();
        assert_eq!(c, cost.custody_check + cost.guard_fast_write);

        // Non-TrackFM pointer: custody check only, pointer unchanged.
        let (c, out) = m.guard(STACK_BASE + 64, false, 0, &mut st).unwrap();
        assert_eq!(c, cost.custody_check);
        assert_eq!(out, STACK_BASE + 64);
        assert_eq!(st.custody_exits, 1);

        // Evacuate, then slow remote path.
        m.evacuate_all(0);
        let (c, _) = m.guard(ptr, false, 0, &mut st).unwrap();
        assert!(c > 30_000, "remote slow path = {c}");
        assert_eq!(st.guards_slow_remote, 1);
    }

    #[test]
    fn unguarded_tfm_access_is_gp_fault() {
        let mut m = TrackFmMem::new(tfm_cfg(8), CostModel::default());
        let mut st = ExecStats::default();
        let ptr = m.alloc(64, 0).unwrap();
        let err = m.data_access(ptr, 8, false, 0, &mut st).unwrap_err();
        assert!(matches!(err, Trap::NonCanonicalAccess { .. }));
        // Canonical addresses are fine.
        assert!(m.data_access(HEAP_BASE, 8, false, 0, &mut st).is_ok());
    }

    #[test]
    fn chunk_stream_boundary_vs_locality() {
        let cost = CostModel::default();
        let mut m = TrackFmMem::new(tfm_cfg(8), cost);
        let mut st = ExecStats::default();
        let ptr = m.alloc(8192, 0).unwrap();
        m.evacuate_all(0);
        m.reset_stats();

        let (_, h) = m.chunk_begin(ptr, CHUNK_FLAG_WRITE, 0);
        // First deref: crossing (None → obj0) = locality guard + fetch.
        let (c1, _) = m.chunk_deref(h, ptr, 0, &mut st).unwrap();
        assert!(c1 >= cost.locality_guard);
        assert_eq!(st.locality_guards, 1);
        // Subsequent derefs within obj0: 3-cycle boundary checks.
        for i in 1..512u64 {
            let (c, _) = m.chunk_deref(h, ptr + i * 8, 1_000_000, &mut st).unwrap();
            assert_eq!(c, cost.boundary_check);
        }
        assert_eq!(st.boundary_checks, 511);
        // Crossing into obj1: locality guard again.
        let (c2, _) = m.chunk_deref(h, ptr + 4096, 2_000_000, &mut st).unwrap();
        assert!(c2 >= cost.locality_guard);
        assert_eq!(st.locality_guards, 2);
        assert!(m.chunk_end(h, 0).is_ok());
        // Closed stream rejects further use.
        assert!(matches!(
            m.chunk_deref(h, ptr, 0, &mut st),
            Err(Trap::BadChunkHandle { .. })
        ));
    }

    #[test]
    fn chunk_crossing_pins_current_object() {
        let mut m = TrackFmMem::new(tfm_cfg(1), CostModel::default());
        let mut st = ExecStats::default();
        let ptr = m.alloc(8192, 0).unwrap();
        m.evacuate_all(0);
        let (_, h) = m.chunk_begin(ptr, 0, 0);
        let (_, _) = m.chunk_deref(h, ptr, 0, &mut st).unwrap();
        let obj0 = m.far_memory().obj_of_offset(ptr & tfm_runtime::OFFSET_MASK);
        assert_eq!(m.far_memory().table().pins(obj0), 1);
        // Budget is 1 object; a guard on another allocation cannot evict the
        // pinned one.
        let other = m.alloc(4096, 0).unwrap();
        let _ = m.guard(other, false, 1_000_000, &mut st).unwrap();
        assert!(m.far_memory().table().is_present(obj0));
        m.chunk_end(h, 0).unwrap();
        assert_eq!(m.far_memory().table().pins(obj0), 0);
    }

    #[test]
    fn stream_prefetch_runs_ahead() {
        let mut m = TrackFmMem::new(tfm_cfg(64), CostModel::default());
        let mut st = ExecStats::default();
        let ptr = m.alloc(64 * 4096, 0).unwrap();
        m.evacuate_all(0);
        m.reset_stats();
        let (_, h) = m.chunk_begin(ptr, CHUNK_FLAG_PREFETCH, 0);
        let _ = m.chunk_deref(h, ptr, 0, &mut st).unwrap();
        let s = m.summary().runtime.unwrap();
        assert!(s.prefetch_issued >= 8, "prefetch depth should be issued");
        // Crossing into the prefetched object much later: a hit, no demand
        // fetch.
        let (_c, _) = m.chunk_deref(h, ptr + 4096, 10_000_000, &mut st).unwrap();
        let s = m.summary().runtime.unwrap();
        assert_eq!(
            s.remote_fetches, 1,
            "only the first object was a demand fetch"
        );
        assert!(s.prefetch_hits >= 1);
    }

    #[test]
    fn aifm_flavor_is_cheaper_on_fast_path() {
        let cost = CostModel::default();
        let mut tfm = TrackFmMem::new(tfm_cfg(8), cost);
        let mut aifm = TrackFmMem::new_aifm(tfm_cfg(8), cost);
        let mut st = ExecStats::default();
        let p1 = tfm.alloc(4096, 0).unwrap();
        let p2 = aifm.alloc(4096, 0).unwrap();
        let (c_tfm, _) = tfm.guard(p1, false, 0, &mut st).unwrap();
        let (c_aifm, _) = aifm.guard(p2, false, 0, &mut st).unwrap();
        assert!(
            c_aifm < c_tfm,
            "AIFM deref {c_aifm} must beat guard {c_tfm}"
        );
    }

    #[test]
    fn access_range_walks_objects() {
        let mut m = TrackFmMem::new(tfm_cfg(16), CostModel::default());
        let mut st = ExecStats::default();
        let ptr = m.alloc(3 * 4096, 0).unwrap();
        m.evacuate_all(0);
        m.reset_stats();
        let c = m.access_range(ptr, 3 * 4096, false, 0, &mut st).unwrap();
        assert!(c > 90_000, "three remote fetches: {c}");
        assert_eq!(m.summary().runtime.unwrap().remote_fetches, 3);
    }

    #[test]
    fn fastswap_mem_routes_heap_through_pager() {
        let mut m = FastswapMem::new(1 << 20, PagerConfig::default());
        let mut st = ExecStats::default();
        let p = m.alloc(8192, 0).unwrap();
        let c = m.data_access(p, 8, true, 0, &mut st).unwrap();
        assert!(c > 0, "first touch faults");
        assert_eq!(m.data_access(p, 8, false, c, &mut st).unwrap(), 0);
        // Stack accesses never fault.
        assert_eq!(m.data_access(STACK_BASE, 8, true, 0, &mut st).unwrap(), 0);
        assert_eq!(m.summary().pager.unwrap().minor_faults, 1);
    }

    #[test]
    fn local_mem_is_free_and_identity() {
        let mut m = LocalMem::new(1 << 20);
        let mut st = ExecStats::default();
        let p = m.alloc(128, 0).unwrap();
        assert!(p >= HEAP_BASE);
        assert_eq!(m.data_access(p, 8, true, 0, &mut st).unwrap(), 0);
        let (c, out) = m.guard(p, true, 0, &mut st).unwrap();
        assert_eq!((c, out), (0, p));
        assert_eq!(m.alloc_size(p), Some(128));
        m.free(p, 0).unwrap();
        assert!(m.summary().transfers.is_none());
    }

    #[test]
    fn stream_handles_are_reused() {
        let mut m = TrackFmMem::new(tfm_cfg(8), CostModel::default());
        let (_, h1) = m.chunk_begin(HEAP_BASE, 0, 0);
        m.chunk_end(h1, 0).unwrap();
        let (_, h2) = m.chunk_begin(HEAP_BASE, 0, 0);
        assert_eq!(h1, h2, "freed handle should be recycled");
    }
}
