//! Deterministic cooperative multi-core scheduling (DESIGN.md §6h).
//!
//! The multi-core machine is **simulated**, not threaded: one shared
//! [`Machine`] executes requests serially, and a [`CoreSet`] tracks N
//! per-core simulated-cycle clocks. For each request, the driver picks the
//! core that frees up earliest (fixed round-robin on ties: lowest id wins),
//! warps the machine's clock to `max(core clock, arrival cycle)`, tags the
//! machine with the core id, runs the request synchronously, and charges
//! the elapsed cycles back to that core. Overlap comes from the far-memory
//! layer's split issue/complete protocol: a core that misses is charged
//! only to the issue point, and the next request — possibly on another
//! core at an earlier simulated time — can join the pending fetch instead
//! of issuing its own.
//!
//! Everything is a pure function of the inputs: no OS threads, no wall
//! clocks, no atomics — the same seed and config produce bit-identical
//! core clocks, stats and traces on every run. With one core the driver
//! degenerates to today's synchronous machine (no async fetch, no core
//! tagging), which the concurrency tests and bench gate pin bitwise.
//!
//! [`Machine`]: crate::Machine

/// Per-core simulated-cycle clocks with deterministic next-core selection.
#[derive(Clone, Debug)]
pub struct CoreSet {
    clocks: Vec<u64>,
}

impl CoreSet {
    /// A set of `n` cores (min 1), all starting at cycle 0.
    pub fn new(n: u32) -> Self {
        CoreSet {
            clocks: vec![0; n.max(1) as usize],
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Always false — a set has at least one core (clippy convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A core's current clock.
    pub fn clock(&self, core: u32) -> u64 {
        self.clocks[core as usize]
    }

    /// The core to dispatch the next request on: earliest clock, lowest id
    /// on ties. Pure function of the clocks — this is what makes the
    /// schedule reproducible.
    pub fn pick(&self) -> u32 {
        let mut best = 0usize;
        for (i, &c) in self.clocks.iter().enumerate().skip(1) {
            if c < self.clocks[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Starts a request on `core` that arrived at `arrival`: returns the
    /// dispatch cycle `max(core clock, arrival)` (a core cannot serve a
    /// request before it arrives, and a request cannot start before its
    /// core frees up).
    pub fn begin(&self, core: u32, arrival: u64) -> u64 {
        self.clocks[core as usize].max(arrival)
    }

    /// Completes a request on `core` at cycle `end`, advancing its clock.
    /// Clocks never move backwards (an `end` before the current clock —
    /// possible when a joined fetch lands early — leaves it unchanged).
    pub fn finish(&mut self, core: u32, end: u64) {
        let c = &mut self.clocks[core as usize];
        *c = (*c).max(end);
    }

    /// The makespan: the latest core clock (the run's wall time in
    /// simulated cycles).
    pub fn makespan(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all core clocks (total busy + idle cycles across cores).
    pub fn total_cycles(&self) -> u64 {
        self.clocks.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_core_and_zeroed_clocks() {
        let s = CoreSet::new(0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.clock(0), 0);
        assert_eq!(s.makespan(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn pick_prefers_earliest_clock_then_lowest_id() {
        let mut s = CoreSet::new(3);
        assert_eq!(s.pick(), 0, "all equal: lowest id");
        s.finish(0, 100);
        assert_eq!(s.pick(), 1);
        s.finish(1, 100);
        assert_eq!(s.pick(), 2);
        s.finish(2, 50);
        assert_eq!(s.pick(), 2, "strictly earliest wins");
        s.finish(2, 100);
        assert_eq!(s.pick(), 0, "ties resolve round-robin-stable to id 0");
    }

    #[test]
    fn begin_respects_both_core_clock_and_arrival() {
        let mut s = CoreSet::new(2);
        s.finish(0, 500);
        assert_eq!(s.begin(0, 100), 500, "core busy past the arrival");
        assert_eq!(s.begin(1, 100), 100, "idle core waits for the arrival");
    }

    #[test]
    fn finish_never_rewinds_a_clock() {
        let mut s = CoreSet::new(1);
        s.finish(0, 300);
        s.finish(0, 200);
        assert_eq!(s.clock(0), 300);
    }

    #[test]
    fn makespan_and_total_track_the_fleet() {
        let mut s = CoreSet::new(4);
        for (core, end) in [(0u32, 40u64), (1, 90), (2, 10), (3, 60)] {
            s.finish(core, end);
        }
        assert_eq!(s.makespan(), 90);
        assert_eq!(s.total_cycles(), 200);
    }

    #[test]
    fn a_schedule_is_a_pure_function_of_its_inputs() {
        let run = || {
            let mut s = CoreSet::new(3);
            let mut order = Vec::new();
            for (i, arrival) in (0..12u64).map(|i| (i, i * 7)) {
                let core = s.pick();
                let start = s.begin(core, arrival);
                s.finish(core, start + 100 + (i % 3) * 40);
                order.push((core, start));
            }
            (order, s.makespan())
        };
        assert_eq!(run(), run(), "bit-identical schedules run to run");
    }
}
