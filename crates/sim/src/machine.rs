//! The register-machine interpreter.
//!
//! Executes [`tfm_ir`] modules against a [`MemorySystem`], charging
//! [`CostModel`] cycles per operation. Data lives in host byte buffers
//! (heap / globals / stack); residency and network costs are delegated to
//! the memory system (see DESIGN.md §2 for why this split preserves the
//! paper's measured quantities).
//!
//! Integer values are stored sign-extended to 64 bits; unsigned operations
//! mask to the operand width first. `f64` values are stored as raw bits.

use crate::bytecode::Program;
use crate::memsys::{MemorySystem, GLOBAL_BASE, HEAP_BASE, STACK_BASE};
use crate::stats::{EngineStats, ExecStats, RunResult};
use crate::trap::Trap;
use std::collections::HashMap;
use std::rc::Rc;
use tfm_analysis::profile::Profile;
use tfm_ir::{
    BinOp, Block, CastOp, CmpOp, FCmpOp, FuncId, Function, InstKind, Intrinsic, Module, Type, Value,
};
use tfm_runtime::TfmPtr;
use tfm_telemetry::{EventKind, SiteKey, SpanKind, Telemetry};
use trackfm::CostModel;

/// Selects the execution engine behind [`Machine::run`].
///
/// Both engines implement identical semantics and cycle accounting — every
/// simulated quantity (results, cycles, stats, traps, telemetry) is
/// bit-identical between them. The bytecode engine only changes *real*
/// wall-clock throughput (see DESIGN.md §6j).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// The original tree-walking interpreter over [`tfm_ir::InstKind`].
    #[default]
    TreeWalk,
    /// The flattened register-bytecode engine (see [`crate::bytecode`]):
    /// the module is lowered once into dense [`crate::bytecode::Program`]
    /// form and executed by a tight dispatch loop.
    Bytecode,
}

/// Downgrades every killable custody bit (see [`shadow`]): the dynamic
/// counterpart of the static analysis clearing its cover map at calls and
/// allocating intrinsics.
pub(crate) fn kill_custody(cov: &mut [u8]) {
    for c in cov.iter_mut() {
        if *c == shadow::CUSTODY {
            *c = shadow::NONE;
        }
    }
}

/// Default simulated stack size (1 MiB).
pub(crate) const STACK_SIZE: usize = 1 << 20;

/// Maps a classified guard outcome to the span kind it should be recorded
/// as, plus whether the span is worth keeping when tracing. Fast-path
/// outcomes (no stall, no runtime excursion) are discarded so the arena
/// holds only spans with interior structure or real latency.
fn span_kind_of(kind: EventKind) -> (SpanKind, bool) {
    match kind {
        EventKind::GuardSlowRemote => (SpanKind::GuardSlowRemote, true),
        EventKind::GuardSlowLocal => (SpanKind::GuardSlowLocal, true),
        EventKind::LocalityGuard => (SpanKind::LocalityGuard, true),
        EventKind::BoundaryCheck => (SpanKind::BoundaryCheck, false),
        EventKind::CustodyExit => (SpanKind::CustodyExit, false),
        _ => (SpanKind::GuardFast, false),
    }
}

#[derive(Default)]
struct ProfileCollector {
    /// Per function: block execution counts.
    blocks: HashMap<u32, Vec<u64>>,
    /// `(func, from, to) → traversals`.
    edges: HashMap<(u32, u32, u32), u64>,
}

/// The interpreter.
pub struct Machine<'m, M: MemorySystem> {
    pub(crate) module: &'m Module,
    /// The memory system (exposed for test assertions).
    pub mem: M,
    pub(crate) cost: CostModel,
    heap: Vec<u8>,
    globals: Vec<u8>,
    pub(crate) global_offsets: Vec<u64>,
    pub(crate) stack: Vec<u8>,
    pub(crate) stack_top: u64,
    pub(crate) clock: u64,
    pub(crate) stats: ExecStats,
    profiler: Option<ProfileCollector>,
    pub(crate) fuel: u64,
    tel: Telemetry,
    pub(crate) sanitize: bool,
    /// Bumped every time a killing operation clobbers custody shadows.
    /// Callers compare epochs around a call: custody survives when the
    /// callee (transitively) executed no kill — the dynamic mirror of the
    /// static custody-transparency summaries, and always a subset of the
    /// static may-kill set.
    pub(crate) kill_epoch: u64,
    /// Argument custody shadows staged by a `Call` for the callee's
    /// parameters (the dynamic mirror of summary entry covers).
    pub(crate) arg_cov: Vec<u8>,
    /// Custody shadow of the value the last `Ret` returned (the dynamic
    /// mirror of summary return covers).
    pub(crate) ret_cov: u8,
    /// Which engine [`Machine::run`] executes on.
    engine: ExecEngine,
    /// Lowering/dispatch counters for the bytecode engine (zero under the
    /// tree-walker, keeping its reports byte-identical).
    pub(crate) engine_stats: EngineStats,
    /// The lowered module, built lazily on the first bytecode run and
    /// reused for every subsequent call (`Rc` so the dispatch loop can hold
    /// it across `&mut self` method calls).
    pub(crate) bc: Option<Rc<Program>>,
    /// Shared register stack for bytecode frames (one zero-filled window
    /// per active call, replacing the tree-walker's per-call `Vec`).
    pub(crate) bc_regs: Vec<u64>,
    /// Shadow custody stack parallel to [`Self::bc_regs`] (sanitizer only).
    pub(crate) bc_cov: Vec<u8>,
    /// Reusable parallel-copy scratch for phi edges.
    pub(crate) bc_scratch: Vec<(u32, u64, u8)>,
}

/// Guard-sanitizer shadow state for one SSA value (see
/// [`Machine::enable_guard_sanitizer`]).
pub(crate) mod shadow {
    /// No custody: dereferencing a heap address through this value traps.
    pub const NONE: u8 = 0;
    /// Guard/chunk-deref custody: valid until the next call or allocating
    /// intrinsic (mirrors the static kill set of
    /// `tfm_analysis::guard_check`).
    pub const CUSTODY: u8 = 1;
    /// Permanently safe: stack slots, globals, pruned local allocations.
    pub const STABLE: u8 = 2;
}

impl<'m, M: MemorySystem> Machine<'m, M> {
    /// Creates a machine with `heap_size` bytes of far-heap backing store.
    /// Globals are laid out and initialized immediately.
    pub fn new(module: &'m Module, mem: M, cost: CostModel, heap_size: u64) -> Self {
        let mut global_offsets = Vec::new();
        let mut gsize = 0u64;
        for (_, g) in module.globals() {
            gsize = gsize.next_multiple_of(16);
            global_offsets.push(gsize);
            gsize += g.size;
        }
        let mut globals = vec![0u8; gsize as usize];
        for ((_, g), &off) in module.globals().zip(&global_offsets) {
            if let Some(init) = &g.init {
                globals[off as usize..off as usize + init.len()].copy_from_slice(init);
            }
        }
        Machine {
            module,
            mem,
            cost,
            heap: vec![0; heap_size as usize],
            globals,
            global_offsets,
            stack: vec![0; STACK_SIZE],
            stack_top: 0,
            clock: 0,
            stats: ExecStats::default(),
            profiler: None,
            fuel: u64::MAX,
            tel: Telemetry::disabled(),
            sanitize: false,
            kill_epoch: 0,
            arg_cov: Vec::new(),
            ret_cov: shadow::NONE,
            engine: ExecEngine::TreeWalk,
            engine_stats: EngineStats::default(),
            bc: None,
            bc_regs: Vec::new(),
            bc_cov: Vec::new(),
            bc_scratch: Vec::new(),
        }
    }

    /// Selects the execution engine for subsequent [`Machine::run`] calls.
    /// Both engines are bit-identical in every simulated quantity; the
    /// bytecode engine is simply faster in real time.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
    }

    /// The engine [`Machine::run`] currently executes on.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Enables the dynamic guard sanitizer: every register carries a shadow
    /// custody state, and any load/store of a heap (or tagged) address
    /// through a value without live custody traps with
    /// [`Trap::UnguardedAccess`]. This is the dynamic mirror of the static
    /// `tfm-lint` pass — a program the lint accepts must run sanitizer-clean
    /// (the sanitizer tracks the dynamically-taken path, so it is never
    /// stricter than the all-paths static analysis).
    pub fn enable_guard_sanitizer(&mut self) {
        self.sanitize = true;
    }

    /// Attaches a telemetry sink: the machine attributes guard and chunk
    /// events to their originating IR site, and forwards the handle to the
    /// memory system for fetch/eviction/residency events.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.mem.set_telemetry(tel.clone());
        self.tel = tel;
    }

    /// Limits the number of interpreted instructions (runaway protection in
    /// tests).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Enables profile collection (block & edge counts).
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(ProfileCollector::default());
    }

    /// Extracts the collected profile in [`tfm_analysis`] form.
    pub fn take_profile(&mut self) -> Profile {
        let mut p = Profile::new();
        if let Some(col) = self.profiler.take() {
            for (fidx, counts) in col.blocks {
                let name = &self.module.function(FuncId(fidx)).name;
                for (b, &n) in counts.iter().enumerate() {
                    if n > 0 {
                        p.block_counts
                            .insert((name.clone(), Block::from_index(b)), n);
                    }
                }
            }
            for ((fidx, from, to), n) in col.edges {
                let name = &self.module.function(FuncId(fidx)).name;
                p.edge_counts
                    .insert((name.clone(), Block(from), Block(to)), n);
            }
        }
        p
    }

    /// Current simulated cycle.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Sets the simulated clock. The multi-core scheduler uses this to run
    /// one request at each core's local time: it warps the shared machine
    /// to `max(core clock, arrival cycle)` before dispatching. Plain
    /// single-machine runs never call it.
    pub fn set_clock(&mut self, clock: u64) {
        self.clock = clock;
    }

    /// Tags subsequent execution with a worker core id: telemetry stamps it
    /// onto spans and timeline lanes, and the memory system threads it into
    /// per-core retry jitter. Single-core runs never call it, keeping their
    /// output byte-identical.
    pub fn set_core(&mut self, core: u32) {
        self.tel.set_core(core);
        self.mem.set_core(core);
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    // ------------------------------------------------------------------
    // Setup-phase API (used by benchmark harnesses; charges no CPU cycles).
    // ------------------------------------------------------------------

    /// Allocates memory during setup.
    ///
    /// # Panics
    /// Panics on allocation failure (setup sizing is the harness's job).
    pub fn setup_alloc(&mut self, size: u64) -> u64 {
        self.mem
            .alloc(size, self.clock)
            .expect("setup allocation failed — heap too small for workload")
    }

    /// Writes raw bytes during setup, updating residency bookkeeping
    /// (objects/pages become dirty) without charging CPU cycles.
    ///
    /// # Panics
    /// Panics on out-of-range addresses.
    pub fn setup_write(&mut self, ptr: u64, bytes: &[u8]) {
        let mut scratch = ExecStats::default();
        self.mem
            .access_range(ptr, bytes.len() as u64, true, self.clock, &mut scratch)
            .expect("setup write out of range");
        let addr = self.mem.canonical(ptr);
        let dst = self
            .resolve(addr, bytes.len() as u64)
            .expect("setup write out of range");
        dst[..bytes.len()].copy_from_slice(bytes);
    }

    /// Writes a slice of `u64`s during setup.
    pub fn setup_write_u64s(&mut self, ptr: u64, vals: &[u64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.setup_write(ptr, &bytes);
    }

    /// Writes a slice of `f64`s during setup.
    pub fn setup_write_f64s(&mut self, ptr: u64, vals: &[f64]) {
        let mut bytes = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.setup_write(ptr, &bytes);
    }

    /// Writes a slice of `u32`s during setup.
    pub fn setup_write_u32s(&mut self, ptr: u64, vals: &[u32]) {
        let mut bytes = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.setup_write(ptr, &bytes);
    }

    /// Ends the setup phase: optionally evacuates everything (cold start),
    /// then clears all counters and rewinds the clock.
    pub fn finish_setup(&mut self, cold_start: bool) {
        if cold_start {
            self.mem.evacuate_all(self.clock);
        }
        self.mem.reset_stats();
        self.clock = 0;
        self.stats = ExecStats::default();
    }

    /// Reads a `u64` from memory without charging cycles (checksums).
    ///
    /// # Panics
    /// Panics on out-of-range addresses.
    pub fn peek_u64(&mut self, ptr: u64) -> u64 {
        let addr = self.mem.canonical(ptr);
        let b = self.resolve(addr, 8).expect("peek out of range");
        u64::from_le_bytes(b[..8].try_into().unwrap())
    }

    /// Reads an `f64` from memory without charging cycles.
    ///
    /// # Panics
    /// Panics on out-of-range addresses.
    pub fn peek_f64(&mut self, ptr: u64) -> f64 {
        f64::from_bits(self.peek_u64(ptr))
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Runs `func` with `args` (raw 64-bit values) to completion.
    ///
    /// # Errors
    /// Returns the [`Trap`] that aborted execution, if any.
    ///
    /// # Panics
    /// Panics if the function does not exist.
    pub fn run(&mut self, func: &str, args: &[u64]) -> Result<RunResult, Trap> {
        let fid = self
            .module
            .find_function(func)
            .unwrap_or_else(|| panic!("no function named `{func}`"));
        let ret = match self.engine {
            ExecEngine::TreeWalk => self.exec_function(fid, args)?,
            ExecEngine::Bytecode => self.run_bytecode(fid, args)?,
        };
        let mut stats = self.stats;
        stats.cycles = self.clock;
        let summary = self.mem.summary();
        Ok(RunResult {
            ret,
            stats,
            engine: self.engine_stats,
            runtime: summary.runtime,
            pager: summary.pager,
            transfers: summary.transfers,
            shards: summary.shards,
        })
    }

    fn exec_function(&mut self, fid: FuncId, args: &[u64]) -> Result<u64, Trap> {
        let module = self.module;
        let f = module.function(fid);
        assert_eq!(
            args.len(),
            f.sig.params.len(),
            "argument count mismatch calling `{}`",
            f.name
        );
        let mut regs = vec![0u64; f.num_insts()];
        regs[..args.len()].copy_from_slice(args);
        // Shadow custody state per register. Parameters inherit the shadows
        // their arguments held at the call site (staged by the `Call` arm),
        // mirroring the interprocedural entry covers; the harness-level
        // entry call stages nothing, so roots start uncovered.
        let mut cov = vec![shadow::NONE; if self.sanitize { f.num_insts() } else { 0 }];
        if self.sanitize {
            let staged = std::mem::take(&mut self.arg_cov);
            let n = staged.len().min(args.len());
            cov[..n].copy_from_slice(&staged[..n]);
        }
        let saved_stack = self.stack_top;
        let mut block = f.entry_block();
        self.profile_block(fid, block, f.num_blocks());
        'blocks: loop {
            let insts = f.block_insts(block);
            for &v in insts {
                self.stats.instructions += 1;
                if self.stats.instructions > self.fuel {
                    return Err(Trap::FuelExhausted);
                }
                match f.kind(v) {
                    InstKind::Nop | InstKind::Param(_) | InstKind::Phi(_) => {}
                    InstKind::ConstInt(c) => regs[v.index()] = *c as u64,
                    InstKind::ConstFloat(c) => regs[v.index()] = c.to_bits(),
                    InstKind::Binary(op, a, b) => {
                        self.clock += self.cost.alu;
                        let ty = f.ty(v).unwrap_or(Type::I64);
                        regs[v.index()] = exec_binop(*op, regs[a.index()], regs[b.index()], ty)?;
                        if self.sanitize {
                            cov[v.index()] = cov[a.index()].max(cov[b.index()]);
                        }
                    }
                    InstKind::Icmp(op, a, b) => {
                        self.clock += self.cost.alu;
                        let ty = f.ty(*a).unwrap_or(Type::I64);
                        regs[v.index()] =
                            exec_icmp(*op, regs[a.index()], regs[b.index()], ty) as u64;
                    }
                    InstKind::Fcmp(op, a, b) => {
                        self.clock += self.cost.alu;
                        let (x, y) = (
                            f64::from_bits(regs[a.index()]),
                            f64::from_bits(regs[b.index()]),
                        );
                        regs[v.index()] = exec_fcmp(*op, x, y) as u64;
                    }
                    InstKind::Cast(op, a) => {
                        self.clock += self.cost.alu;
                        let from_ty = f.ty(*a).unwrap_or(Type::I64);
                        let to_ty = f.ty(v).unwrap_or(Type::I64);
                        regs[v.index()] = exec_cast(*op, regs[a.index()], from_ty, to_ty);
                        if self.sanitize {
                            cov[v.index()] = cov[a.index()];
                        }
                    }
                    InstKind::Alloca { size, align } => {
                        let top = self.stack_top.next_multiple_of((*align).max(1) as u64);
                        if top + *size as u64 > self.stack.len() as u64 {
                            return Err(Trap::StackOverflow);
                        }
                        regs[v.index()] = STACK_BASE + top;
                        self.stack_top = top + *size as u64;
                        if self.sanitize {
                            cov[v.index()] = shadow::STABLE;
                        }
                    }
                    InstKind::Load { ptr } => {
                        let addr = regs[ptr.index()];
                        let ty = f.ty(v).unwrap_or(Type::I64);
                        let size = ty.size() as u64;
                        if self.sanitize
                            && cov[ptr.index()] == shadow::NONE
                            && self.is_sanitized_addr(addr)
                        {
                            return Err(Trap::UnguardedAccess {
                                addr,
                                func: fid.0,
                                block: block.0,
                                inst: v.0,
                            });
                        }
                        self.stats.loads += 1;
                        let extra =
                            self.mem
                                .data_access(addr, size, false, self.clock, &mut self.stats)?;
                        self.clock += self.cost.load_store + extra;
                        let addr = self.mem.canonical(addr);
                        regs[v.index()] = self.read_mem(addr, ty)?;
                    }
                    InstKind::Store { ptr, val } => {
                        let addr = regs[ptr.index()];
                        let ty = f.ty(*val).unwrap_or(Type::I64);
                        let size = ty.size() as u64;
                        if self.sanitize
                            && cov[ptr.index()] == shadow::NONE
                            && self.is_sanitized_addr(addr)
                        {
                            return Err(Trap::UnguardedAccess {
                                addr,
                                func: fid.0,
                                block: block.0,
                                inst: v.0,
                            });
                        }
                        self.stats.stores += 1;
                        let extra =
                            self.mem
                                .data_access(addr, size, true, self.clock, &mut self.stats)?;
                        self.clock += self.cost.load_store + extra;
                        let addr = self.mem.canonical(addr);
                        self.write_mem(addr, regs[val.index()], ty)?;
                    }
                    InstKind::Gep {
                        base,
                        index,
                        scale,
                        disp,
                    } => {
                        self.clock += self.cost.alu;
                        regs[v.index()] = regs[base.index()]
                            .wrapping_add(
                                (regs[index.index()] as i64).wrapping_mul(*scale as i64) as u64
                            )
                            .wrapping_add(*disp as u64);
                        if self.sanitize {
                            cov[v.index()] = cov[base.index()];
                        }
                    }
                    InstKind::Call { func, args } => {
                        self.clock += self.cost.call_overhead;
                        let vals: Vec<u64> = args.iter().map(|a| regs[a.index()]).collect();
                        if self.sanitize {
                            self.arg_cov = args.iter().map(|a| cov[a.index()]).collect();
                        }
                        let epoch = self.kill_epoch;
                        regs[v.index()] = self.exec_function(*func, &vals)?;
                        if self.sanitize {
                            // Custody lapses only when the callee actually
                            // executed a killing operation — the dynamic
                            // mirror of custody-transparency summaries.
                            if self.kill_epoch != epoch {
                                kill_custody(&mut cov);
                            }
                            cov[v.index()] = std::mem::replace(&mut self.ret_cov, shadow::NONE);
                        }
                    }
                    InstKind::IntrinsicCall { intr, args } => {
                        let vals: Vec<u64> = args.iter().map(|a| regs[a.index()]).collect();
                        let site = SiteKey::new(fid.0, v.index() as u32);
                        regs[v.index()] = self.exec_intrinsic(*intr, &vals, site)?;
                        if self.sanitize {
                            match intr {
                                Intrinsic::GuardRead | Intrinsic::GuardWrite => {
                                    cov[v.index()] = shadow::CUSTODY;
                                    // The guarded pointer itself is covered
                                    // too (static `apply` inserts both).
                                    if let Some(a) = args.first() {
                                        if cov[a.index()] == shadow::NONE {
                                            cov[a.index()] = shadow::CUSTODY;
                                        }
                                    }
                                }
                                Intrinsic::ChunkDeref => {
                                    cov[v.index()] = shadow::CUSTODY;
                                    if let Some(a) = args.get(1) {
                                        if cov[a.index()] == shadow::NONE {
                                            cov[a.index()] = shadow::CUSTODY;
                                        }
                                    }
                                }
                                Intrinsic::Malloc | Intrinsic::Calloc => {
                                    kill_custody(&mut cov);
                                    self.kill_epoch += 1;
                                    // Pruned local allocation: always local,
                                    // never needs a guard.
                                    cov[v.index()] = shadow::STABLE;
                                }
                                _ => {
                                    kill_custody(&mut cov);
                                    self.kill_epoch += 1;
                                }
                            }
                        }
                    }
                    InstKind::GlobalAddr(g) => {
                        regs[v.index()] = GLOBAL_BASE + self.global_offsets[g.index()];
                        if self.sanitize {
                            cov[v.index()] = shadow::STABLE;
                        }
                    }
                    InstKind::Select { cond, tval, fval } => {
                        self.clock += self.cost.alu;
                        let taken = if regs[cond.index()] != 0 { tval } else { fval };
                        regs[v.index()] = regs[taken.index()];
                        if self.sanitize {
                            cov[v.index()] = cov[taken.index()];
                        }
                    }
                    InstKind::Br(target) => {
                        self.clock += self.cost.branch;
                        let target = *target;
                        self.take_edge(f, fid, block, target, &mut regs, &mut cov);
                        block = target;
                        continue 'blocks;
                    }
                    InstKind::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        self.clock += self.cost.branch;
                        let target = if regs[cond.index()] != 0 {
                            *then_bb
                        } else {
                            *else_bb
                        };
                        self.take_edge(f, fid, block, target, &mut regs, &mut cov);
                        block = target;
                        continue 'blocks;
                    }
                    InstKind::Ret(val) => {
                        self.clock += self.cost.branch;
                        self.stack_top = saved_stack;
                        if self.sanitize {
                            self.ret_cov = val.map(|v| cov[v.index()]).unwrap_or(shadow::NONE);
                        }
                        return Ok(val.map(|v| regs[v.index()]).unwrap_or(0));
                    }
                    InstKind::Unreachable => return Err(Trap::Unreachable),
                }
            }
            unreachable!("block fell through without a terminator (verifier bug)");
        }
    }

    /// Evaluates the target block's phis against the edge being taken, then
    /// records profiling.
    fn take_edge(
        &mut self,
        f: &Function,
        fid: FuncId,
        from: Block,
        to: Block,
        regs: &mut [u64],
        cov: &mut [u8],
    ) {
        // Phis evaluate in parallel: read all incoming values first.
        let insts = f.block_insts(to);
        let mut updates: Vec<(Value, u64, u8)> = Vec::new();
        for &v in insts {
            match f.kind(v) {
                InstKind::Phi(incs) => {
                    if let Some((_, iv)) = incs.iter().find(|(p, _)| *p == from) {
                        let c = if self.sanitize { cov[iv.index()] } else { 0 };
                        updates.push((v, regs[iv.index()], c));
                    }
                }
                InstKind::Param(_) => continue,
                _ => break,
            }
        }
        for (v, val, c) in updates {
            regs[v.index()] = val;
            if self.sanitize {
                cov[v.index()] = c;
            }
        }
        self.note_edge(fid, from.0, to.0);
        self.profile_block(fid, to, f.num_blocks());
    }

    /// True if the sanitizer polices accesses to `addr`: tagged TrackFM
    /// pointers (always) and canonical heap addresses (whose custody the
    /// shadow state must vouch for). Stack and global addresses are exempt.
    #[inline]
    pub(crate) fn is_sanitized_addr(&self, addr: u64) -> bool {
        TfmPtr::is_tfm(addr) || (addr >= HEAP_BASE && addr < HEAP_BASE + self.heap.len() as u64)
    }

    /// Records one edge traversal when profiling is on (both engines).
    #[inline]
    pub(crate) fn note_edge(&mut self, fid: FuncId, from: u32, to: u32) {
        if let Some(col) = &mut self.profiler {
            *col.edges.entry((fid.0, from, to)).or_insert(0) += 1;
        }
    }

    #[inline]
    pub(crate) fn profile_block(&mut self, fid: FuncId, b: Block, num_blocks: usize) {
        if let Some(col) = &mut self.profiler {
            let counts = col
                .blocks
                .entry(fid.0)
                .or_insert_with(|| vec![0; num_blocks]);
            if counts.len() < num_blocks {
                counts.resize(num_blocks, 0);
            }
            counts[b.index()] += 1;
        }
    }

    /// Classifies a guard/chunk outcome from the stat deltas around the
    /// memory-system call, emits the matching event tagged with the site
    /// key, and folds the cost into the per-site attribution table.
    fn note_guard_site(
        &mut self,
        site: SiteKey,
        now: u64,
        cycles: u64,
        before: &ExecStats,
    ) -> EventKind {
        let s = self.stats;
        let stall = s.stall_cycles - before.stall_cycles;
        let d_fast = s.guards_fast - before.guards_fast;
        let d_local = s.guards_slow_local - before.guards_slow_local;
        let d_remote = s.guards_slow_remote - before.guards_slow_remote;
        let d_custody = s.custody_exits - before.custody_exits;
        let d_boundary = s.boundary_checks - before.boundary_checks;
        let d_locality = s.locality_guards - before.locality_guards;
        let kind = if d_remote > 0 {
            EventKind::GuardSlowRemote
        } else if d_local > 0 {
            EventKind::GuardSlowLocal
        } else if d_locality > 0 {
            EventKind::LocalityGuard
        } else if d_boundary > 0 {
            EventKind::BoundaryCheck
        } else if d_custody > 0 {
            EventKind::CustodyExit
        } else {
            // Includes transparent guards (LocalMem, Fastswap): the site
            // was hit, nothing stalled.
            EventKind::GuardFast
        };
        self.tel.emit(now, kind, site.0);
        self.tel.timeline_access(now, d_remote > 0);
        self.tel.record_stall(stall);
        self.tel.record_site(site, |ss| {
            ss.hits += 1;
            // Chunk derefs fold into the same fast/slow split: boundary
            // checks are the cheap path, locality guards the runtime call.
            ss.fast += d_fast + d_boundary;
            ss.slow_remote += d_remote + if stall > 0 { d_locality } else { 0 };
            ss.slow_local += d_local + if stall > 0 { 0 } else { d_locality };
            ss.custody_exits += d_custody;
            ss.cycles += cycles;
            ss.stall_cycles += stall;
        });
        kind
    }

    pub(crate) fn exec_intrinsic(
        &mut self,
        intr: Intrinsic,
        args: &[u64],
        site: SiteKey,
    ) -> Result<u64, Trap> {
        match intr {
            Intrinsic::Malloc | Intrinsic::TfmAlloc => {
                self.clock += self.cost.alloc_cycles;
                // Plain `malloc` surviving the libc transform is a pruned,
                // always-local allocation (§5); `tfm.alloc` is remotable.
                if intr == Intrinsic::Malloc {
                    self.mem.alloc_local(args[0], self.clock)
                } else {
                    self.mem.alloc(args[0], self.clock)
                }
            }
            Intrinsic::Calloc | Intrinsic::TfmCalloc => {
                self.clock += self.cost.alloc_cycles;
                let bytes = args[0].saturating_mul(args[1]);
                let ptr = if intr == Intrinsic::Calloc {
                    self.mem.alloc_local(bytes, self.clock)?
                } else {
                    self.mem.alloc(bytes, self.clock)?
                };
                self.clock += bytes / self.cost.memcpy_bytes_per_cycle.max(1);
                let addr = self.mem.canonical(ptr);
                let dst = self.resolve(addr, bytes)?;
                dst[..bytes as usize].fill(0);
                Ok(ptr)
            }
            Intrinsic::Realloc | Intrinsic::TfmRealloc => {
                self.clock += self.cost.alloc_cycles;
                let (old, new_size) = (args[0], args[1]);
                let old_size = self
                    .mem
                    .alloc_size(old)
                    .ok_or(Trap::OutOfBounds { addr: old, size: 0 })?;
                let new = self.mem.alloc(new_size, self.clock)?;
                let n = old_size.min(new_size);
                self.copy_bytes(new, old, n)?;
                self.mem.free(old, self.clock)?;
                Ok(new)
            }
            Intrinsic::Free | Intrinsic::TfmFree => {
                self.clock += self.cost.alloc_cycles;
                self.mem.free(args[0], self.clock)?;
                Ok(0)
            }
            Intrinsic::RuntimeInit => {
                self.clock += self.cost.runtime_init_cycles;
                Ok(0)
            }
            Intrinsic::GuardRead | Intrinsic::GuardWrite => {
                let write = intr == Intrinsic::GuardWrite;
                if self.tel.is_enabled() {
                    let before = self.stats;
                    let now = self.clock;
                    // Provisional: reclassified by outcome once the stat
                    // deltas are known. Opened before the memory-system call
                    // so transfer/retry leaves nest under the guard.
                    let sp = self.tel.span_begin(SpanKind::GuardSlowRemote, site.0, now);
                    let (c, out) = self.mem.guard(args[0], write, now, &mut self.stats)?;
                    self.clock += c;
                    let kind = self.note_guard_site(site, now, c, &before);
                    let (sk, keep) = span_kind_of(kind);
                    self.tel.span_finish(sp, now + c, sk, keep);
                    Ok(out)
                } else {
                    let (c, out) = self
                        .mem
                        .guard(args[0], write, self.clock, &mut self.stats)?;
                    self.clock += c;
                    Ok(out)
                }
            }
            Intrinsic::ChunkBegin => {
                let (c, h) = self.mem.chunk_begin(args[0], args[1] as i64, self.clock);
                self.clock += c;
                Ok(h)
            }
            Intrinsic::ChunkDeref => {
                if self.tel.is_enabled() {
                    let before = self.stats;
                    let now = self.clock;
                    // Provisional kind, as for guards above.
                    let sp = self.tel.span_begin(SpanKind::GuardSlowRemote, site.0, now);
                    let (c, out) = self
                        .mem
                        .chunk_deref(args[0], args[1], now, &mut self.stats)?;
                    self.clock += c;
                    let kind = self.note_guard_site(site, now, c, &before);
                    let (sk, keep) = span_kind_of(kind);
                    self.tel.span_finish(sp, now + c, sk, keep);
                    Ok(out)
                } else {
                    let (c, out) =
                        self.mem
                            .chunk_deref(args[0], args[1], self.clock, &mut self.stats)?;
                    self.clock += c;
                    Ok(out)
                }
            }
            Intrinsic::ChunkEnd => {
                let c = self.mem.chunk_end(args[0], self.clock)?;
                self.clock += c;
                Ok(0)
            }
            Intrinsic::Prefetch => {
                self.clock += self.cost.alu;
                self.mem.prefetch_hint(args[0], self.clock);
                Ok(0)
            }
            Intrinsic::Memcpy => {
                let (dst, src, n) = (args[0], args[1], args[2]);
                self.copy_bytes(dst, src, n)?;
                Ok(0)
            }
            Intrinsic::Memset => {
                let (dst, byte, n) = (args[0], args[1], args[2]);
                let extra = self
                    .mem
                    .access_range(dst, n, true, self.clock, &mut self.stats)?;
                self.clock += extra + n / self.cost.memcpy_bytes_per_cycle.max(1);
                let addr = self.mem.canonical(dst);
                let d = self.resolve(addr, n)?;
                d[..n as usize].fill(byte as u8);
                Ok(0)
            }
        }
    }

    fn copy_bytes(&mut self, dst: u64, src: u64, n: u64) -> Result<(), Trap> {
        if n == 0 {
            return Ok(());
        }
        let e1 = self
            .mem
            .access_range(src, n, false, self.clock, &mut self.stats)?;
        let e2 = self
            .mem
            .access_range(dst, n, true, self.clock + e1, &mut self.stats)?;
        self.clock += e1 + e2 + n / self.cost.memcpy_bytes_per_cycle.max(1);
        let saddr = self.mem.canonical(src);
        let daddr = self.mem.canonical(dst);
        let tmp = self.resolve(saddr, n)?[..n as usize].to_vec();
        self.resolve(daddr, n)?[..n as usize].copy_from_slice(&tmp);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Raw byte access.
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn resolve(&mut self, addr: u64, size: u64) -> Result<&mut [u8], Trap> {
        let end = addr.wrapping_add(size);
        if addr >= HEAP_BASE && end <= HEAP_BASE + self.heap.len() as u64 {
            let off = (addr - HEAP_BASE) as usize;
            Ok(&mut self.heap[off..])
        } else if addr >= GLOBAL_BASE && end <= GLOBAL_BASE + self.globals.len() as u64 {
            let off = (addr - GLOBAL_BASE) as usize;
            Ok(&mut self.globals[off..])
        } else if addr >= STACK_BASE && end <= STACK_BASE + self.stack.len() as u64 {
            let off = (addr - STACK_BASE) as usize;
            Ok(&mut self.stack[off..])
        } else {
            Err(Trap::OutOfBounds { addr, size })
        }
    }

    #[inline]
    pub(crate) fn read_mem(&mut self, addr: u64, ty: Type) -> Result<u64, Trap> {
        let size = ty.size() as usize;
        let b = self.resolve(addr, size as u64)?;
        Ok(match ty {
            Type::I8 => b[0] as i8 as i64 as u64,
            Type::I16 => i16::from_le_bytes(b[..2].try_into().unwrap()) as i64 as u64,
            Type::I32 => i32::from_le_bytes(b[..4].try_into().unwrap()) as i64 as u64,
            Type::I64 | Type::F64 | Type::Ptr => u64::from_le_bytes(b[..8].try_into().unwrap()),
        })
    }

    #[inline]
    pub(crate) fn write_mem(&mut self, addr: u64, val: u64, ty: Type) -> Result<(), Trap> {
        let size = ty.size() as usize;
        let b = self.resolve(addr, size as u64)?;
        match ty {
            Type::I8 => b[0] = val as u8,
            Type::I16 => b[..2].copy_from_slice(&(val as u16).to_le_bytes()),
            Type::I32 => b[..4].copy_from_slice(&(val as u32).to_le_bytes()),
            Type::I64 | Type::F64 | Type::Ptr => b[..8].copy_from_slice(&val.to_le_bytes()),
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Scalar operation semantics.
// ----------------------------------------------------------------------

#[inline]
fn mask_unsigned(v: u64, ty: Type) -> u64 {
    match ty {
        Type::I8 => v & 0xFF,
        Type::I16 => v & 0xFFFF,
        Type::I32 => v & 0xFFFF_FFFF,
        _ => v,
    }
}

#[inline]
fn sext(v: u64, ty: Type) -> u64 {
    match ty {
        Type::I8 => v as u8 as i8 as i64 as u64,
        Type::I16 => v as u16 as i16 as i64 as u64,
        Type::I32 => v as u32 as i32 as i64 as u64,
        _ => v,
    }
}

#[inline(always)]
pub(crate) fn exec_binop(op: BinOp, a: u64, b: u64, ty: Type) -> Result<u64, Trap> {
    if op.is_float() {
        let (x, y) = (f64::from_bits(a), f64::from_bits(b));
        let r = match op {
            BinOp::Fadd => x + y,
            BinOp::Fsub => x - y,
            BinOp::Fmul => x * y,
            BinOp::Fdiv => x / y,
            _ => unreachable!(),
        };
        return Ok(r.to_bits());
    }
    let (sa, sb) = (a as i64, b as i64);
    let (ua, ub) = (mask_unsigned(a, ty), mask_unsigned(b, ty));
    let r = match op {
        BinOp::Add => sa.wrapping_add(sb) as u64,
        BinOp::Sub => sa.wrapping_sub(sb) as u64,
        BinOp::Mul => sa.wrapping_mul(sb) as u64,
        BinOp::Sdiv => {
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_div(sb) as u64
        }
        BinOp::Udiv => {
            if ub == 0 {
                return Err(Trap::DivByZero);
            }
            ua / ub
        }
        BinOp::Srem => {
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_rem(sb) as u64
        }
        BinOp::Urem => {
            if ub == 0 {
                return Err(Trap::DivByZero);
            }
            ua % ub
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => (sa.wrapping_shl(b as u32 & 63)) as u64,
        BinOp::Lshr => ua.wrapping_shr(b as u32 & 63),
        BinOp::Ashr => (sa >> (b as u32 & 63).min(63)) as u64,
        _ => unreachable!(),
    };
    Ok(sext(r, ty))
}

#[inline(always)]
pub(crate) fn exec_icmp(op: CmpOp, a: u64, b: u64, ty: Type) -> bool {
    let (sa, sb) = (a as i64, b as i64);
    let (ua, ub) = (mask_unsigned(a, ty), mask_unsigned(b, ty));
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Slt => sa < sb,
        CmpOp::Sle => sa <= sb,
        CmpOp::Sgt => sa > sb,
        CmpOp::Sge => sa >= sb,
        CmpOp::Ult => ua < ub,
        CmpOp::Ule => ua <= ub,
        CmpOp::Ugt => ua > ub,
        CmpOp::Uge => ua >= ub,
    }
}

#[inline(always)]
pub(crate) fn exec_fcmp(op: FCmpOp, x: f64, y: f64) -> bool {
    match op {
        FCmpOp::Oeq => x == y,
        FCmpOp::One => x != y && !x.is_nan() && !y.is_nan(),
        FCmpOp::Olt => x < y,
        FCmpOp::Ole => x <= y,
        FCmpOp::Ogt => x > y,
        FCmpOp::Oge => x >= y,
    }
}

#[inline(always)]
pub(crate) fn exec_cast(op: CastOp, v: u64, from: Type, to: Type) -> u64 {
    match op {
        CastOp::Zext => mask_unsigned(v, from),
        CastOp::Sext => sext(v, from),
        CastOp::Trunc => sext(v, to),
        CastOp::IntToPtr | CastOp::PtrToInt | CastOp::Bitcast => v,
        CastOp::SiToFp => ((v as i64) as f64).to_bits(),
        CastOp::FpToSi => {
            let f = f64::from_bits(v);
            if f.is_nan() {
                0
            } else {
                sext((f as i64) as u64, to)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memsys::LocalMem;
    use tfm_ir::{FunctionBuilder, Module, Signature};

    fn machine(m: &Module) -> Machine<'_, LocalMem> {
        Machine::new(m, LocalMem::new(1 << 20), CostModel::default(), 1 << 20)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::I64, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let s = b.binop(BinOp::Mul, b.param(0), b.param(1));
            let c = b.iconst(Type::I64, 5);
            let r = b.binop(BinOp::Add, s, c);
            b.ret(Some(r));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        let r = mach.run("f", &[6, 7]).unwrap();
        assert_eq!(r.ret, 47);
        assert!(r.stats.cycles > 0);
        assert!(r.stats.instructions >= 4);
    }

    #[test]
    fn loop_sums_memory() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "sum",
            Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let arr = b.param(0);
            let n = b.param(1);
            let zero = b.iconst(Type::I64, 0);
            let pre = b.current_block();
            let header = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            b.br(header);
            b.switch_to_block(header);
            let i = b.phi(Type::I64, &[(pre, zero)]);
            let acc = b.phi(Type::I64, &[(pre, zero)]);
            let c = b.icmp(CmpOp::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let addr = b.gep(arr, i, 8, 0);
            let x = b.load(Type::I64, addr);
            let acc2 = b.binop(BinOp::Add, acc, x);
            let one = b.iconst(Type::I64, 1);
            let i2 = b.binop(BinOp::Add, i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(header);
            b.switch_to_block(exit);
            b.ret(Some(acc));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        let ptr = mach.setup_alloc(80);
        mach.setup_write_u64s(ptr, &(1..=10).collect::<Vec<u64>>());
        mach.finish_setup(false);
        let r = mach.run("sum", &[ptr, 10]).unwrap();
        assert_eq!(r.ret, 55);
        assert_eq!(r.stats.loads, 10);
    }

    #[test]
    fn float_kernel() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::F64], Some(Type::F64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let x = b.param(0);
            let half = b.fconst(0.5);
            let y = b.binop(BinOp::Fmul, x, half);
            let z = b.binop(BinOp::Fadd, y, half);
            b.ret(Some(z));
        }
        let mut mach = machine(&m);
        let r = mach.run("f", &[3.0f64.to_bits()]).unwrap();
        assert_eq!(f64::from_bits(r.ret), 2.0);
    }

    #[test]
    fn narrow_integer_semantics() {
        // i8 arithmetic wraps; unsigned compare masks.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let a = b.iconst(Type::I8, -1); // 0xFF
            let c = b.iconst(Type::I8, 1);
            let ult = b.icmp(CmpOp::Ult, c, a); // 1 <u 255 → 1
            b.ret(Some(ult));
        }
        let mut mach = machine(&m);
        assert_eq!(mach.run("f", &[]).unwrap().ret, 1);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let x = b.param(0);
            let z = b.iconst(Type::I64, 0);
            let d = b.binop(BinOp::Sdiv, x, z);
            b.ret(Some(d));
        }
        let mut mach = machine(&m);
        assert_eq!(mach.run("f", &[5]).unwrap_err(), Trap::DivByZero);
    }

    #[test]
    fn calls_and_stack_discipline() {
        let mut m = Module::new("t");
        let callee = m.declare_function("sq", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(callee));
            let slot = b.alloca(8, 8);
            let x = b.param(0);
            b.store(slot, x);
            let y = b.load(Type::I64, slot);
            let r = b.binop(BinOp::Mul, y, y);
            b.ret(Some(r));
        }
        let caller = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(caller));
            let zero = b.iconst(Type::I64, 0);
            let n = b.iconst(Type::I64, 100);
            b.counted_loop(zero, n, 1, |b, i| {
                let _ = b.call(callee, vec![i], Some(Type::I64));
            });
            let four = b.iconst(Type::I64, 4);
            let r = b.call(callee, vec![four], Some(Type::I64));
            b.ret(Some(r));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        let r = mach.run("f", &[]).unwrap();
        assert_eq!(r.ret, 16);
    }

    #[test]
    fn globals_are_initialized_and_writable() {
        let mut m = Module::new("t");
        let g = m.add_global("counter", 16, Some(vec![7, 0, 0, 0, 0, 0, 0, 0]));
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let addr = b.global_addr(g);
            let x = b.load(Type::I64, addr);
            let one = b.iconst(Type::I64, 1);
            let y = b.binop(BinOp::Add, x, one);
            b.store(addr, y);
            let z = b.load(Type::I64, addr);
            b.ret(Some(z));
        }
        let mut mach = machine(&m);
        assert_eq!(mach.run("f", &[]).unwrap().ret, 8);
    }

    #[test]
    fn fuel_limit_catches_infinite_loops() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], None));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let spin = b.create_block();
            b.br(spin);
            b.switch_to_block(spin);
            b.br(spin);
        }
        let mut mach = machine(&m);
        mach.set_fuel(10_000);
        assert_eq!(mach.run("f", &[]).unwrap_err(), Trap::FuelExhausted);
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let x = b.load(Type::I64, p);
            b.ret(Some(x));
        }
        let mut mach = machine(&m);
        let err = mach.run("f", &[0xdead]).unwrap_err();
        assert!(matches!(err, Trap::OutOfBounds { .. }));
    }

    #[test]
    fn memcpy_and_memset_move_data() {
        let mut m = Module::new("t");
        let id = m.declare_function(
            "f",
            Signature::new(vec![Type::Ptr, Type::Ptr], Some(Type::I64)),
        );
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let dst = b.param(0);
            let src = b.param(1);
            let n = b.iconst(Type::I64, 64);
            b.intrinsic(Intrinsic::Memcpy, vec![dst, src, n]);
            let x = b.load(Type::I64, dst);
            b.ret(Some(x));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        let a = mach.setup_alloc(64);
        let bptr = mach.setup_alloc(64);
        mach.setup_write_u64s(bptr, &[0x1122334455667788, 2, 3, 4, 5, 6, 7, 8]);
        mach.finish_setup(false);
        let r = mach.run("f", &[a, bptr]).unwrap();
        assert_eq!(r.ret, 0x1122334455667788);
    }

    #[test]
    fn telemetry_attributes_guards_to_sites() {
        use crate::memsys::TrackFmMem;
        use tfm_net::LinkParams;
        use tfm_runtime::FarMemoryConfig;
        use trackfm::CostModel;

        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let q = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, q);
            b.ret(Some(x));
        }
        m.verify().unwrap();
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 8 * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        };
        let mem = TrackFmMem::new(cfg, CostModel::default());
        let mut mach = Machine::new(&m, mem, CostModel::default(), 1 << 20);
        let tel = Telemetry::enabled();
        mach.set_telemetry(tel.clone());
        let ptr = mach.setup_alloc(4096);
        mach.finish_setup(true); // cold start: the first guard fetches
        mach.run("f", &[ptr]).unwrap();
        mach.run("f", &[ptr]).unwrap(); // now resident: fast path

        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.count(EventKind::GuardSlowRemote), 1);
        assert_eq!(snap.count(EventKind::GuardFast), 1);
        let sites: Vec<_> = snap.sites.iter().collect();
        assert_eq!(sites.len(), 1, "one guard instruction, one site");
        let (key, stats) = sites[0];
        assert_eq!(key.func(), id.0);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.slow_remote, 1);
        assert_eq!(stats.fast, 1);
        assert!(stats.stall_cycles > 0, "the cold fetch stalls");
        assert_eq!(snap.stall_per_access.count(), 2);
    }

    #[test]
    fn sanitizer_accepts_guarded_and_rejects_unguarded_heap_access() {
        let build = |guarded: bool| {
            let mut m = Module::new("t");
            let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
            {
                let mut b = FunctionBuilder::new(m.function_mut(id));
                let p = b.param(0);
                let ptr = if guarded {
                    b.intrinsic(Intrinsic::GuardRead, vec![p])
                } else {
                    p
                };
                let x = b.load(Type::I64, ptr);
                b.ret(Some(x));
            }
            m.verify().unwrap();
            m
        };
        let good = build(true);
        let mut mach = machine(&good);
        mach.enable_guard_sanitizer();
        let ptr = mach.setup_alloc(64);
        mach.setup_write_u64s(ptr, &[42]);
        mach.finish_setup(false);
        assert_eq!(mach.run("f", &[ptr]).unwrap().ret, 42);

        let bad = build(false);
        let mut mach = machine(&bad);
        mach.enable_guard_sanitizer();
        let ptr = mach.setup_alloc(64);
        mach.finish_setup(false);
        assert!(matches!(
            mach.run("f", &[ptr]).unwrap_err(),
            Trap::UnguardedAccess { .. }
        ));
        // Without the sanitizer, LocalMem lets the unguarded access through.
        let mut mach = machine(&bad);
        let ptr = mach.setup_alloc(64);
        mach.finish_setup(false);
        assert!(mach.run("f", &[ptr]).is_ok());
    }

    #[test]
    fn sanitizer_catches_custody_lapse_across_calls() {
        // A guard result reused after a call that really kills (the callee
        // allocates): the canonical address is still valid memory, so only
        // the sanitizer's shadow kill catches it.
        let mut m = Module::new("t");
        let h = m.declare_function("h", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(h));
            let _ = b.malloc_const(8);
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let _ = b.load(Type::I64, g);
            let _ = b.call(h, vec![], Some(Type::I64));
            let x = b.load(Type::I64, g); // custody lapsed
            b.ret(Some(x));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        mach.enable_guard_sanitizer();
        let ptr = mach.setup_alloc(64);
        mach.finish_setup(false);
        assert!(matches!(
            mach.run("f", &[ptr]).unwrap_err(),
            Trap::UnguardedAccess { .. }
        ));
    }

    #[test]
    fn sanitizer_keeps_custody_across_transparent_calls() {
        // The callee executes no killing operation: custody survives the
        // call dynamically — matching the custody-transparency summaries,
        // so call-aware-compiled programs stay sanitizer-clean.
        let mut m = Module::new("t");
        let h = m.declare_function("h", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(h));
            let x = b.param(0);
            let y = b.binop(tfm_ir::BinOp::Add, x, x);
            b.ret(Some(y));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let a = b.load(Type::I64, g);
            let _ = b.call(h, vec![a], Some(Type::I64));
            let x = b.load(Type::I64, g); // custody intact: h is transparent
            b.ret(Some(x));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        mach.enable_guard_sanitizer();
        let ptr = mach.setup_alloc(64);
        mach.setup_write_u64s(ptr, &[7]);
        mach.finish_setup(false);
        assert_eq!(mach.run("f", &[ptr]).unwrap().ret, 7);
    }

    #[test]
    fn sanitizer_propagates_custody_through_calls() {
        // Entry covers: a guarded pointer passed as an argument keeps its
        // custody in the callee. Return covers: a guard result returned to
        // the caller keeps custody there.
        let mut m = Module::new("t");
        let reader = m.declare_function("reader", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        let loc = m.declare_function("loc", Signature::new(vec![Type::Ptr], Some(Type::Ptr)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(reader));
            let p = b.param(0);
            let x = b.load(Type::I64, p); // covered by the caller's guard
            b.ret(Some(x));
        }
        {
            let mut b = FunctionBuilder::new(m.function_mut(loc));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            b.ret(Some(g));
        }
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardWrite, vec![p]);
            let one = b.iconst(Type::I64, 1);
            b.store(g, one);
            let a = b.call(reader, vec![g], Some(Type::I64));
            let q = b.call(loc, vec![p], Some(Type::Ptr));
            let c = b.load(Type::I64, q); // covered by the callee's guard
            let s = b.binop(tfm_ir::BinOp::Add, a, c);
            b.ret(Some(s));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        mach.enable_guard_sanitizer();
        let ptr = mach.setup_alloc(64);
        mach.finish_setup(false);
        assert_eq!(mach.run("f", &[ptr]).unwrap().ret, 2);
    }

    #[test]
    fn sanitizer_exempts_stack_globals_and_local_allocs() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 8, None);
        let h = m.declare_function("h", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(h));
            let z = b.iconst(Type::I64, 0);
            b.ret(Some(z));
        }
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let one = b.iconst(Type::I64, 1);
            let slot = b.alloca(8, 8);
            b.store(slot, one);
            let ga = b.global_addr(g);
            b.store(ga, one);
            // Pruned local allocation stays accessible even across a call.
            let loc = b.malloc_const(64);
            b.store(loc, one);
            let _ = b.call(h, vec![], Some(Type::I64));
            let x = b.load(Type::I64, loc);
            b.ret(Some(x));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        mach.enable_guard_sanitizer();
        assert_eq!(mach.run("f", &[]).unwrap().ret, 1);
    }

    #[test]
    fn profiling_counts_blocks_and_edges() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |_b, _i| {});
            b.ret(Some(zero));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        mach.enable_profiling();
        mach.run("f", &[25]).unwrap();
        let prof = mach.take_profile();
        // Header (bb1) executes 26 times: 25 iterations + exit check.
        assert_eq!(prof.block_count("f", Block(1)), 26);
    }
}

#[cfg(test)]
mod recursion_tests {
    use super::*;
    use crate::memsys::LocalMem;
    use tfm_ir::{BinOp, CmpOp, FunctionBuilder, Module, Signature};

    /// Recursive fib(n): exercises nested frames, per-frame registers and
    /// stack discipline across deep call chains.
    #[test]
    fn recursive_fibonacci() {
        let mut m = Module::new("t");
        let fib = m.declare_function("fib", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(fib));
            let n = b.param(0);
            let base = b.create_block();
            let rec = b.create_block();
            let two = b.iconst(Type::I64, 2);
            let c = b.icmp(CmpOp::Slt, n, two);
            b.cond_br(c, base, rec);
            b.switch_to_block(base);
            b.ret(Some(n));
            b.switch_to_block(rec);
            let one = b.iconst(Type::I64, 1);
            let n1 = b.binop(BinOp::Sub, n, one);
            let n2 = b.binop(BinOp::Sub, n, two);
            let f1 = b.call(fib, vec![n1], Some(Type::I64));
            let f2 = b.call(fib, vec![n2], Some(Type::I64));
            let s = b.binop(BinOp::Add, f1, f2);
            b.ret(Some(s));
        }
        m.verify().unwrap();
        let mut mach = Machine::new(&m, LocalMem::new(1 << 16), CostModel::default(), 1 << 16);
        let r = mach.run("fib", &[20]).unwrap();
        assert_eq!(r.ret, 6765);
        // The call overhead must have been charged for every invocation.
        assert!(r.stats.cycles > 6765);
    }
}
