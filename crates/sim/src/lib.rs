//! # tfm-sim — the execution engine
//!
//! Interprets [`tfm_ir`] programs on a simulated cycle timeline against one
//! of four memory systems, reproducing the four columns of the paper's
//! evaluation:
//!
//! * [`LocalMem`] — everything local (the normalization baseline);
//! * [`FastswapMem`] — kernel paging over RDMA (Fastswap), running the
//!   *untransformed* program;
//! * [`TrackFmMem`] — compiler guards + the AIFM-like object runtime,
//!   running the *TrackFM-transformed* program;
//! * [`TrackFmMem::new_aifm`] — the library-based AIFM baseline (same
//!   runtime, developer-integrated costs).
//!
//! The [`Machine`] charges [`trackfm::CostModel`] cycles per operation and
//! returns a [`RunResult`] with cycles, guard/fault counters and network
//! byte ledgers — everything the paper's tables and figures plot.
//!
//! Two execution engines sit behind [`Machine::run`], selected with
//! [`Machine::set_engine`]: the tree-walking interpreter (default) and the
//! flattened register-[`bytecode`] engine, which lowers the module once and
//! dispatches from dense pre-resolved instructions. Both are bit-identical
//! in every simulated quantity; bytecode is ~an order of magnitude faster
//! in real time (see DESIGN.md §6j).
//!
//! ## Example: the sum loop end to end
//!
//! ```
//! use tfm_ir::{Module, Signature, Type, FunctionBuilder, BinOp};
//! use tfm_runtime::FarMemoryConfig;
//! use tfm_sim::{Machine, TrackFmMem};
//! use trackfm::{TrackFmCompiler, CostModel};
//!
//! // Unmodified program: sum over a heap array passed in as a pointer.
//! let mut m = Module::new("demo");
//! let f = m.declare_function("main", Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)));
//! {
//!     let mut b = FunctionBuilder::new(m.function_mut(f));
//!     let (arr, n) = (b.param(0), b.param(1));
//!     let zero = b.iconst(Type::I64, 0);
//!     let acc = b.alloca(8, 8);
//!     b.store(acc, zero);
//!     b.counted_loop(zero, n, 1, |b, i| {
//!         let a = b.gep(arr, i, 8, 0);
//!         let x = b.load(Type::I64, a);
//!         let s = b.load(Type::I64, acc);
//!         let s2 = b.binop(BinOp::Add, s, x);
//!         b.store(acc, s2);
//!     });
//!     let s = b.load(Type::I64, acc);
//!     b.ret(Some(s));
//! }
//!
//! // Recompile for far memory and run under a 25% local-memory budget.
//! TrackFmCompiler::default().compile(&mut m, None);
//! let cfg = FarMemoryConfig::small().with_local_budget(16 << 10);
//! let heap = cfg.heap_size;
//! let mem = TrackFmMem::new(cfg, CostModel::default());
//! let mut machine = Machine::new(&m, mem, CostModel::default(), heap);
//! let arr = machine.setup_alloc(8 * 1024);
//! machine.setup_write_u64s(arr, &vec![1u64; 1024]);
//! machine.finish_setup(true); // cold start
//! let result = machine.run("main", &[arr, 1024]).unwrap();
//! assert_eq!(result.ret, 1024);
//! assert!(result.bytes_transferred() > 0); // data came over the network
//! ```

pub mod bytecode;
mod machine;
mod memsys;
mod sched;
mod stats;
mod trap;

pub use machine::{ExecEngine, Machine};
pub use memsys::{
    FastswapMem, HybridMem, LocalMem, MemSummary, MemorySystem, TrackFmMem, GLOBAL_BASE, HEAP_BASE,
    STACK_BASE,
};
pub use sched::CoreSet;
pub use stats::{EngineStats, ExecStats, RunResult};
pub use trap::Trap;
