//! Execution faults.

use std::fmt;

/// A simulated hardware/runtime fault that aborts execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Trap {
    /// A load/store dereferenced a non-canonical (TrackFM) pointer without a
    /// guard — the general-protection fault of §3.1. Seeing this means the
    /// compiler failed to guard an access.
    NonCanonicalAccess {
        /// The faulting address.
        addr: u64,
    },
    /// Address outside every mapped region.
    OutOfBounds {
        /// The faulting address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
    /// Integer division by zero.
    DivByZero,
    /// The simulated stack overflowed.
    StackOverflow,
    /// `unreachable` was executed.
    Unreachable,
    /// The far heap (or local heap) is exhausted.
    AllocFailure,
    /// An invalid chunk handle was used.
    BadChunkHandle {
        /// The offending handle value.
        handle: u64,
    },
    /// Interpreter budget exceeded (runaway program).
    FuelExhausted,
    /// Guard-sanitizer violation: a load/store dereferenced a heap pointer
    /// whose value never passed through a live guard (or chunk dereference)
    /// in this frame. Unlike [`Trap::NonCanonicalAccess`] — which only fires
    /// on tagged pointers — this also catches *canonical* pointers whose
    /// custody lapsed (e.g. a guard result reused across a call), the
    /// dynamic mirror of the static `tfm-lint` check.
    UnguardedAccess {
        /// The faulting address.
        addr: u64,
        /// Function index of the faulting load/store.
        func: u32,
        /// Block index of the faulting load/store.
        block: u32,
        /// Value (instruction) index of the faulting load/store. Both
        /// engines resolve the same position: the tree-walker reads it off
        /// the instruction it is visiting, the bytecode engine maps the
        /// faulting pc back through its side table.
        inst: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::NonCanonicalAccess { addr } => write!(
                f,
                "general protection fault: unguarded access to non-canonical address {addr:#x}"
            ),
            Trap::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access of {size} bytes at {addr:#x}")
            }
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::Unreachable => write!(f, "reached `unreachable`"),
            Trap::AllocFailure => write!(f, "allocation failure"),
            Trap::BadChunkHandle { handle } => write!(f, "invalid chunk handle {handle}"),
            Trap::FuelExhausted => write!(f, "instruction budget exhausted"),
            Trap::UnguardedAccess {
                addr,
                func,
                block,
                inst,
            } => write!(
                f,
                "guard sanitizer: access to {addr:#x} without live guard custody \
                 (at @f{func} bb{block} %{inst})"
            ),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let t = Trap::NonCanonicalAccess {
            addr: 0x1000_0000_0000_0040,
        };
        assert!(t.to_string().contains("general protection fault"));
        assert!(t.to_string().contains("0x1000000000000040"));
        assert!(Trap::DivByZero.to_string().contains("division"));
        let u = Trap::UnguardedAccess {
            addr: 0x2000_0000_0040,
            func: 1,
            block: 2,
            inst: 9,
        };
        assert!(u.to_string().contains("guard sanitizer"));
        assert!(u.to_string().contains("0x200000000040"));
        assert!(u.to_string().contains("@f1 bb2 %9"));
    }
}
