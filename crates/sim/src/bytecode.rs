//! The flattened register-bytecode execution engine.
//!
//! [`lower_module`] compiles each IR function once into a dense array of
//! [`Bc`] instructions: operand slots pre-resolved to frame-relative
//! register indices (an SSA value's arena index *is* its register), block
//! targets resolved to instruction offsets, guard/chunk intrinsics given
//! dedicated opcodes carrying their prebuilt [`SiteKey`]s, and constants
//! pooled and deduplicated by bit pattern. The dispatch loop in this module
//! then replaces the tree-walking interpreter on the hot path.
//!
//! ## The bit-identity contract
//!
//! Everything the simulation *measures* must be unchanged: the lowering is
//! one bytecode instruction per IR instruction (phis and params lower to
//! [`Bc::Retire`] no-ops) so `stats.instructions` and fuel accounting
//! retire in the same order; every cycle charge, memory-system call,
//! telemetry probe and sanitizer shadow update is sequenced exactly as the
//! tree-walker sequences it. The engines differ only in real wall-clock
//! time: no per-call register `Vec`, no per-edge update `Vec`, no operand
//! re-decoding, and the whole guard path compiled down to one `Copy` match
//! arm. `tests/random_programs.rs` locks the two engines together over a
//! 200-seed differential corpus.

use crate::machine::{exec_binop, exec_cast, exec_fcmp, exec_icmp, kill_custody, shadow, Machine};
use crate::memsys::{MemorySystem, GLOBAL_BASE, STACK_BASE};
use crate::trap::Trap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;
use tfm_ir::{
    BinOp, Block, CastOp, CmpOp, FCmpOp, FuncId, Function, InstKind, Intrinsic, Module, Type,
};
use tfm_telemetry::SiteKey;

/// Sentinel register meaning "no value" (void `ret`).
const NO_REG: u32 = u32::MAX;

/// One flattened instruction. Operands are frame-relative register slots;
/// control-flow targets are instruction offsets into the owning function's
/// code array. `Copy` and at most 32 bytes, so dispatch never chases a
/// pointer.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Bc {
    /// Retired-only instruction (phi/param/nop): counts against
    /// `stats.instructions` and fuel exactly like the tree-walker's no-op
    /// arm, but moves no data (phis move on edges, params at call entry).
    Retire,
    /// `dst = pool[idx]` — a pooled constant (int or float bit pattern).
    Const {
        /// Destination register.
        dst: u32,
        /// Constant-pool index.
        idx: u32,
    },
    /// Integer/float binary op.
    Bin {
        /// Operator.
        op: BinOp,
        /// Result type (masking/sign-extension width).
        ty: Type,
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// Integer compare. `ty` is the *operand* type, as in the tree-walker.
    Icmp {
        /// Comparison predicate.
        op: CmpOp,
        /// Operand type (unsigned predicates mask to this width).
        ty: Type,
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// Float compare.
    Fcmp {
        /// Comparison predicate.
        op: FCmpOp,
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// Width/representation cast, both types pre-resolved.
    Cast {
        /// Cast operator.
        op: CastOp,
        /// Source type.
        from: Type,
        /// Destination type.
        to: Type,
        /// Destination register.
        dst: u32,
        /// Operand register.
        a: u32,
    },
    /// Stack allocation.
    Alloca {
        /// Destination register (receives the stack address).
        dst: u32,
        /// Size in bytes.
        size: u32,
        /// Alignment in bytes.
        align: u32,
    },
    /// Memory load of `ty` through the pointer in `ptr`.
    Load {
        /// Destination register.
        dst: u32,
        /// Pointer register.
        ptr: u32,
        /// Loaded type.
        ty: Type,
    },
    /// Memory store of `ty` through the pointer in `ptr`.
    Store {
        /// Pointer register.
        ptr: u32,
        /// Value register.
        val: u32,
        /// Stored type.
        ty: Type,
    },
    /// `dst = base + index * scale + disp` (pointer arithmetic).
    Gep {
        /// Destination register.
        dst: u32,
        /// Base pointer register.
        base: u32,
        /// Index register.
        index: u32,
        /// Element scale in bytes.
        scale: u32,
        /// Constant displacement in bytes.
        disp: i64,
    },
    /// Direct call: `nargs` argument slots start at `args` in the shared
    /// argument pool; they are copied straight into the callee's frame.
    Call {
        /// Destination register (receives the return value).
        dst: u32,
        /// Callee function index.
        func: u32,
        /// Start offset into [`Program::arg_pool`].
        args: u32,
        /// Argument count.
        nargs: u16,
    },
    /// Dedicated guard opcode (`tfm.guard.read` / `tfm.guard.write`) with
    /// its site label prebuilt.
    Guard {
        /// Destination register (the guarded pointer result).
        dst: u32,
        /// Guarded pointer register.
        ptr: u32,
        /// Write guard (`tfm.guard.write`) vs read guard.
        write: bool,
        /// Attribution site (packed function/value key).
        site: SiteKey,
    },
    /// Dedicated chunk-dereference opcode with its site label prebuilt.
    ChunkDeref {
        /// Destination register.
        dst: u32,
        /// Chunk handle register.
        handle: u32,
        /// Pointer register.
        ptr: u32,
        /// Attribution site (packed function/value key).
        site: SiteKey,
    },
    /// Any other intrinsic (alloc/free/chunk begin/end/memcpy/...).
    Intr {
        /// Destination register.
        dst: u32,
        /// The intrinsic.
        intr: Intrinsic,
        /// Start offset into [`Program::arg_pool`].
        args: u32,
        /// Argument count (≤ 3 by the intrinsic signatures).
        nargs: u16,
        /// Attribution site (packed function/value key).
        site: SiteKey,
    },
    /// Address of a global data object.
    GlobalAddr {
        /// Destination register.
        dst: u32,
        /// Global index (offset resolved against the machine's layout).
        global: u32,
    },
    /// Conditional move.
    Select {
        /// Destination register.
        dst: u32,
        /// Condition register.
        cond: u32,
        /// Register taken when the condition is nonzero.
        tval: u32,
        /// Register taken when the condition is zero.
        fval: u32,
    },
    /// Unconditional branch to instruction offset `target`, applying the
    /// phi copies of `edge` on the way.
    Jump {
        /// Target instruction offset.
        target: u32,
        /// Edge record index ([`Program::edges`]).
        edge: u32,
    },
    /// Conditional branch; each side carries its own resolved offset and
    /// edge record.
    Branch {
        /// Condition register.
        cond: u32,
        /// Instruction offset when the condition is nonzero.
        then_target: u32,
        /// Instruction offset when the condition is zero.
        else_target: u32,
        /// Edge record for the taken-then case.
        then_edge: u32,
        /// Edge record for the taken-else case.
        else_edge: u32,
    },
    /// Function return; `val == u32::MAX` returns 0 (void).
    Ret {
        /// Returned register, or [`NO_REG`].
        val: u32,
    },
    /// `unreachable` executed.
    Halt,
    // ------------------------------------------------------------------
    // Fused superinstructions, produced by the peephole pass
    // (`fuse_function`). Each carries the *first* constituent's operands;
    // the second constituent stays in the stream at `pc + 1` — still a
    // valid branch target, still disassembled, still owning its `pos`
    // entry — and is executed in the same dispatch. Retirement order,
    // cycle charges and trap points are bit-identical to the unfused
    // pair; only the dispatch count changes.
    // ------------------------------------------------------------------
    /// [`Bc::Gep`] immediately followed by [`Bc::Load`].
    GepLoad {
        /// Destination register of the address computation.
        dst: u32,
        /// Base pointer register.
        base: u32,
        /// Index register.
        index: u32,
        /// Element scale in bytes.
        scale: u32,
        /// Constant displacement in bytes.
        disp: i64,
    },
    /// [`Bc::Gep`] immediately followed by [`Bc::Store`].
    GepStore {
        /// Destination register of the address computation.
        dst: u32,
        /// Base pointer register.
        base: u32,
        /// Index register.
        index: u32,
        /// Element scale in bytes.
        scale: u32,
        /// Constant displacement in bytes.
        disp: i64,
    },
    /// [`Bc::Icmp`] immediately followed by [`Bc::Branch`].
    IcmpBranch {
        /// Comparison predicate.
        op: CmpOp,
        /// Operand type of the compare.
        ty: Type,
        /// Destination register of the compare.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// A run of `n ≥ 2` consecutive [`Bc::Retire`]s (phi/param blocks),
    /// retired in one dispatch with per-constituent fuel checks.
    RetireRun {
        /// Run length, first retire included.
        n: u32,
    },
    // ------------------------------------------------------------------
    // Specialized ALU opcodes, produced by the lowering-time
    // `specialize_function` pass for full-width (`I64`/`Ptr`) operations
    // whose generic semantics reduce to a single machine op: the
    // (operator, type) pair is resolved once at lowering instead of
    // re-dispatched through `exec_binop`'s operator match and
    // mask/sign-extension on every execution. Semantics are bit-identical
    // to the generic [`Bc::Bin`] by construction (no masking at 64 bits).
    // ------------------------------------------------------------------
    /// `dst = a + b` (wrapping, 64-bit).
    Add64 {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst = a - b` (wrapping, 64-bit).
    Sub64 {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst = a * b` (wrapping, 64-bit).
    Mul64 {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst = a & b`.
    And64 {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst = a | b`.
    Or64 {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst = a ^ b`.
    Xor64 {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
    /// `dst = a << (b & 63)` (64-bit).
    Shl64 {
        /// Destination register.
        dst: u32,
        /// Left operand register.
        a: u32,
        /// Right operand register.
        b: u32,
    },
}

/// One lowered control-flow edge: the phi parallel-copy list plus the
/// `(from, to)` block pair for edge profiling.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EdgeInfo {
    /// Start offset into [`Program::copy_pool`].
    pub copies: u32,
    /// Number of `(dst, src)` copies on this edge.
    pub ncopies: u32,
    /// Source block index.
    pub from: u32,
    /// Destination block index.
    pub to: u32,
}

/// One lowered function.
#[derive(Clone, Debug)]
pub struct BcFunc {
    /// Function name (disassembly only).
    pub name: String,
    /// Flattened code, one [`Bc`] per IR instruction in block order.
    pub code: Vec<Bc>,
    /// `(block index, IR value index)` for each code offset — resolves
    /// trap positions and labels the disassembly. Parallel to `code`.
    pub pos: Vec<(u32, u32)>,
    /// Instruction offset of each block's first instruction (empty blocks
    /// share the following block's offset).
    pub block_offsets: Vec<u32>,
    /// Register-file size (the IR value arena size, tombstones included).
    pub nregs: u32,
    /// Entry block index.
    pub entry: u32,
    /// Block count (profiling).
    pub nblocks: u32,
}

/// A fully lowered module: per-function code plus the shared constant,
/// argument-slot and phi-copy pools.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Lowered functions, indexed by [`FuncId`].
    pub funcs: Vec<BcFunc>,
    /// Deduplicated constants (raw 64-bit patterns; `ConstInt` stores the
    /// sign-extended integer, `ConstFloat` the IEEE bits).
    pub pool: Vec<u64>,
    /// Call/intrinsic argument register slots.
    pub arg_pool: Vec<u32>,
    /// Phi parallel-copy `(dst, src)` register pairs.
    pub copy_pool: Vec<(u32, u32)>,
    /// Edge records referenced by [`Bc::Jump`]/[`Bc::Branch`].
    pub edges: Vec<EdgeInfo>,
}

impl Program {
    /// Total lowered instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

/// Flattens every function of `module` into register bytecode.
pub fn lower_module(module: &Module) -> Program {
    let mut prog = Program::default();
    let mut pool_index: HashMap<u64, u32> = HashMap::new();
    for (fid, f) in module.functions() {
        let bf = lower_function(fid, f, &mut prog, &mut pool_index);
        prog.funcs.push(bf);
    }
    prog
}

/// Interns `bits` into the constant pool, deduplicating by bit pattern.
fn intern_const(bits: u64, prog: &mut Program, pool_index: &mut HashMap<u64, u32>) -> u32 {
    *pool_index.entry(bits).or_insert_with(|| {
        prog.pool.push(bits);
        (prog.pool.len() - 1) as u32
    })
}

/// Lowers one edge: collects the target block's phi copies for `from` (in
/// block order, read-all-then-write-all at runtime) and records the block
/// pair for profiling.
fn lower_edge(f: &Function, from: Block, to: Block, prog: &mut Program) -> u32 {
    let start = prog.copy_pool.len() as u32;
    for &v in f.block_insts(to) {
        match f.kind(v) {
            InstKind::Phi(incs) => {
                if let Some((_, iv)) = incs.iter().find(|(p, _)| *p == from) {
                    prog.copy_pool.push((v.0, iv.0));
                }
            }
            InstKind::Param(_) => continue,
            _ => break,
        }
    }
    let ncopies = prog.copy_pool.len() as u32 - start;
    prog.edges.push(EdgeInfo {
        copies: start,
        ncopies,
        from: from.0,
        to: to.0,
    });
    (prog.edges.len() - 1) as u32
}

fn lower_function(
    fid: FuncId,
    f: &Function,
    prog: &mut Program,
    pool_index: &mut HashMap<u64, u32>,
) -> BcFunc {
    // First pass: block offsets. One bytecode instruction per IR
    // instruction, so an offset is the running sum of block lengths.
    let mut block_offsets = Vec::with_capacity(f.num_blocks());
    let mut off = 0u32;
    for b in f.blocks() {
        block_offsets.push(off);
        off += f.block_insts(b).len() as u32;
    }

    let mut code = Vec::with_capacity(off as usize);
    let mut pos = Vec::with_capacity(off as usize);
    for b in f.blocks() {
        for &v in f.block_insts(b) {
            let dst = v.0;
            let op = match f.kind(v) {
                InstKind::Nop | InstKind::Param(_) | InstKind::Phi(_) => Bc::Retire,
                InstKind::ConstInt(c) => Bc::Const {
                    dst,
                    idx: intern_const(*c as u64, prog, pool_index),
                },
                InstKind::ConstFloat(c) => Bc::Const {
                    dst,
                    idx: intern_const(c.to_bits(), prog, pool_index),
                },
                InstKind::Binary(op, a, b) => Bc::Bin {
                    op: *op,
                    ty: f.ty(v).unwrap_or(Type::I64),
                    dst,
                    a: a.0,
                    b: b.0,
                },
                InstKind::Icmp(op, a, b) => Bc::Icmp {
                    op: *op,
                    ty: f.ty(*a).unwrap_or(Type::I64),
                    dst,
                    a: a.0,
                    b: b.0,
                },
                InstKind::Fcmp(op, a, b) => Bc::Fcmp {
                    op: *op,
                    dst,
                    a: a.0,
                    b: b.0,
                },
                InstKind::Cast(op, a) => Bc::Cast {
                    op: *op,
                    from: f.ty(*a).unwrap_or(Type::I64),
                    to: f.ty(v).unwrap_or(Type::I64),
                    dst,
                    a: a.0,
                },
                InstKind::Alloca { size, align } => Bc::Alloca {
                    dst,
                    size: *size,
                    align: *align,
                },
                InstKind::Load { ptr } => Bc::Load {
                    dst,
                    ptr: ptr.0,
                    ty: f.ty(v).unwrap_or(Type::I64),
                },
                InstKind::Store { ptr, val } => Bc::Store {
                    ptr: ptr.0,
                    val: val.0,
                    ty: f.ty(*val).unwrap_or(Type::I64),
                },
                InstKind::Gep {
                    base,
                    index,
                    scale,
                    disp,
                } => Bc::Gep {
                    dst,
                    base: base.0,
                    index: index.0,
                    scale: *scale,
                    disp: *disp,
                },
                InstKind::Call { func, args } => {
                    let start = prog.arg_pool.len() as u32;
                    prog.arg_pool.extend(args.iter().map(|a| a.0));
                    Bc::Call {
                        dst,
                        func: func.0,
                        args: start,
                        nargs: args.len() as u16,
                    }
                }
                InstKind::IntrinsicCall { intr, args } => {
                    let site = SiteKey::new(fid.0, v.0);
                    match intr {
                        Intrinsic::GuardRead | Intrinsic::GuardWrite if args.len() == 1 => {
                            Bc::Guard {
                                dst,
                                ptr: args[0].0,
                                write: *intr == Intrinsic::GuardWrite,
                                site,
                            }
                        }
                        Intrinsic::ChunkDeref if args.len() == 2 => Bc::ChunkDeref {
                            dst,
                            handle: args[0].0,
                            ptr: args[1].0,
                            site,
                        },
                        _ => {
                            assert!(
                                args.len() <= 3,
                                "intrinsic {intr:?} exceeds the 3-operand bytecode budget"
                            );
                            let start = prog.arg_pool.len() as u32;
                            prog.arg_pool.extend(args.iter().map(|a| a.0));
                            Bc::Intr {
                                dst,
                                intr: *intr,
                                args: start,
                                nargs: args.len() as u16,
                                site,
                            }
                        }
                    }
                }
                InstKind::GlobalAddr(g) => Bc::GlobalAddr { dst, global: g.0 },
                InstKind::Select { cond, tval, fval } => Bc::Select {
                    dst,
                    cond: cond.0,
                    tval: tval.0,
                    fval: fval.0,
                },
                InstKind::Br(target) => {
                    let edge = lower_edge(f, b, *target, prog);
                    Bc::Jump {
                        target: block_offsets[target.index()],
                        edge,
                    }
                }
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let then_edge = lower_edge(f, b, *then_bb, prog);
                    let else_edge = lower_edge(f, b, *else_bb, prog);
                    Bc::Branch {
                        cond: cond.0,
                        then_target: block_offsets[then_bb.index()],
                        else_target: block_offsets[else_bb.index()],
                        then_edge,
                        else_edge,
                    }
                }
                InstKind::Ret(val) => Bc::Ret {
                    val: val.map(|v| v.0).unwrap_or(NO_REG),
                },
                InstKind::Unreachable => Bc::Halt,
            };
            code.push(op);
            pos.push((b.0, v.0));
        }
    }
    specialize_function(&mut code);
    fuse_function(&mut code);
    BcFunc {
        name: f.name.clone(),
        code,
        pos,
        block_offsets,
        nregs: f.num_insts() as u32,
        entry: f.entry_block().0,
        nblocks: f.num_blocks() as u32,
    }
}

/// The ALU specialization peephole: resolves full-width (`I64`/`Ptr`)
/// binary ops whose generic semantics need no masking or sign-extension
/// into dedicated single-machine-op opcodes, collapsing `exec_binop`'s
/// two-level dispatch (opcode, then operator) into the main jump table.
/// Narrow types, divisions (trapping) and float ops keep the generic form.
fn specialize_function(code: &mut [Bc]) {
    for op in code.iter_mut() {
        if let Bc::Bin {
            op: o,
            ty: Type::I64 | Type::Ptr,
            dst,
            a,
            b,
        } = *op
        {
            *op = match o {
                BinOp::Add => Bc::Add64 { dst, a, b },
                BinOp::Sub => Bc::Sub64 { dst, a, b },
                BinOp::Mul => Bc::Mul64 { dst, a, b },
                BinOp::And => Bc::And64 { dst, a, b },
                BinOp::Or => Bc::Or64 { dst, a, b },
                BinOp::Xor => Bc::Xor64 { dst, a, b },
                BinOp::Shl => Bc::Shl64 { dst, a, b },
                _ => continue,
            };
        }
    }
}

/// The superinstruction peephole: rewrites the first instruction of each
/// recognized adjacent pair to its fused twin, and the head of each run of
/// `Retire`s to [`Bc::RetireRun`]. Second constituents (and run tails) are
/// left verbatim in the stream, so a branch landing *inside* a fused group
/// simply executes the remaining plain instructions — no target remapping,
/// and `pos` stays 1:1. Fusion never crosses a block boundary because every
/// first constituent is a non-terminator, so `pc + 1` is in the same block.
fn fuse_function(code: &mut [Bc]) {
    let mut pc = 0;
    while pc < code.len() {
        if matches!(code[pc], Bc::Retire) {
            let mut n = 1;
            while pc + n < code.len() && matches!(code[pc + n], Bc::Retire) {
                n += 1;
            }
            if n >= 2 {
                code[pc] = Bc::RetireRun { n: n as u32 };
            }
            pc += n;
            continue;
        }
        if pc + 1 == code.len() {
            break;
        }
        let fused = match (code[pc], code[pc + 1]) {
            (
                Bc::Gep {
                    dst,
                    base,
                    index,
                    scale,
                    disp,
                },
                Bc::Load { .. },
            ) => Some(Bc::GepLoad {
                dst,
                base,
                index,
                scale,
                disp,
            }),
            (
                Bc::Gep {
                    dst,
                    base,
                    index,
                    scale,
                    disp,
                },
                Bc::Store { .. },
            ) => Some(Bc::GepStore {
                dst,
                base,
                index,
                scale,
                disp,
            }),
            (Bc::Icmp { op, ty, dst, a, b }, Bc::Branch { .. }) => {
                Some(Bc::IcmpBranch { op, ty, dst, a, b })
            }
            _ => None,
        };
        if let Some(f) = fused {
            code[pc] = f;
            pc += 2;
        } else {
            pc += 1;
        }
    }
}

// ----------------------------------------------------------------------
// Execution.
// ----------------------------------------------------------------------

/// The register stack and its shadow-custody twin, threaded through the
/// dispatch loop as a dedicated borrow (never reachable through `self`), so
/// the optimizer knows machine calls cannot alias the register file and
/// keeps its base pointer in a hardware register across the loop.
struct RegStack {
    regs: Vec<u64>,
    cov: Vec<u8>,
}

impl RegStack {
    /// Reads one frame-relative register.
    ///
    /// # Safety contract (checked in debug builds)
    ///
    /// Every slot the lowering emits is an IR value-arena index of the
    /// owning function, so `slot < nregs`, and the frame window
    /// `base..base + nregs` was reserved by [`RegStack::push_frame`].
    #[inline(always)]
    fn rd(&self, base: usize, slot: u32) -> u64 {
        debug_assert!(base + (slot as usize) < self.regs.len());
        unsafe { *self.regs.get_unchecked(base + slot as usize) }
    }

    /// Writes one frame-relative register (same contract as [`Self::rd`]).
    #[inline(always)]
    fn wr(&mut self, base: usize, slot: u32, v: u64) {
        debug_assert!(base + (slot as usize) < self.regs.len());
        unsafe { *self.regs.get_unchecked_mut(base + slot as usize) = v };
    }

    /// Reads one frame-relative shadow cover (sanitize mode only).
    #[inline(always)]
    fn cov(&self, base: usize, slot: u32) -> u8 {
        debug_assert!(base + (slot as usize) < self.cov.len());
        unsafe { *self.cov.get_unchecked(base + slot as usize) }
    }

    /// Writes one frame-relative shadow cover (sanitize mode only).
    #[inline(always)]
    fn set_cov(&mut self, base: usize, slot: u32, c: u8) {
        debug_assert!(base + (slot as usize) < self.cov.len());
        unsafe { *self.cov.get_unchecked_mut(base + slot as usize) = c };
    }

    /// Reserves and zero-fills an `n`-register window at `base` (the zero
    /// fill mirrors the tree-walker's fresh `vec![0; _]` per call).
    fn push_frame<const SAN: bool>(&mut self, base: usize, n: usize) {
        let end = base + n;
        if self.regs.len() < end {
            self.regs.resize(end, 0);
        } else {
            self.regs[base..end].fill(0);
        }
        if SAN {
            if self.cov.len() < end {
                self.cov.resize(end, shadow::NONE);
            } else {
                self.cov[base..end].fill(shadow::NONE);
            }
        }
    }
}

impl<'m, M: MemorySystem> Machine<'m, M> {
    /// Entry point from [`Machine::run`]: lowers the module on first use,
    /// then executes `fid` in a root bytecode frame.
    pub(crate) fn run_bytecode(&mut self, fid: FuncId, args: &[u64]) -> Result<u64, Trap> {
        let prog = match &self.bc {
            Some(p) => Rc::clone(p),
            None => {
                let p = Rc::new(lower_module(self.module));
                self.engine_stats.lowered_fns += p.funcs.len() as u64;
                self.bc = Some(Rc::clone(&p));
                p
            }
        };
        {
            let f = self.module.function(fid);
            assert_eq!(
                args.len(),
                f.sig.params.len(),
                "argument count mismatch calling `{}`",
                f.name
            );
        }
        let mut rs = RegStack {
            regs: std::mem::take(&mut self.bc_regs),
            cov: std::mem::take(&mut self.bc_cov),
        };
        let before = self.stats.instructions;
        let r = if self.sanitize {
            self.root_frame::<true>(&prog, fid, args, &mut rs)
        } else {
            self.root_frame::<false>(&prog, fid, args, &mut rs)
        };
        self.bc_regs = rs.regs;
        self.bc_cov = rs.cov;
        // Every retired instruction in this engine was dispatched from
        // bytecode (the lowering is 1:1), so the delta is the dispatch
        // count — counted here so the hot loop pays nothing for it.
        self.engine_stats.dispatched_insts += self.stats.instructions - before;
        r
    }

    /// Sets up the root frame (argument registers plus any covers staged by
    /// the harness) and runs it.
    fn root_frame<const SAN: bool>(
        &mut self,
        prog: &Program,
        fid: FuncId,
        args: &[u64],
        rs: &mut RegStack,
    ) -> Result<u64, Trap> {
        let nregs = prog.funcs[fid.index()].nregs as usize;
        rs.push_frame::<SAN>(0, nregs);
        rs.regs[..args.len()].copy_from_slice(args);
        if SAN {
            // The harness-level entry stages nothing, but mirror the
            // tree-walker's unconditional take so staged state never leaks.
            let staged = std::mem::take(&mut self.arg_cov);
            let n = staged.len().min(args.len());
            rs.cov[..n].copy_from_slice(&staged[..n]);
        }
        self.exec_frame::<SAN>(prog, fid, 0, rs)
    }

    /// Applies one lowered edge: phi parallel copies (read all sources
    /// before writing any destination), then edge/block profiling — the
    /// exact sequence of the tree-walker's `take_edge`.
    #[inline(always)]
    fn take_bc_edge<const SAN: bool>(
        &mut self,
        prog: &Program,
        fid: FuncId,
        edge: u32,
        base: usize,
        nblocks: u32,
        rs: &mut RegStack,
    ) {
        let e = prog.edges[edge as usize];
        if e.ncopies > 0 {
            let start = e.copies as usize;
            let copies = &prog.copy_pool[start..start + e.ncopies as usize];
            self.bc_scratch.clear();
            for &(d, s) in copies {
                let c = if SAN { rs.cov(base, s) } else { 0 };
                self.bc_scratch.push((d, rs.rd(base, s), c));
            }
            for i in 0..self.bc_scratch.len() {
                let (d, val, c) = self.bc_scratch[i];
                rs.wr(base, d, val);
                if SAN {
                    rs.set_cov(base, d, c);
                }
            }
        }
        self.note_edge(fid, e.from, e.to);
        self.profile_block(fid, Block(e.to), nblocks as usize);
    }

    /// The dispatch loop: one frame of `fid` whose registers live at
    /// `base..base + nregs` on the shared register stack. Specialized over
    /// the sanitizer flag so the common non-sanitized path carries no
    /// shadow-state branches at all.
    ///
    /// The retired-instruction counter, simulated clock, fuel limit and
    /// cost-model charges are hoisted into locals: the tree-walker's
    /// per-instruction `self.stats` / `self.clock` read-modify-writes form
    /// serial store-to-load dependency chains that dominate its cycle
    /// budget, while locals retire as register adds. The locals are flushed
    /// back into `self` at every point where other code can observe them —
    /// memory-system calls, intrinsics, calls, returns and traps — so every
    /// observed value is bit-identical to the tree-walker's.
    //
    // `question_mark`: the explicit `match`es on call/intrinsic results are
    // deliberate — rewriting them as `?` measurably regresses the dispatch
    // loop (~0.6 ns/inst on the serving workload, reproducibly), and
    // `hot_try!` would be wrong here: its `bail!` re-flushes locals that go
    // stale once the callee has run.
    #[allow(clippy::question_mark)]
    fn exec_frame<const SAN: bool>(
        &mut self,
        prog: &Program,
        fid: FuncId,
        base: usize,
        rs: &mut RegStack,
    ) -> Result<u64, Trap> {
        let bf = &prog.funcs[fid.index()];
        let fend = base + bf.nregs as usize;
        let saved_stack = self.stack_top;
        let code = &bf.code[..];
        let mut pc = bf.block_offsets[bf.entry as usize] as usize;
        self.profile_block(fid, Block(bf.entry), bf.nblocks as usize);

        // Loop-invariant machine state, hoisted out of the dispatch loop.
        let fuel = self.fuel;
        let cost_alu = self.cost.alu;
        let cost_ls = self.cost.load_store;
        let cost_br = self.cost.branch;
        let cost_call = self.cost.call_overhead;
        // Hot counters, flushed at observation points (see above).
        let mut insts = self.stats.instructions;
        let mut clock = self.clock;

        // Writes the hot counters back into `self`.
        macro_rules! flush {
            () => {
                self.stats.instructions = insts;
                self.clock = clock;
            };
        }
        // Re-reads the hot counters after a call that may have advanced
        // them (intrinsics charge the clock; callees retire instructions).
        macro_rules! reload {
            () => {
                insts = self.stats.instructions;
                clock = self.clock;
            };
        }
        // Traps out of the frame: flush, then return the error. Only valid
        // when the counters have advanced past the last flush (a plain
        // `return Err` is required after `flush!()` + external call).
        macro_rules! bail {
            ($e:expr) => {{
                flush!();
                return Err($e);
            }};
        }
        // `?` for fallible ops charged against the hot counters.
        macro_rules! hot_try {
            ($r:expr) => {
                match $r {
                    Ok(v) => v,
                    Err(e) => bail!(e),
                }
            };
        }
        // Retires the second constituent of a fused pair (the loop head
        // charged the first): the same count-then-check the tree-walker
        // performs per instruction, so fuel exhausts at the exact point.
        macro_rules! fuel_step {
            () => {
                insts += 1;
                if insts > fuel {
                    bail!(Trap::FuelExhausted);
                }
            };
        }
        // Destructures the known second constituent of a fused pair out of
        // the stream (`fuse_function` guarantees the variant).
        macro_rules! second {
            ($pat:pat => $body:expr) => {
                match unsafe { *code.get_unchecked(pc + 1) } {
                    $pat => $body,
                    _ => unreachable!("fused pair constituent"),
                }
            };
        }
        // One macro per hot op body, shared between the plain arms and the
        // fused superinstruction arms so the two spellings cannot drift.
        macro_rules! do_const {
            ($dst:expr, $idx:expr) => {
                rs.wr(base, $dst, prog.pool[$idx as usize])
            };
        }
        macro_rules! do_bin {
            ($op:expr, $ty:expr, $dst:expr, $a:expr, $b:expr) => {{
                clock += cost_alu;
                let x = rs.rd(base, $a);
                let y = rs.rd(base, $b);
                rs.wr(base, $dst, hot_try!(exec_binop($op, x, y, $ty)));
                if SAN {
                    rs.set_cov(base, $dst, rs.cov(base, $a).max(rs.cov(base, $b)));
                }
            }};
        }
        // Specialized full-width ALU body: same charge/retire sequence as
        // `do_bin`, the operator resolved at lowering time ($f infallible).
        macro_rules! do_alu64 {
            ($dst:expr, $a:expr, $b:expr, $f:expr) => {{
                clock += cost_alu;
                let x = rs.rd(base, $a);
                let y = rs.rd(base, $b);
                rs.wr(base, $dst, $f(x, y));
                if SAN {
                    rs.set_cov(base, $dst, rs.cov(base, $a).max(rs.cov(base, $b)));
                }
            }};
        }
        macro_rules! do_icmp {
            ($op:expr, $ty:expr, $dst:expr, $a:expr, $b:expr) => {{
                clock += cost_alu;
                let x = rs.rd(base, $a);
                let y = rs.rd(base, $b);
                rs.wr(base, $dst, exec_icmp($op, x, y, $ty) as u64);
            }};
        }
        macro_rules! do_gep {
            ($dst:expr, $b:expr, $index:expr, $scale:expr, $disp:expr) => {{
                clock += cost_alu;
                let bv = rs.rd(base, $b);
                let iv = rs.rd(base, $index);
                rs.wr(
                    base,
                    $dst,
                    bv.wrapping_add((iv as i64).wrapping_mul($scale as i64) as u64)
                        .wrapping_add($disp as u64),
                );
                if SAN {
                    rs.set_cov(base, $dst, rs.cov(base, $b));
                }
            }};
        }
        macro_rules! do_load {
            ($dst:expr, $ptr:expr, $ty:expr, $at:expr) => {{
                let addr = rs.rd(base, $ptr);
                let size = $ty.size() as u64;
                if SAN && rs.cov(base, $ptr) == shadow::NONE && self.is_sanitized_addr(addr) {
                    let (block, inst) = bf.pos[$at];
                    bail!(Trap::UnguardedAccess {
                        addr,
                        func: fid.0,
                        block,
                        inst,
                    });
                }
                self.stats.loads += 1;
                flush!();
                let extra = match self
                    .mem
                    .data_access(addr, size, false, clock, &mut self.stats)
                {
                    Ok(v) => v,
                    // `data_access` may have bumped stats; the
                    // pre-call flush already published the counters.
                    Err(e) => return Err(e),
                };
                insts = self.stats.instructions;
                clock += cost_ls + extra;
                let addr = self.mem.canonical(addr);
                rs.wr(base, $dst, hot_try!(self.read_mem(addr, $ty)));
            }};
        }
        macro_rules! do_store {
            ($ptr:expr, $val:expr, $ty:expr, $at:expr) => {{
                let addr = rs.rd(base, $ptr);
                let size = $ty.size() as u64;
                if SAN && rs.cov(base, $ptr) == shadow::NONE && self.is_sanitized_addr(addr) {
                    let (block, inst) = bf.pos[$at];
                    bail!(Trap::UnguardedAccess {
                        addr,
                        func: fid.0,
                        block,
                        inst,
                    });
                }
                self.stats.stores += 1;
                flush!();
                let extra = match self
                    .mem
                    .data_access(addr, size, true, clock, &mut self.stats)
                {
                    Ok(v) => v,
                    Err(e) => return Err(e),
                };
                insts = self.stats.instructions;
                clock += cost_ls + extra;
                let addr = self.mem.canonical(addr);
                hot_try!(self.write_mem(addr, rs.rd(base, $val), $ty));
            }};
        }
        // Full branch body; diverges (sets `pc` and continues the loop).
        macro_rules! do_branch {
            ($cond:expr, $tt:expr, $et:expr, $te:expr, $ee:expr) => {{
                clock += cost_br;
                let (t, e) = if rs.rd(base, $cond) != 0 {
                    ($tt, $te)
                } else {
                    ($et, $ee)
                };
                self.take_bc_edge::<SAN>(prog, fid, e, base, bf.nblocks, rs);
                pc = t as usize;
                continue;
            }};
        }

        loop {
            insts += 1;
            if insts > fuel {
                bail!(Trap::FuelExhausted);
            }
            // In-bounds: every block ends in a terminator, so `pc + 1` never
            // leaves `code`, and all branch targets are block offsets.
            debug_assert!(pc < code.len());
            match unsafe { *code.get_unchecked(pc) } {
                Bc::Retire => {}
                Bc::RetireRun { n } => {
                    // The loop head charged the first retire; the rest are
                    // retired here, fuel-checked one by one.
                    for _ in 1..n {
                        fuel_step!();
                    }
                    pc += n as usize;
                    continue;
                }
                Bc::Const { dst, idx } => do_const!(dst, idx),
                Bc::Bin { op, ty, dst, a, b } => do_bin!(op, ty, dst, a, b),
                Bc::Icmp { op, ty, dst, a, b } => do_icmp!(op, ty, dst, a, b),
                Bc::Fcmp { op, dst, a, b } => {
                    clock += cost_alu;
                    let x = f64::from_bits(rs.rd(base, a));
                    let y = f64::from_bits(rs.rd(base, b));
                    rs.wr(base, dst, exec_fcmp(op, x, y) as u64);
                }
                Bc::Cast {
                    op,
                    from,
                    to,
                    dst,
                    a,
                } => {
                    clock += cost_alu;
                    rs.wr(base, dst, exec_cast(op, rs.rd(base, a), from, to));
                    if SAN {
                        rs.set_cov(base, dst, rs.cov(base, a));
                    }
                }
                Bc::Alloca { dst, size, align } => {
                    let top = self.stack_top.next_multiple_of(align.max(1) as u64);
                    if top + size as u64 > self.stack.len() as u64 {
                        bail!(Trap::StackOverflow);
                    }
                    rs.wr(base, dst, STACK_BASE + top);
                    self.stack_top = top + size as u64;
                    if SAN {
                        rs.set_cov(base, dst, shadow::STABLE);
                    }
                }
                Bc::Load { dst, ptr, ty } => do_load!(dst, ptr, ty, pc),
                Bc::Store { ptr, val, ty } => do_store!(ptr, val, ty, pc),
                Bc::Gep {
                    dst,
                    base: b,
                    index,
                    scale,
                    disp,
                } => do_gep!(dst, b, index, scale, disp),
                Bc::GepLoad {
                    dst,
                    base: b,
                    index,
                    scale,
                    disp,
                } => {
                    do_gep!(dst, b, index, scale, disp);
                    fuel_step!();
                    second!(Bc::Load { dst, ptr, ty } => do_load!(dst, ptr, ty, pc + 1));
                    pc += 2;
                    continue;
                }
                Bc::GepStore {
                    dst,
                    base: b,
                    index,
                    scale,
                    disp,
                } => {
                    do_gep!(dst, b, index, scale, disp);
                    fuel_step!();
                    second!(Bc::Store { ptr, val, ty } => do_store!(ptr, val, ty, pc + 1));
                    pc += 2;
                    continue;
                }
                Bc::Add64 { dst, a, b } => do_alu64!(dst, a, b, u64::wrapping_add),
                Bc::Sub64 { dst, a, b } => do_alu64!(dst, a, b, u64::wrapping_sub),
                Bc::Mul64 { dst, a, b } => do_alu64!(dst, a, b, u64::wrapping_mul),
                Bc::And64 { dst, a, b } => do_alu64!(dst, a, b, |x, y| x & y),
                Bc::Or64 { dst, a, b } => do_alu64!(dst, a, b, |x, y| x | y),
                Bc::Xor64 { dst, a, b } => do_alu64!(dst, a, b, |x, y| x ^ y),
                Bc::Shl64 { dst, a, b } => {
                    do_alu64!(dst, a, b, |x: u64, y: u64| x.wrapping_shl(y as u32 & 63))
                }
                Bc::IcmpBranch { op, ty, dst, a, b } => {
                    do_icmp!(op, ty, dst, a, b);
                    fuel_step!();
                    second!(Bc::Branch { cond, then_target, else_target, then_edge, else_edge }
                        => do_branch!(cond, then_target, else_target, then_edge, else_edge));
                }
                Bc::Call {
                    dst,
                    func,
                    args,
                    nargs,
                } => {
                    clock += cost_call;
                    let callee = FuncId(func);
                    let epoch = self.kill_epoch;
                    let cbase = fend;
                    rs.push_frame::<SAN>(cbase, prog.funcs[callee.index()].nregs as usize);
                    for i in 0..nargs as usize {
                        let s = prog.arg_pool[args as usize + i];
                        rs.wr(cbase, i as u32, rs.rd(base, s));
                        if SAN {
                            // Entry covers, written in place of the
                            // tree-walker's `arg_cov` staging vector.
                            rs.set_cov(cbase, i as u32, rs.cov(base, s));
                        }
                    }
                    flush!();
                    let r = match self.exec_frame::<SAN>(prog, callee, cbase, rs) {
                        Ok(v) => v,
                        Err(e) => return Err(e),
                    };
                    reload!();
                    rs.wr(base, dst, r);
                    if SAN {
                        if self.kill_epoch != epoch {
                            kill_custody(&mut rs.cov[base..fend]);
                        }
                        rs.set_cov(
                            base,
                            dst,
                            std::mem::replace(&mut self.ret_cov, shadow::NONE),
                        );
                    }
                }
                Bc::Guard {
                    dst,
                    ptr,
                    write,
                    site,
                } => {
                    let p = rs.rd(base, ptr);
                    let intr = if write {
                        Intrinsic::GuardWrite
                    } else {
                        Intrinsic::GuardRead
                    };
                    flush!();
                    let r = match self.exec_intrinsic(intr, &[p], site) {
                        Ok(v) => v,
                        Err(e) => return Err(e),
                    };
                    reload!();
                    rs.wr(base, dst, r);
                    if SAN {
                        rs.set_cov(base, dst, shadow::CUSTODY);
                        if rs.cov(base, ptr) == shadow::NONE {
                            rs.set_cov(base, ptr, shadow::CUSTODY);
                        }
                    }
                }
                Bc::ChunkDeref {
                    dst,
                    handle,
                    ptr,
                    site,
                } => {
                    let h = rs.rd(base, handle);
                    let p = rs.rd(base, ptr);
                    flush!();
                    let r = match self.exec_intrinsic(Intrinsic::ChunkDeref, &[h, p], site) {
                        Ok(v) => v,
                        Err(e) => return Err(e),
                    };
                    reload!();
                    rs.wr(base, dst, r);
                    if SAN {
                        rs.set_cov(base, dst, shadow::CUSTODY);
                        if rs.cov(base, ptr) == shadow::NONE {
                            rs.set_cov(base, ptr, shadow::CUSTODY);
                        }
                    }
                }
                Bc::Intr {
                    dst,
                    intr,
                    args,
                    nargs,
                    site,
                } => {
                    let mut buf = [0u64; 3];
                    let astart = args as usize;
                    for (i, slot) in buf.iter_mut().enumerate().take(nargs as usize) {
                        *slot = rs.rd(base, prog.arg_pool[astart + i]);
                    }
                    flush!();
                    let r = match self.exec_intrinsic(intr, &buf[..nargs as usize], site) {
                        Ok(v) => v,
                        Err(e) => return Err(e),
                    };
                    reload!();
                    rs.wr(base, dst, r);
                    if SAN {
                        match intr {
                            Intrinsic::GuardRead | Intrinsic::GuardWrite => {
                                rs.set_cov(base, dst, shadow::CUSTODY);
                                if nargs >= 1 {
                                    let s = prog.arg_pool[astart];
                                    if rs.cov(base, s) == shadow::NONE {
                                        rs.set_cov(base, s, shadow::CUSTODY);
                                    }
                                }
                            }
                            Intrinsic::ChunkDeref => {
                                rs.set_cov(base, dst, shadow::CUSTODY);
                                if nargs >= 2 {
                                    let s = prog.arg_pool[astart + 1];
                                    if rs.cov(base, s) == shadow::NONE {
                                        rs.set_cov(base, s, shadow::CUSTODY);
                                    }
                                }
                            }
                            Intrinsic::Malloc | Intrinsic::Calloc => {
                                kill_custody(&mut rs.cov[base..fend]);
                                self.kill_epoch += 1;
                                rs.set_cov(base, dst, shadow::STABLE);
                            }
                            _ => {
                                kill_custody(&mut rs.cov[base..fend]);
                                self.kill_epoch += 1;
                            }
                        }
                    }
                }
                Bc::GlobalAddr { dst, global } => {
                    rs.wr(
                        base,
                        dst,
                        GLOBAL_BASE + self.global_offsets[global as usize],
                    );
                    if SAN {
                        rs.set_cov(base, dst, shadow::STABLE);
                    }
                }
                Bc::Select {
                    dst,
                    cond,
                    tval,
                    fval,
                } => {
                    clock += cost_alu;
                    let taken = if rs.rd(base, cond) != 0 { tval } else { fval };
                    rs.wr(base, dst, rs.rd(base, taken));
                    if SAN {
                        rs.set_cov(base, dst, rs.cov(base, taken));
                    }
                }
                Bc::Jump { target, edge } => {
                    clock += cost_br;
                    self.take_bc_edge::<SAN>(prog, fid, edge, base, bf.nblocks, rs);
                    pc = target as usize;
                    continue;
                }
                Bc::Branch {
                    cond,
                    then_target,
                    else_target,
                    then_edge,
                    else_edge,
                } => do_branch!(cond, then_target, else_target, then_edge, else_edge),
                Bc::Ret { val } => {
                    clock += cost_br;
                    self.stack_top = saved_stack;
                    if SAN {
                        self.ret_cov = if val == NO_REG {
                            shadow::NONE
                        } else {
                            rs.cov(base, val)
                        };
                    }
                    flush!();
                    return Ok(if val == NO_REG { 0 } else { rs.rd(base, val) });
                }
                Bc::Halt => bail!(Trap::Unreachable),
            }
            pc += 1;
        }
    }
}

// ----------------------------------------------------------------------
// Disassembly.
// ----------------------------------------------------------------------

impl Program {
    /// Disassembles every function; `label_of` resolves guard/chunk site
    /// keys to compiler labels (return `None` for the bare key form).
    pub fn disasm(&self, label_of: &dyn Fn(SiteKey) -> Option<String>) -> String {
        let mut out = String::new();
        for (i, _) in self.funcs.iter().enumerate() {
            out.push_str(&self.disasm_function(FuncId(i as u32), label_of));
        }
        out
    }

    /// Disassembles one function: offset, opcode, operand register slots,
    /// resolved branch offsets, and site labels.
    pub fn disasm_function(
        &self,
        fid: FuncId,
        label_of: &dyn Fn(SiteKey) -> Option<String>,
    ) -> String {
        let bf = &self.funcs[fid.index()];
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fn @f{} {}: {} insts, {} blocks, {} regs",
            fid.0,
            bf.name,
            bf.code.len(),
            bf.nblocks,
            bf.nregs
        );
        let site_str = |site: SiteKey| {
            label_of(site)
                .map(|l| format!("{site} \"{l}\""))
                .unwrap_or_else(|| site.to_string())
        };
        let edge_str = |edge: u32| {
            let e = self.edges[edge as usize];
            if e.ncopies == 0 {
                return String::new();
            }
            let copies: Vec<String> = self.copy_pool
                [e.copies as usize..(e.copies + e.ncopies) as usize]
                .iter()
                .map(|&(d, s)| format!("r{d}<-r{s}"))
                .collect();
            format!(" [phi {}]", copies.join(", "))
        };
        for (pc, op) in bf.code.iter().enumerate() {
            // Block headers, empty blocks included (they share the next
            // block's offset, so several headers may stack up).
            for (b, &boff) in bf.block_offsets.iter().enumerate() {
                if boff as usize == pc {
                    let _ = writeln!(out, "  bb{b}:");
                }
            }
            let text = match *op {
                Bc::Retire => "retire".to_string(),
                Bc::Const { dst, idx } => format!(
                    "const      r{dst} <- pool[{idx}] (={})",
                    self.pool[idx as usize] as i64
                ),
                Bc::Bin { op, ty, dst, a, b } => {
                    format!("bin.{op:?}    r{dst} <- r{a}, r{b} ({ty:?})").to_lowercase()
                }
                Bc::Icmp { op, ty, dst, a, b } => {
                    format!("icmp.{op:?}   r{dst} <- r{a}, r{b} ({ty:?})").to_lowercase()
                }
                Bc::Fcmp { op, dst, a, b } => {
                    format!("fcmp.{op:?}   r{dst} <- r{a}, r{b}").to_lowercase()
                }
                Bc::Cast {
                    op,
                    from,
                    to,
                    dst,
                    a,
                } => format!("cast.{op:?}  r{dst} <- r{a} ({from:?}->{to:?})").to_lowercase(),
                Bc::Alloca { dst, size, align } => {
                    format!("alloca     r{dst} <- {size}b align {align}")
                }
                Bc::Load { dst, ptr, ty } => {
                    format!("load.{ty:?}   r{dst} <- [r{ptr}]").to_lowercase()
                }
                Bc::Store { ptr, val, ty } => {
                    format!("store.{ty:?}  [r{ptr}] <- r{val}").to_lowercase()
                }
                Bc::Gep {
                    dst,
                    base,
                    index,
                    scale,
                    disp,
                } => format!("gep        r{dst} <- r{base} + r{index}*{scale} + {disp}"),
                Bc::Call {
                    dst,
                    func,
                    args,
                    nargs,
                } => {
                    let slots: Vec<String> = self.arg_pool
                        [args as usize..(args as usize + nargs as usize)]
                        .iter()
                        .map(|s| format!("r{s}"))
                        .collect();
                    format!(
                        "call       r{dst} <- @f{func} {}({})",
                        self.funcs[func as usize].name,
                        slots.join(", ")
                    )
                }
                Bc::Guard {
                    dst,
                    ptr,
                    write,
                    site,
                } => format!(
                    "guard.{}   r{dst} <- r{ptr}  ; site {}",
                    if write { "wr" } else { "rd" },
                    site_str(site)
                ),
                Bc::ChunkDeref {
                    dst,
                    handle,
                    ptr,
                    site,
                } => format!(
                    "chunk.drf  r{dst} <- r{handle}, r{ptr}  ; site {}",
                    site_str(site)
                ),
                Bc::Intr {
                    dst,
                    intr,
                    args,
                    nargs,
                    ..
                } => {
                    let slots: Vec<String> = self.arg_pool
                        [args as usize..(args as usize + nargs as usize)]
                        .iter()
                        .map(|s| format!("r{s}"))
                        .collect();
                    format!("intr       r{dst} <- {intr:?}({})", slots.join(", ")).to_lowercase()
                }
                Bc::GlobalAddr { dst, global } => format!("gaddr      r{dst} <- @g{global}"),
                Bc::Select {
                    dst,
                    cond,
                    tval,
                    fval,
                } => format!("select     r{dst} <- r{cond} ? r{tval} : r{fval}"),
                Bc::Jump { target, edge } => {
                    let e = self.edges[edge as usize];
                    format!("jump       -> {target} (bb{}){}", e.to, edge_str(edge))
                }
                Bc::Branch {
                    cond,
                    then_target,
                    else_target,
                    then_edge,
                    else_edge,
                } => {
                    let te = self.edges[then_edge as usize];
                    let ee = self.edges[else_edge as usize];
                    format!(
                        "branch     r{cond} ? -> {then_target} (bb{}){} : -> {else_target} (bb{}){}",
                        te.to,
                        edge_str(then_edge),
                        ee.to,
                        edge_str(else_edge)
                    )
                }
                Bc::Ret { val } => {
                    if val == NO_REG {
                        "ret".to_string()
                    } else {
                        format!("ret        r{val}")
                    }
                }
                Bc::Halt => "halt       (unreachable)".to_string(),
                // Fused twins: the first constituent's text plus a `+next`
                // marker; the second constituent prints on its own line.
                Bc::GepLoad {
                    dst,
                    base,
                    index,
                    scale,
                    disp,
                } => format!("gep+load   r{dst} <- r{base} + r{index}*{scale} + {disp}"),
                Bc::GepStore {
                    dst,
                    base,
                    index,
                    scale,
                    disp,
                } => format!("gep+store  r{dst} <- r{base} + r{index}*{scale} + {disp}"),
                Bc::IcmpBranch { op, ty, dst, a, b } => {
                    format!("icmp+br.{op:?}  r{dst} <- r{a}, r{b} ({ty:?})").to_lowercase()
                }
                Bc::Add64 { dst, a, b } => format!("add64      r{dst} <- r{a}, r{b}"),
                Bc::Sub64 { dst, a, b } => format!("sub64      r{dst} <- r{a}, r{b}"),
                Bc::Mul64 { dst, a, b } => format!("mul64      r{dst} <- r{a}, r{b}"),
                Bc::And64 { dst, a, b } => format!("and64      r{dst} <- r{a}, r{b}"),
                Bc::Or64 { dst, a, b } => format!("or64       r{dst} <- r{a}, r{b}"),
                Bc::Xor64 { dst, a, b } => format!("xor64      r{dst} <- r{a}, r{b}"),
                Bc::Shl64 { dst, a, b } => format!("shl64      r{dst} <- r{a}, r{b}"),
                Bc::RetireRun { n } => format!("retire.run x{n}"),
            };
            let (_, v) = bf.pos[pc];
            let _ = writeln!(out, "    {pc:>4}  {text:<56} ; %{v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ExecEngine;
    use crate::memsys::LocalMem;
    use tfm_ir::{FunctionBuilder, Signature};
    use trackfm::CostModel;

    fn machine(m: &Module) -> Machine<'_, LocalMem> {
        Machine::new(m, LocalMem::new(1 << 20), CostModel::default(), 1 << 20)
    }

    /// Runs `m` under both engines and asserts bit-identical outcomes.
    fn both(m: &Module, func: &str, args: &[u64]) -> Result<crate::stats::RunResult, Trap> {
        let mut tw = machine(m);
        let a = tw.run(func, args);
        let mut bc = machine(m);
        bc.set_engine(ExecEngine::Bytecode);
        let b = bc.run(func, args);
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.ret, y.ret);
                assert_eq!(x.stats, y.stats);
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("engines disagree: {a:?} vs {b:?}"),
        }
        b
    }

    #[test]
    fn constant_pool_dedups_across_functions_and_kinds() {
        let mut m = Module::new("t");
        for name in ["f", "g"] {
            let id = m.declare_function(name, Signature::new(vec![], Some(Type::I64)));
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let x = b.iconst(Type::I64, 7);
            let y = b.iconst(Type::I64, 7); // duplicate within the function
            let z = b.iconst(Type::I64, 9);
            let s = b.binop(BinOp::Add, x, y);
            let s2 = b.binop(BinOp::Add, s, z);
            b.ret(Some(s2));
        }
        m.verify().unwrap();
        let prog = lower_module(&m);
        // 7 and 9 each pooled once, across both functions.
        assert_eq!(prog.pool, vec![7, 9]);
        // A float with the same bit pattern as an int shares the entry.
        let mut m2 = Module::new("t2");
        let id = m2.declare_function("f", Signature::new(vec![], Some(Type::F64)));
        {
            let mut b = FunctionBuilder::new(m2.function_mut(id));
            let bits = f64::from_bits(7);
            let x = b.fconst(bits);
            let _ = b.iconst(Type::I64, 7);
            b.ret(Some(x));
        }
        let prog2 = lower_module(&m2);
        assert_eq!(prog2.pool, vec![7]);
        both(&m, "f", &[]).unwrap();
    }

    #[test]
    fn branch_offsets_resolve_forward_and_backward() {
        // A loop: the back edge's target offset is *behind* the jump, the
        // exit branch's ahead — both must land exactly on the block starts.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |_b, _i| {});
            b.ret(Some(n));
        }
        m.verify().unwrap();
        let prog = lower_module(&m);
        let bf = &prog.funcs[0];
        for op in &bf.code {
            match *op {
                Bc::Jump { target, .. } => {
                    assert!(bf.block_offsets.contains(&target));
                }
                Bc::Branch {
                    then_target,
                    else_target,
                    ..
                } => {
                    assert!(bf.block_offsets.contains(&then_target));
                    assert!(bf.block_offsets.contains(&else_target));
                }
                _ => {}
            }
        }
        assert_eq!(both(&m, "f", &[13]).unwrap().ret, 13);
    }

    #[test]
    fn fallthrough_shaped_jump_targets_the_next_offset() {
        // `bb0: br bb1` where bb1 is lexically next: the lowered jump's
        // target must equal its own pc + 1 (a fallthrough in offset terms),
        // and execution still applies the edge (cost + phis).
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let pre = b.current_block();
            let one = b.iconst(Type::I64, 1);
            let next = b.create_block();
            b.br(next);
            b.switch_to_block(next);
            let p = b.phi(Type::I64, &[(pre, one)]);
            b.ret(Some(p));
        }
        m.verify().unwrap();
        let prog = lower_module(&m);
        let bf = &prog.funcs[0];
        let jump_pc = bf
            .code
            .iter()
            .position(|op| matches!(op, Bc::Jump { .. }))
            .unwrap();
        match bf.code[jump_pc] {
            Bc::Jump { target, edge } => {
                assert_eq!(target as usize, jump_pc + 1, "fallthrough shape");
                assert_eq!(prog.edges[edge as usize].ncopies, 1, "carries the phi");
            }
            _ => unreachable!(),
        }
        assert_eq!(both(&m, "f", &[]).unwrap().ret, 1);
    }

    #[test]
    fn phi_swap_on_critical_edge_copies_in_parallel() {
        // Two phis swapping each other's values every iteration: the edge
        // copies must read both sources before writing either — a
        // sequential copy would collapse them to one value.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            let one = b.iconst(Type::I64, 1);
            let two = b.iconst(Type::I64, 2);
            let pre = b.current_block();
            let header = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            b.br(header);
            b.switch_to_block(header);
            let i = b.phi(Type::I64, &[(pre, zero)]);
            let x = b.phi(Type::I64, &[(pre, one)]);
            let y = b.phi(Type::I64, &[(pre, two)]);
            let c = b.icmp(CmpOp::Slt, i, n);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let i2 = b.binop(BinOp::Add, i, one);
            b.add_phi_incoming(i, body, i2);
            b.add_phi_incoming(x, body, y); // swap
            b.add_phi_incoming(y, body, x);
            b.br(header);
            b.switch_to_block(exit);
            let eight = b.iconst(Type::I64, 8);
            let hi = b.binop(BinOp::Shl, x, eight);
            let packed = b.binop(BinOp::Or, hi, y);
            b.ret(Some(packed));
        }
        m.verify().unwrap();
        // Odd iteration count: x and y finish swapped (x=2, y=1).
        assert_eq!(both(&m, "f", &[3]).unwrap().ret, (2 << 8) | 1);
        // Even count: back to the initial assignment.
        assert_eq!(both(&m, "f", &[4]).unwrap().ret, (1 << 8) | 2);
    }

    #[test]
    fn empty_blocks_lower_to_shared_offsets() {
        // Builder-created-but-unused blocks survive in the block list; the
        // lowering must give them offsets (the next block's) and neither
        // panic nor disturb neighbors.
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let _orphan = b.create_block(); // never filled, never targeted
            let next = b.create_block();
            b.br(next);
            b.switch_to_block(next);
            let one = b.iconst(Type::I64, 1);
            b.ret(Some(one));
        }
        let prog = lower_module(&m);
        let bf = &prog.funcs[0];
        // bb1 is the empty orphan: its offset equals bb2's.
        assert_eq!(bf.block_offsets[1], bf.block_offsets[2]);
        assert_eq!(both(&m, "f", &[]).unwrap().ret, 1);
        // The disassembly stacks both block headers at the shared offset.
        let dis = prog.disasm(&|_| None);
        assert!(dis.contains("bb1:\n  bb2:"), "{dis}");
    }

    #[test]
    fn disasm_lists_opcodes_slots_offsets_and_sites() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::Ptr], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let p = b.param(0);
            let g = b.intrinsic(Intrinsic::GuardRead, vec![p]);
            let x = b.load(Type::I64, g);
            b.ret(Some(x));
        }
        m.verify().unwrap();
        let prog = lower_module(&m);
        let dis = prog.disasm(&|site| (site.value() == 1).then(|| "f:v1:read".to_string()));
        assert!(dis.contains("fn @f0 f:"), "{dis}");
        assert!(dis.contains("guard.rd"), "{dis}");
        assert!(dis.contains("\"f:v1:read\""), "{dis}");
        assert!(dis.contains("load.i64"), "{dis}");
        assert!(dis.contains("ret        r2"), "{dis}");
    }

    #[test]
    fn dispatched_insts_match_retired_instructions() {
        let mut m = Module::new("t");
        let id = m.declare_function("f", Signature::new(vec![Type::I64], Some(Type::I64)));
        {
            let mut b = FunctionBuilder::new(m.function_mut(id));
            let n = b.param(0);
            let zero = b.iconst(Type::I64, 0);
            b.counted_loop(zero, n, 1, |_b, _i| {});
            b.ret(Some(n));
        }
        m.verify().unwrap();
        let mut mach = machine(&m);
        mach.set_engine(ExecEngine::Bytecode);
        let r = mach.run("f", &[100]).unwrap();
        assert_eq!(r.engine.lowered_fns, 1);
        assert_eq!(r.engine.dispatched_insts, r.stats.instructions);
        // A second run reuses the lowered program but keeps dispatching.
        let r2 = mach.run("f", &[100]).unwrap();
        assert_eq!(r2.engine.lowered_fns, 1, "lowering happens once");
        assert_eq!(r2.engine.dispatched_insts, r2.stats.instructions);
        // The tree-walker reports all-zero engine stats.
        let mut tw = machine(&m);
        let r3 = tw.run("f", &[100]).unwrap();
        assert_eq!(r3.engine, crate::stats::EngineStats::default());
    }
}
