//! Deterministic pseudo-random number generation.
//!
//! SplitMix64 (Steele, Lea & Flood) — a tiny, statistically solid 64-bit
//! generator that keeps workload traces reproducible across platforms
//! without pulling in an external crate. Not cryptographic; strictly for
//! trace generation and randomized tests.

/// SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction (Lemire); bias is negligible for the
        // trace sizes used here and determinism is what matters.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_outputs() {
        // Reference values for seed 0 from the SplitMix64 reference
        // implementation.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..1000 {
            let x = r.next_below(10);
            assert!(x < 10);
            seen_low |= x < 3;
            seen_high |= x > 6;
            let y = r.next_range(-5, 5);
            assert!((-5..=5).contains(&y));
        }
        assert!(seen_low && seen_high, "draws are not spread out");
    }
}
