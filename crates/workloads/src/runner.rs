//! Executes [`WorkloadSpec`]s under each of the paper's four systems.
//!
//! The flow mirrors the paper's methodology: build the program once, run the
//! *untransformed* binary on the local-only and Fastswap systems, run the
//! *TrackFM-compiled* binary on the TrackFM and AIFM systems, always with
//! warm-start residency (what in-app initialization leaves behind under the
//! budget) and counters reset after setup.

use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use tfm_analysis::profile::Profile;
use tfm_fastswap::PagerConfig;
use tfm_ir::Module;
use tfm_net::LinkParams;
use tfm_runtime::{FarMemoryConfig, PrefetchConfig};
use tfm_sim::{FastswapMem, HybridMem, LocalMem, Machine, MemorySystem, RunResult, TrackFmMem};
use trackfm::{CompileReport, CompilerOptions, CostModel, TrackFmCompiler};

/// Which far-memory system executes the workload.
#[derive(Copy, Clone, Debug)]
pub enum SystemKind {
    /// All memory local (normalization baseline).
    Local,
    /// Fastswap: kernel paging, untransformed binary.
    Fastswap,
    /// TrackFM: compiler-transformed binary on the object runtime.
    TrackFm,
    /// AIFM: the same runtime with library-integration costs.
    Aifm,
    /// The §5 hybrid: compiler-chunked streams on the object runtime,
    /// guard-free raw accesses with kernel-style faults.
    Hybrid,
}

/// One experimental configuration.
#[derive(Copy, Clone, Debug)]
pub struct RunConfig {
    /// The system under test.
    pub system: SystemKind,
    /// Local memory as a fraction of the working set (the usual x-axis).
    pub local_fraction: f64,
    /// AIFM object size (TrackFM/AIFM systems).
    pub object_size: u64,
    /// Enable prefetching (TrackFM/AIFM systems).
    pub prefetch: bool,
    /// Prefetcher look-ahead depth in objects (TrackFM/AIFM systems).
    pub prefetch_depth: u32,
    /// Compiler options used when the system needs a transformed binary.
    pub compiler: CompilerOptions,
    /// The cycle cost model.
    pub cost: CostModel,
}

impl RunConfig {
    /// A TrackFM configuration with default compiler settings.
    pub fn trackfm(local_fraction: f64) -> Self {
        RunConfig {
            system: SystemKind::TrackFm,
            local_fraction,
            object_size: 4096,
            prefetch: true,
            prefetch_depth: PrefetchConfig::default().depth,
            compiler: CompilerOptions::default(),
            cost: CostModel::default(),
        }
    }

    /// A Fastswap configuration.
    pub fn fastswap(local_fraction: f64) -> Self {
        RunConfig {
            system: SystemKind::Fastswap,
            ..Self::trackfm(local_fraction)
        }
    }

    /// An AIFM configuration.
    pub fn aifm(local_fraction: f64) -> Self {
        RunConfig {
            system: SystemKind::Aifm,
            ..Self::trackfm(local_fraction)
        }
    }

    /// The §5 hybrid compiler+kernel configuration (chunk streams, no
    /// guards).
    pub fn hybrid(local_fraction: f64) -> Self {
        let mut cfg = RunConfig {
            system: SystemKind::Hybrid,
            ..Self::trackfm(local_fraction)
        };
        cfg.compiler.guards = false;
        cfg
    }

    /// The local-only baseline.
    pub fn local() -> Self {
        RunConfig {
            system: SystemKind::Local,
            ..Self::trackfm(1.0)
        }
    }

    /// Sets the object size (and keeps the compiler's view consistent).
    pub fn with_object_size(mut self, object_size: u64) -> Self {
        self.object_size = object_size;
        self.compiler.object_size = object_size;
        self
    }

    /// Toggles prefetching (compiler hints + runtime).
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self.compiler.prefetch = on;
        self
    }
}

/// The outcome of one run: results plus (for transformed binaries) the
/// compile report.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The execution result.
    pub result: RunResult,
    /// Compiler report, when a transformed binary ran.
    pub report: Option<CompileReport>,
}

fn far_config(spec: &WorkloadSpec, cfg: &RunConfig) -> FarMemoryConfig {
    FarMemoryConfig {
        heap_size: spec.heap_size(cfg.object_size),
        object_size: cfg.object_size,
        local_budget: spec.local_budget(cfg.local_fraction, cfg.object_size),
        link: LinkParams::tcp_25g(),
        prefetch: PrefetchConfig {
            enabled: cfg.prefetch,
            depth: cfg.prefetch_depth,
        },
    }
}

/// Runs `spec` under `cfg`, returning the result and any compile report.
///
/// # Panics
/// Panics if execution traps — workloads in this suite are expected to run
/// to completion under every system; a trap is a bug worth surfacing loudly.
pub fn execute(spec: &WorkloadSpec, cfg: &RunConfig) -> Outcome {
    execute_with_profile(spec, cfg, None)
}

/// [`execute`], with an optional profile for the compiler's
/// profile-guided chunking filter.
///
/// # Panics
/// See [`execute`].
pub fn execute_with_profile(
    spec: &WorkloadSpec,
    cfg: &RunConfig,
    profile: Option<&Profile>,
) -> Outcome {
    let heap = spec.heap_size(cfg.object_size);
    match cfg.system {
        SystemKind::Local => {
            let (result, _) = run_machine(spec, &spec.module, LocalMem::new(heap), cfg, heap, false);
            Outcome {
                result,
                report: None,
            }
        }
        SystemKind::Fastswap => {
            let pcfg = PagerConfig {
                local_budget: spec.local_budget(cfg.local_fraction, 4096),
                ..PagerConfig::default()
            };
            let (result, _) =
                run_machine(spec, &spec.module, FastswapMem::new(heap, pcfg), cfg, heap, false);
            Outcome {
                result,
                report: None,
            }
        }
        SystemKind::TrackFm | SystemKind::Aifm => {
            let mut module = spec.module.clone();
            let compiler = TrackFmCompiler::new(cfg.compiler);
            let report = compiler.compile(&mut module, profile);
            let fm_cfg = far_config(spec, cfg);
            let mem = match cfg.system {
                SystemKind::TrackFm => TrackFmMem::new(fm_cfg, cfg.cost),
                _ => TrackFmMem::new_aifm(fm_cfg, cfg.cost),
            };
            let (result, _) = run_machine(spec, &module, mem, cfg, heap, false);
            Outcome {
                result,
                report: Some(report),
            }
        }
        SystemKind::Hybrid => {
            let mut module = spec.module.clone();
            let mut copts = cfg.compiler;
            copts.guards = false;
            let compiler = TrackFmCompiler::new(copts);
            let report = compiler.compile(&mut module, profile);
            let mem = HybridMem::new(far_config(spec, cfg), cfg.cost);
            let (result, _) = run_machine(spec, &module, mem, cfg, heap, false);
            Outcome {
                result,
                report: Some(report),
            }
        }
    }
}

/// Collects an execution profile by running the unmodified program under
/// local memory with profiling enabled (the NOELLE profiling stage).
///
/// # Panics
/// Panics if the profiling run traps.
pub fn collect_profile(spec: &WorkloadSpec) -> Profile {
    let heap = spec.heap_size(4096);
    let mem = LocalMem::new(heap);
    let cfg = RunConfig::local();
    let mut machine = Machine::new(&spec.module, mem, cfg.cost, heap);
    machine.enable_profiling();
    let args = setup(spec, &mut machine, false);
    let r = machine
        .run("main", &args)
        .unwrap_or_else(|t| panic!("{}: profiling run trapped: {t}", spec.name));
    check_expected(spec, r.ret);
    machine.take_profile()
}

/// Runs with a *warm* start: setup fills inputs through the memory system
/// under the configured budget, so the state at t=0 is exactly what in-app
/// initialization would leave behind — the most recently written
/// budget-worth resident, everything else already evacuated (with a remote
/// copy). At a 100% budget nothing is remote, matching the paper's
/// local-only-converged right-hand side of every sweep.
fn run_machine<M: MemorySystem>(
    spec: &WorkloadSpec,
    module: &Module,
    mem: M,
    cfg: &RunConfig,
    heap: u64,
    cold: bool,
) -> (RunResult, ()) {
    let mut machine = Machine::new(module, mem, cfg.cost, heap);
    let args = setup(spec, &mut machine, cold);
    let r = machine
        .run("main", &args)
        .unwrap_or_else(|t| panic!("{}: execution trapped: {t}", spec.name));
    check_expected(spec, r.ret);
    (r, ())
}

fn check_expected(spec: &WorkloadSpec, ret: u64) {
    if let Some(want) = spec.expected {
        assert_eq!(
            ret, want,
            "{}: wrong result — transformation or runtime broke semantics",
            spec.name
        );
    }
}

/// Allocates and fills the spec's inputs; returns `main`'s argument list.
pub fn setup<M: MemorySystem>(
    spec: &WorkloadSpec,
    machine: &mut Machine<'_, M>,
    cold: bool,
) -> Vec<u64> {
    let mut ptrs = Vec::with_capacity(spec.inputs.len());
    for input in &spec.inputs {
        let ptr = machine.setup_alloc(input.byte_len().max(1));
        match input {
            InputData::U64(v) => machine.setup_write_u64s(ptr, v),
            InputData::F64(v) => machine.setup_write_f64s(ptr, v),
            InputData::U32(v) => machine.setup_write_u32s(ptr, v),
            InputData::Bytes(v) => machine.setup_write(ptr, v),
            InputData::Zeroed(n) => machine.setup_write(ptr, &vec![0u8; *n as usize]),
        }
        ptrs.push(ptr);
    }
    machine.finish_setup(cold);
    spec.args
        .iter()
        .map(|a| match a {
            ArgSpec::Input(i) => ptrs[*i],
            ArgSpec::Const(c) => *c as u64,
        })
        .collect()
}
