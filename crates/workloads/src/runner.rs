//! Executes [`WorkloadSpec`]s under each of the paper's four systems.
//!
//! The flow mirrors the paper's methodology: build the program once, run the
//! *untransformed* binary on the local-only and Fastswap systems, run the
//! *TrackFM-compiled* binary on the TrackFM and AIFM systems, always with
//! warm-start residency (what in-app initialization leaves behind under the
//! budget) and counters reset after setup.

use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use std::collections::HashMap;
use tfm_analysis::profile::Profile;
use tfm_fastswap::PagerConfig;
use tfm_ir::Module;
use tfm_net::{BackendSpec, FaultPlan, LinkParams};
use tfm_runtime::{FarMemoryConfig, PrefetchConfig, RetryPolicy};
use tfm_sim::{
    ExecEngine, FastswapMem, HybridMem, LocalMem, Machine, MemorySystem, RunResult, TrackFmMem,
};
use tfm_telemetry::{Json, RunReport, SiteKey, Telemetry, TelemetrySnapshot, TraceConfig};
use trackfm::{CompileReport, CompilerOptions, CostModel, TrackFmCompiler};

/// Which far-memory system executes the workload.
#[derive(Copy, Clone, Debug)]
pub enum SystemKind {
    /// All memory local (normalization baseline).
    Local,
    /// Fastswap: kernel paging, untransformed binary.
    Fastswap,
    /// TrackFM: compiler-transformed binary on the object runtime.
    TrackFm,
    /// AIFM: the same runtime with library-integration costs.
    Aifm,
    /// The §5 hybrid: compiler-chunked streams on the object runtime,
    /// guard-free raw accesses with kernel-style faults.
    Hybrid,
}

impl SystemKind {
    /// Stable lowercase name (report/figure labels).
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Local => "local",
            SystemKind::Fastswap => "fastswap",
            SystemKind::TrackFm => "trackfm",
            SystemKind::Aifm => "aifm",
            SystemKind::Hybrid => "hybrid",
        }
    }
}

/// One experimental configuration.
#[derive(Copy, Clone, Debug)]
pub struct RunConfig {
    /// The system under test.
    pub system: SystemKind,
    /// Local memory as a fraction of the working set (the usual x-axis).
    pub local_fraction: f64,
    /// AIFM object size (TrackFM/AIFM systems).
    pub object_size: u64,
    /// Enable prefetching (TrackFM/AIFM systems).
    pub prefetch: bool,
    /// Prefetcher look-ahead depth in objects (TrackFM/AIFM systems).
    pub prefetch_depth: u32,
    /// Compiler options used when the system needs a transformed binary.
    pub compiler: CompilerOptions,
    /// The cycle cost model.
    pub cost: CostModel,
    /// Record telemetry (trace events, histograms, guard-site attribution)
    /// during the measured phase. Off by default: the probes cost time.
    pub telemetry: bool,
    /// Causal span tracing + windowed timeline (implies telemetry when
    /// enabled). Off by default: tracing must be strictly pay-for-use.
    pub trace: TraceConfig,
    /// Fault-injection schedule for the link ([`FaultPlan::none`] = the
    /// flawless fabric of the paper's evaluation).
    pub faults: FaultPlan,
    /// Remote-memory topology: one node (the default) or N sharded nodes.
    pub backend: BackendSpec,
    /// Simulated worker cores for open-loop workloads (see
    /// [`crate::openloop`]). The closed-loop `execute` path ignores this;
    /// `1` keeps even open-loop runs on the synchronous single-machine
    /// path, bit-identical to every other run.
    pub cores: u32,
    /// Which execution engine interprets the program. Both engines produce
    /// bit-identical simulated results; the bytecode engine only runs
    /// faster in real time (see `tfm_sim::bytecode`).
    pub engine: ExecEngine,
}

impl RunConfig {
    /// A TrackFM configuration with default compiler settings.
    pub fn trackfm(local_fraction: f64) -> Self {
        RunConfig {
            system: SystemKind::TrackFm,
            local_fraction,
            object_size: 4096,
            prefetch: true,
            prefetch_depth: PrefetchConfig::default().depth,
            compiler: CompilerOptions::default(),
            cost: CostModel::default(),
            telemetry: false,
            trace: TraceConfig::default(),
            faults: FaultPlan::none(),
            backend: BackendSpec::SingleNode,
            cores: 1,
            engine: ExecEngine::TreeWalk,
        }
    }

    /// A Fastswap configuration.
    pub fn fastswap(local_fraction: f64) -> Self {
        RunConfig {
            system: SystemKind::Fastswap,
            ..Self::trackfm(local_fraction)
        }
    }

    /// An AIFM configuration.
    pub fn aifm(local_fraction: f64) -> Self {
        RunConfig {
            system: SystemKind::Aifm,
            ..Self::trackfm(local_fraction)
        }
    }

    /// The §5 hybrid compiler+kernel configuration (chunk streams, no
    /// guards).
    pub fn hybrid(local_fraction: f64) -> Self {
        let mut cfg = RunConfig {
            system: SystemKind::Hybrid,
            ..Self::trackfm(local_fraction)
        };
        cfg.compiler.guards = false;
        cfg
    }

    /// The local-only baseline.
    pub fn local() -> Self {
        RunConfig {
            system: SystemKind::Local,
            ..Self::trackfm(1.0)
        }
    }

    /// Sets the object size (and keeps the compiler's view consistent).
    pub fn with_object_size(mut self, object_size: u64) -> Self {
        self.object_size = object_size;
        self.compiler.object_size = object_size;
        self
    }

    /// Toggles prefetching (compiler hints + runtime).
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self.compiler.prefetch = on;
        self
    }

    /// Toggles telemetry recording for the measured phase.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Sets the span-tracing configuration (pass [`TraceConfig::on`] to
    /// enable, or a tuned config for custom arena/bucket sizes).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Enables span tracing with the default arena and bucket sizes.
    pub fn with_tracing(self) -> Self {
        self.with_trace(TraceConfig::on())
    }

    /// Attaches a fault-injection schedule to the run's link.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Selects the remote-memory topology.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Shards far memory over `n` remote nodes (hashed placement).
    pub fn with_shards(self, n: u32) -> Self {
        self.with_backend(BackendSpec::sharded(n))
    }

    /// Sets the simulated worker-core count for open-loop workloads
    /// (floored to 1; closed-loop runs are unaffected).
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Selects the execution engine ([`ExecEngine::Bytecode`] for fast
    /// wall-clock sweeps; simulated results are identical either way).
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Keeps `r` copies of every object across the sharded backend (crash
    /// failover; `r = 1` is free, and the single-node backend is
    /// unaffected). `r` may not exceed the shard count — the run panics
    /// when it builds its runtime.
    pub fn with_replicas(mut self, r: u32) -> Self {
        self.backend = self.backend.with_replicas(r);
        self
    }
}

/// The outcome of one run: results plus (for transformed binaries) the
/// compile report.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The execution result.
    pub result: RunResult,
    /// Compiler report, when a transformed binary ran.
    pub report: Option<CompileReport>,
    /// Telemetry snapshot, when [`RunConfig::telemetry`] was on.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// The far-memory configuration a run of `spec` under `cfg` uses. Public so
/// identity harnesses (tests, benches) can drive a raw [`Machine`] with
/// exactly the runner's setup.
pub fn far_config(spec: &WorkloadSpec, cfg: &RunConfig) -> FarMemoryConfig {
    FarMemoryConfig {
        heap_size: spec.heap_size(cfg.object_size),
        object_size: cfg.object_size,
        local_budget: spec.local_budget(cfg.local_fraction, cfg.object_size),
        link: LinkParams::tcp_25g(),
        prefetch: PrefetchConfig {
            enabled: cfg.prefetch,
            depth: cfg.prefetch_depth,
        },
        faults: cfg.faults,
        retry: RetryPolicy::default(),
        backend: cfg.backend,
    }
}

/// Runs `spec` under `cfg`, returning the result and any compile report.
///
/// # Panics
/// Panics if execution traps — workloads in this suite are expected to run
/// to completion under every system; a trap is a bug worth surfacing loudly.
pub fn execute(spec: &WorkloadSpec, cfg: &RunConfig) -> Outcome {
    execute_with_profile(spec, cfg, None)
}

/// [`execute`], with an optional profile for the compiler's
/// profile-guided chunking filter.
///
/// # Panics
/// See [`execute`].
pub fn execute_with_profile(
    spec: &WorkloadSpec,
    cfg: &RunConfig,
    profile: Option<&Profile>,
) -> Outcome {
    let heap = spec.heap_size(cfg.object_size);
    match cfg.system {
        SystemKind::Local => {
            let (result, telemetry) =
                run_machine(spec, &spec.module, LocalMem::new(heap), cfg, heap, false);
            Outcome {
                result,
                report: None,
                telemetry,
            }
        }
        SystemKind::Fastswap => {
            let pcfg = PagerConfig {
                local_budget: spec.local_budget(cfg.local_fraction, 4096),
                faults: cfg.faults,
                backend: cfg.backend,
                ..PagerConfig::default()
            };
            let (result, telemetry) = run_machine(
                spec,
                &spec.module,
                FastswapMem::new(heap, pcfg),
                cfg,
                heap,
                false,
            );
            Outcome {
                result,
                report: None,
                telemetry,
            }
        }
        SystemKind::TrackFm | SystemKind::Aifm => {
            let mut module = spec.module.clone();
            let compiler = TrackFmCompiler::new(cfg.compiler);
            let report = compiler.compile(&mut module, profile);
            let fm_cfg = far_config(spec, cfg);
            let mem = match cfg.system {
                SystemKind::TrackFm => TrackFmMem::new(fm_cfg, cfg.cost),
                _ => TrackFmMem::new_aifm(fm_cfg, cfg.cost),
            };
            let (result, mut telemetry) = run_machine(spec, &module, mem, cfg, heap, false);
            attribute_elision(&report, &mut telemetry);
            attribute_motion(&report, &mut telemetry);
            Outcome {
                result,
                report: Some(report),
                telemetry,
            }
        }
        SystemKind::Hybrid => {
            let mut module = spec.module.clone();
            let mut copts = cfg.compiler;
            copts.guards = false;
            let compiler = TrackFmCompiler::new(copts);
            let report = compiler.compile(&mut module, profile);
            let mem = HybridMem::new(far_config(spec, cfg), cfg.cost);
            let (result, telemetry) = run_machine(spec, &module, mem, cfg, heap, false);
            Outcome {
                result,
                report: Some(report),
                telemetry,
            }
        }
    }
}

/// Folds compile-time redundant-guard-elimination attribution into the
/// run's site table: each surviving site's `elided` counter records how
/// many duplicate guards were statically folded into it, so the per-site
/// report shows which hot sites absorbed deleted checks.
pub(crate) fn attribute_elision(report: &CompileReport, telemetry: &mut Option<TelemetrySnapshot>) {
    if let Some(snap) = telemetry {
        for s in &report.elision.sites {
            snap.sites
                .stats_mut(SiteKey::new(s.func, s.survivor))
                .elided += s.absorbed as u64;
        }
    }
}

/// Folds compile-time guard-motion attribution into the run's site table:
/// each hoisted guard's `hoisted` counter records how many loop levels it
/// climbed, and cross-block read→write folds count into the survivor's
/// `elided` like elision's same-block folds do.
pub(crate) fn attribute_motion(report: &CompileReport, telemetry: &mut Option<TelemetrySnapshot>) {
    if let Some(snap) = telemetry {
        for s in &report.motion.sites {
            let stats = snap.sites.stats_mut(SiteKey::new(s.func, s.value));
            stats.hoisted = stats.hoisted.max(s.levels as u64);
        }
        for s in &report.motion.folds {
            snap.sites
                .stats_mut(SiteKey::new(s.func, s.survivor))
                .elided += s.absorbed as u64;
        }
    }
}

/// [`execute`] with telemetry forced on, returning the outcome together
/// with its assembled [`RunReport`].
///
/// # Panics
/// See [`execute`].
pub fn execute_with_report(spec: &WorkloadSpec, cfg: &RunConfig) -> (Outcome, RunReport) {
    let cfg = cfg.with_telemetry(true);
    let outcome = execute(spec, &cfg);
    let report = build_report(spec, &cfg, &outcome);
    (outcome, report)
}

/// Assembles the unified [`RunReport`] for one finished run: subsystem
/// counter sections, telemetry histograms, the guard-site table (labeled
/// via the compile report, when one exists), and event totals.
pub fn build_report(spec: &WorkloadSpec, cfg: &RunConfig, outcome: &Outcome) -> RunReport {
    let mut rep = RunReport::new(&spec.name, cfg.system.name());
    rep.push_meta("local_fraction", cfg.local_fraction);
    rep.push_meta("object_size", cfg.object_size);
    rep.push_meta("prefetch", cfg.prefetch);
    if cfg.faults.is_active() {
        rep.push_meta("faults", cfg.faults);
    }
    if !cfg.backend.is_single() {
        rep.push_meta("backend", cfg.backend);
    }
    // Engine visibility is gated on actual bytecode activity so tree-walk
    // reports stay byte-identical to their historical form.
    if outcome.result.engine.lowered_fns > 0 {
        rep.push_meta("engine", "bytecode");
    }
    rep.push_section(&outcome.result.stats);
    if outcome.result.engine.lowered_fns > 0 {
        rep.push_section(&outcome.result.engine);
    }
    if let Some(rt) = &outcome.result.runtime {
        rep.push_section(rt);
    }
    if let Some(p) = &outcome.result.pager {
        rep.push_section(p);
    }
    if let Some(t) = &outcome.result.transfers {
        rep.push_section(t);
    }
    for (i, snap) in outcome.result.shards.iter().enumerate() {
        rep.push_named_section(format!("shard{i}"), snap);
    }
    if let Some(snap) = &outcome.telemetry {
        rep.push_histogram("fetch_latency_cycles", snap.fetch_latency.clone());
        rep.push_histogram("stall_cycles_per_access", snap.stall_per_access.clone());
        rep.push_histogram("residency_cycles", snap.residency.clone());
        rep.push_histogram("transfer_bytes", snap.transfer_bytes.clone());
        rep.push_histogram("retry_latency_cycles", snap.retry_latency.clone());
        let labels: HashMap<SiteKey, &str> = outcome
            .report
            .iter()
            .flat_map(|r| r.guard_sites.iter())
            .map(|s| (SiteKey::new(s.func, s.value), s.label.as_str()))
            .collect();
        rep.set_sites(&snap.sites, |k| labels.get(&k).map(|l| l.to_string()));
        rep.set_event_counts(|k| snap.count(k), snap.events_dropped);
        if let Some(trace) = &snap.trace {
            rep.set_timeline(trace.timeline.clone());
        }
    }
    rep
}

/// Resolves guard-site span args back to compiler labels, for the trace
/// exporters. The map is keyed by the packed [`SiteKey`] word the machine
/// stores in each span's `arg`.
fn site_labels(outcome: &Outcome) -> HashMap<u64, String> {
    outcome
        .report
        .iter()
        .flat_map(|r| r.guard_sites.iter())
        .map(|s| (SiteKey::new(s.func, s.value).0, s.label.clone()))
        .collect()
}

/// The run's span trace as a Chrome trace-event document (load in
/// `chrome://tracing` or <https://ui.perfetto.dev>), or `None` when the run
/// did not trace. Guard spans are labeled with the compiler's site labels.
pub fn chrome_trace(outcome: &Outcome) -> Option<Json> {
    let trace = outcome.telemetry.as_ref()?.trace.as_ref()?;
    let labels = site_labels(outcome);
    Some(trace.chrome_trace(&|site| labels.get(&site).cloned()))
}

/// The run's span trace as folded stacks (pipe into `flamegraph.pl` or any
/// folded-stack viewer), or `None` when the run did not trace.
pub fn flamegraph(outcome: &Outcome) -> Option<String> {
    let trace = outcome.telemetry.as_ref()?.trace.as_ref()?;
    let labels = site_labels(outcome);
    Some(trace.folded_stacks(&|site| labels.get(&site).cloned()))
}

/// Collects an execution profile by running the unmodified program under
/// local memory with profiling enabled (the NOELLE profiling stage).
///
/// # Panics
/// Panics if the profiling run traps.
pub fn collect_profile(spec: &WorkloadSpec) -> Profile {
    let heap = spec.heap_size(4096);
    let mem = LocalMem::new(heap);
    let cfg = RunConfig::local();
    let mut machine = Machine::new(&spec.module, mem, cfg.cost, heap);
    machine.enable_profiling();
    let args = setup(spec, &mut machine, false);
    let r = machine
        .run("main", &args)
        .unwrap_or_else(|t| panic!("{}: profiling run trapped: {t}", spec.name));
    check_expected(spec, r.ret);
    machine.take_profile()
}

/// Runs with a *warm* start: setup fills inputs through the memory system
/// under the configured budget, so the state at t=0 is exactly what in-app
/// initialization would leave behind — the most recently written
/// budget-worth resident, everything else already evacuated (with a remote
/// copy). At a 100% budget nothing is remote, matching the paper's
/// local-only-converged right-hand side of every sweep.
fn run_machine<M: MemorySystem>(
    spec: &WorkloadSpec,
    module: &Module,
    mem: M,
    cfg: &RunConfig,
    heap: u64,
    cold: bool,
) -> (RunResult, Option<TelemetrySnapshot>) {
    let mut machine = Machine::new(module, mem, cfg.cost, heap);
    machine.set_engine(cfg.engine);
    let args = setup(spec, &mut machine, cold);
    // Telemetry attaches only after setup: the report should describe the
    // measured phase, not in-app initialization.
    let tel = if cfg.trace.enabled {
        Telemetry::with_trace(cfg.trace)
    } else if cfg.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    machine.set_telemetry(tel.clone());
    let r = machine
        .run("main", &args)
        .unwrap_or_else(|t| panic!("{}: execution trapped: {t}", spec.name));
    check_expected(spec, r.ret);
    (r, tel.snapshot())
}

fn check_expected(spec: &WorkloadSpec, ret: u64) {
    if let Some(want) = spec.expected {
        assert_eq!(
            ret, want,
            "{}: wrong result — transformation or runtime broke semantics",
            spec.name
        );
    }
}

/// Allocates and fills the spec's inputs; returns `main`'s argument list.
pub fn setup<M: MemorySystem>(
    spec: &WorkloadSpec,
    machine: &mut Machine<'_, M>,
    cold: bool,
) -> Vec<u64> {
    let mut ptrs = Vec::with_capacity(spec.inputs.len());
    for input in &spec.inputs {
        let ptr = machine.setup_alloc(input.byte_len().max(1));
        match input {
            InputData::U64(v) => machine.setup_write_u64s(ptr, v),
            InputData::F64(v) => machine.setup_write_f64s(ptr, v),
            InputData::U32(v) => machine.setup_write_u32s(ptr, v),
            InputData::Bytes(v) => machine.setup_write(ptr, v),
            InputData::Zeroed(n) => machine.setup_write(ptr, &vec![0u8; *n as usize]),
        }
        ptrs.push(ptr);
    }
    machine.finish_setup(cold);
    spec.args
        .iter()
        .map(|a| match a {
            ArgSpec::Input(i) => ptrs[*i],
            ArgSpec::Const(c) => *c as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{self, StreamParams};
    use tfm_telemetry::Json;

    #[test]
    fn run_report_covers_stats_histograms_and_sites() {
        let spec = stream::sum(&StreamParams { elems: 64 << 10 });
        let cfg = RunConfig::trackfm(0.25);
        let (outcome, rep) = execute_with_report(&spec, &cfg);

        assert!(outcome.telemetry.is_some());
        // All subsystem sections a TrackFM run produces.
        assert!(rep.field("exec", "cycles").unwrap() > 0);
        assert!(rep.field("runtime", "remote_fetches").is_some());
        assert!(rep.field("transfer", "bytes_fetched").unwrap() > 0);
        // The five distributions, with the fetch path exercised.
        assert_eq!(rep.histograms.len(), 5);
        assert!(rep.histogram("fetch_latency_cycles").unwrap().count() > 0);
        assert!(rep.histogram("transfer_bytes").unwrap().count() > 0);
        // Site attribution resolved through the compile report's labels.
        assert!(!rep.sites.is_empty());
        assert!(
            rep.sites.iter().any(|s| s.label.contains(":v")),
            "labels should come from the compiler: {:?}",
            rep.sites.iter().map(|s| &s.label).collect::<Vec<_>>()
        );
        // Machine-readable form parses back.
        let doc = Json::parse(&rep.to_json().to_string_pretty()).unwrap();
        assert_eq!(doc.get("system").and_then(Json::as_str), Some("trackfm"));
        assert!(!doc.get("guard_sites").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn elision_attribution_reaches_the_site_table() {
        // The analytics aggregation loop read-modify-writes the same group
        // slot, so redundant-guard elimination folds its read guard into the
        // write guard — the surviving site must carry the elided count.
        let spec = crate::analytics::analytics(&crate::analytics::AnalyticsParams {
            rows: 4096,
            groups: 64,
        });
        let cfg = RunConfig::trackfm(0.5);
        let (outcome, rep) = execute_with_report(&spec, &cfg);
        let report = outcome.report.as_ref().unwrap();
        assert!(
            report.elision.eliminated > 0,
            "analytics should elide guards"
        );
        let attributed: u64 = rep.sites.iter().map(|s| s.stats.elided).sum();
        assert_eq!(
            attributed,
            report
                .elision
                .sites
                .iter()
                .map(|s| s.absorbed as u64)
                .sum::<u64>(),
            "every absorbed guard must be attributed to a surviving site"
        );
        assert!(attributed >= report.elision.eliminated as u64 / 2);
    }

    #[test]
    fn telemetry_off_by_default_and_reports_stay_lean() {
        let spec = stream::sum(&StreamParams { elems: 16 << 10 });
        let cfg = RunConfig::trackfm(0.5);
        let outcome = execute(&spec, &cfg);
        assert!(outcome.telemetry.is_none(), "telemetry must be opt-in");
        let rep = build_report(&spec, &cfg, &outcome);
        // Sections still present; histograms/sites need the snapshot.
        assert!(rep.field("exec", "instructions").unwrap() > 0);
        assert!(rep.histograms.is_empty());
        assert!(rep.sites.is_empty());
    }

    #[test]
    fn sharded_report_carries_a_section_per_shard() {
        let spec = stream::sum(&StreamParams { elems: 16 << 10 });
        let cfg = RunConfig::trackfm(0.25).with_shards(4);
        let (_, rep) = execute_with_report(&spec, &cfg);
        assert!(rep
            .meta
            .iter()
            .any(|(k, v)| k == "backend" && v.contains("sharded(4")));
        for s in 0..4 {
            let section = format!("shard{s}");
            assert!(
                rep.field(&section, "fetches").is_some(),
                "missing {section}"
            );
            assert_eq!(rep.field(&section, "degraded"), Some(0));
        }
        assert!(rep.field("shard4", "fetches").is_none());
        // Shard ledgers must sum to the aggregate.
        let total: u64 = (0..4)
            .map(|s| rep.field(&format!("shard{s}"), "bytes_fetched").unwrap())
            .sum();
        assert_eq!(rep.field("transfer", "bytes_fetched"), Some(total));
        // Single-node reports carry no shard sections or backend meta.
        let (_, single) = execute_with_report(&spec, &RunConfig::trackfm(0.25));
        assert!(single.field("shard0", "fetches").is_none());
        assert!(!single.meta.iter().any(|(k, _)| k == "backend"));
    }

    #[test]
    fn replicated_crash_run_report_publishes_failover_counters() {
        use tfm_net::{BackendSpec, FaultPlan};
        let spec = stream::sum(&StreamParams { elems: 16 << 10 });
        let cfg = RunConfig::trackfm(0.25)
            .with_backend(BackendSpec::sharded(4).with_replicas(2).with_fault_shard(1))
            .with_faults(FaultPlan::none().with_cold_crash(100_000, 400_000));
        let (_, rep) = execute_with_report(&spec, &cfg);
        assert!(rep
            .meta
            .iter()
            .any(|(k, v)| k == "backend" && v.contains("replicas=2")));
        for s in 0..4 {
            let section = format!("shard{s}");
            for f in ["state", "epoch", "failover_reads", "divergent_writes"] {
                assert!(rep.field(&section, f).is_some(), "missing {section}.{f}");
            }
        }
        // The runtime section publishes the recovery story, and no
        // acknowledged write may be lost under R=2.
        for f in [
            "shard_downs",
            "shard_recoveries",
            "resynced_objects",
            "re_replications",
        ] {
            assert!(rep.field("runtime", f).is_some(), "missing runtime.{f}");
        }
        assert_eq!(rep.field("runtime", "lost_objects"), Some(0));
    }

    #[test]
    fn fastswap_report_carries_pager_section() {
        let spec = stream::sum(&StreamParams { elems: 16 << 10 });
        let cfg = RunConfig::fastswap(0.25);
        let (_, rep) = execute_with_report(&spec, &cfg);
        assert!(rep.field("pager", "major_faults").is_some());
        assert!(rep.histogram("fetch_latency_cycles").is_some());
    }
}
