//! Object-size autotuning — the paper's §3.2/§5 future-work feature,
//! implemented.
//!
//! "While the choice of object size is currently selected by us, the small
//! search space suggests that an autotuning approach is feasible.
//! Furthermore, if we are correct that only the powers of two from 6 (cache
//! line) to 12 (base page size) need to be considered, an exhaustive search
//! involving recompilation and a short-term execution would simply expand
//! the short compile times." (§3.2)
//!
//! [`autotune_object_size`] does exactly that: for each candidate power of
//! two it recompiles the application (object size feeds the chunking cost
//! model) and executes a short probe run, picking the size with the fewest
//! simulated cycles.

use crate::runner::{execute_with_profile, RunConfig};
use crate::spec::WorkloadSpec;
use tfm_analysis::profile::Profile;

/// Candidate object sizes: powers of two from the cache line to the base
/// page, per §3.2.
pub const CANDIDATE_SIZES: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// The outcome of an autotuning search.
#[derive(Clone, Debug)]
pub struct AutotuneReport {
    /// The winning object size.
    pub chosen: u64,
    /// `(object size, simulated cycles)` for every candidate, in search
    /// order.
    pub trials: Vec<(u64, u64)>,
}

impl AutotuneReport {
    /// Speedup of the best size over the worst.
    pub fn best_over_worst(&self) -> f64 {
        let best = self.trials.iter().map(|(_, c)| *c).min().unwrap_or(1);
        let worst = self.trials.iter().map(|(_, c)| *c).max().unwrap_or(1);
        worst as f64 / best as f64
    }
}

/// Exhaustively searches [`CANDIDATE_SIZES`], recompiling and running the
/// probe workload for each, and returns the size minimizing simulated
/// cycles. `base` supplies everything else (system, budget fraction,
/// compiler options); callers typically pass a scaled-down probe spec, as
/// the paper suggests ("a short-term execution").
pub fn autotune_object_size(
    spec: &WorkloadSpec,
    base: &RunConfig,
    profile: Option<&Profile>,
) -> AutotuneReport {
    let mut trials = Vec::with_capacity(CANDIDATE_SIZES.len());
    for &size in &CANDIDATE_SIZES {
        let cfg = (*base).with_object_size(size);
        let out = execute_with_profile(spec, &cfg, profile);
        trials.push((size, out.result.stats.cycles));
    }
    let chosen = trials
        .iter()
        .min_by_key(|(_, c)| *c)
        .map(|(s, _)| *s)
        .expect("candidate list is non-empty");
    AutotuneReport { chosen, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashmap::{hashmap, HashmapParams};
    use crate::stream::{sum, StreamParams};

    #[test]
    fn picks_large_objects_for_stream() {
        let spec = sum(&StreamParams { elems: 64 << 10 });
        let report = autotune_object_size(&spec, &RunConfig::trackfm(0.25), None);
        assert!(
            report.chosen >= 1024,
            "sequential scans want large objects, chose {}",
            report.chosen
        );
        assert_eq!(report.trials.len(), CANDIDATE_SIZES.len());
        assert!(report.best_over_worst() > 1.0);
    }

    #[test]
    fn picks_small_objects_for_zipf_hashmap() {
        let spec = hashmap(&HashmapParams {
            keys: 8_000,
            lookups: 16_000,
            skew: 1.02,
            seed: 3,
        });
        let report = autotune_object_size(&spec, &RunConfig::trackfm(0.15), None);
        assert!(
            report.chosen <= 512,
            "fine-grained random access wants small objects, chose {}",
            report.chosen
        );
    }
}
