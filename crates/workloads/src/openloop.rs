//! Open-loop key-value serving on the deterministic multi-core machine.
//!
//! The closed-loop workloads ([`crate::memcached`] et al.) issue their next
//! request the instant the previous one retires, so a single simulated core
//! is always the right machine model. Real memcached front-ends are open
//! loop: requests arrive on their own schedule (here, seeded Zipf keys with
//! seeded integer inter-arrival gaps — no floats, no wall clocks), queue
//! when every worker is busy, and their latency includes that queueing. This
//! module generates such a workload and drives it through
//! [`execute_open_loop`], which dispatches each request on the
//! earliest-free core of a [`CoreSet`] and lets the far-memory layer's
//! split issue/complete protocol overlap fetches across cores.
//!
//! With `cores = 1` the driver degenerates to today's synchronous machine —
//! async fetch stays off, no core is ever tagged — which the concurrency
//! tests and the `concurrency_scaling` bench gate pin bit-for-bit.

use crate::memcached::{self, MemcachedParams, Store, HASH_MULT, VALUE_WORDS};
use crate::rng::SplitMix64;
use crate::runner::{self, Outcome, RunConfig, SystemKind};
use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use crate::zipf::ZipfGen;
use tfm_fastswap::PagerConfig;
use tfm_ir::{BinOp, CmpOp, FunctionBuilder, Module, Signature, Type};
use tfm_sim::{
    CoreSet, FastswapMem, HybridMem, LocalMem, Machine, MemorySystem, RunResult, TrackFmMem,
};
use tfm_telemetry::{Histogram, RunReport, Telemetry};
use trackfm::TrackFmCompiler;

/// Open-loop key-value workload parameters.
#[derive(Copy, Clone, Debug)]
pub struct OpenLoopParams {
    /// Number of stored keys.
    pub keys: usize,
    /// Number of `get` requests.
    pub requests: usize,
    /// Zipf skew over the key ranks.
    pub skew: f64,
    /// Trace RNG seed (keys and arrival gaps).
    pub seed: u64,
    /// Mean inter-arrival gap in simulated cycles. Gaps are drawn uniformly
    /// from `[mean/2, mean/2 + mean]` with integer arithmetic, so arrival
    /// times are exact and platform-independent.
    pub mean_gap_cycles: u64,
}

impl Default for OpenLoopParams {
    fn default() -> Self {
        OpenLoopParams {
            keys: 100_000,
            requests: 200_000,
            skew: 1.01,
            seed: 17,
            mean_gap_cycles: 2_000,
        }
    }
}

/// One request: when it arrives and which key it asks for.
#[derive(Copy, Clone, Debug)]
pub struct Request {
    /// Arrival time in simulated cycles.
    pub arrival: u64,
    /// The key to `get` (always present in the store).
    pub key: u64,
}

/// A generated open-loop workload: the store + `get` program, the request
/// schedule, and the host-computed checksum oracle.
#[derive(Clone, Debug)]
pub struct OpenLoopSpec {
    /// The store arrays and the single-`get` program (`get(index, mask,
    /// slab, key) -> i64` returns the xor of the value's eight words).
    pub spec: WorkloadSpec,
    /// Requests in arrival order.
    pub requests: Vec<Request>,
    /// Wrapping sum of every request's `get` return — the semantic oracle
    /// the driver asserts regardless of core count or schedule.
    pub expected: u64,
}

fn get_ref(store: &Store, key: u64) -> u64 {
    let mut h = memcached::hash_slot(key, store.mask);
    loop {
        let i = (h * 2) as usize;
        if store.index[i] == key {
            let slab_idx = store.index[i + 1] - 1;
            let mut x = 0u64;
            for w in 0..VALUE_WORDS as u64 {
                x ^= store.slab[(slab_idx * VALUE_WORDS as u64 + w) as usize];
            }
            return x;
        }
        if store.index[i] == 0 {
            return 0;
        }
        h = (h + 1) & store.mask;
    }
}

/// Builds the open-loop workload: the memcached-style store, a `get`
/// function over it, and a seeded Zipf request schedule.
pub fn open_loop(p: &OpenLoopParams) -> OpenLoopSpec {
    let store = memcached::build(&MemcachedParams {
        keys: p.keys,
        gets: 0,
        skew: 1.01, // unused by store construction
        seed: 0,
    });

    let mut rng = SplitMix64::seed_from_u64(p.seed);
    let gen = ZipfGen::new(p.keys as u64, p.skew);
    let mean = p.mean_gap_cycles;
    let mut arrival = 0u64;
    let requests: Vec<Request> = (0..p.requests)
        .map(|_| {
            let key = gen.sample(&mut rng) + 1;
            arrival += mean / 2 + rng.next_u64() % (mean + 1);
            Request { arrival, key }
        })
        .collect();

    let mut expected = 0u64;
    for r in &requests {
        expected = expected.wrapping_add(get_ref(&store, r.key));
    }

    let mut m = Module::new("kv_openloop");
    let id = m.declare_function(
        "get",
        Signature::new(
            vec![Type::Ptr, Type::I64, Type::Ptr, Type::I64],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let index = b.param(0);
        let mask_v = b.param(1);
        let slab = b.param(2);
        let key = b.param(3);
        let zero = b.iconst(Type::I64, 0);
        let res = b.alloca(8, 8);
        b.store(res, zero);

        let mult = b.iconst(Type::I64, HASH_MULT as i64);
        let hm = b.binop(BinOp::Mul, key, mult);
        let c32 = b.iconst(Type::I64, 32);
        let hs = b.binop(BinOp::Lshr, hm, c32);
        let h0 = b.binop(BinOp::And, hs, mask_v);

        let pre = b.current_block();
        let probe = b.create_block();
        let check_empty = b.create_block();
        let found = b.create_block();
        let next = b.create_block();
        let done = b.create_block();

        b.br(probe);
        b.switch_to_block(probe);
        let h = b.phi(Type::I64, &[(pre, h0)]);
        let slot = b.gep(index, h, 16, 0);
        let skey = b.load(Type::I64, slot);
        let hit = b.icmp(CmpOp::Eq, skey, key);
        b.cond_br(hit, found, check_empty);

        b.switch_to_block(check_empty);
        let zz = b.iconst(Type::I64, 0);
        let empty = b.icmp(CmpOp::Eq, skey, zz);
        b.cond_br(empty, done, next);

        b.switch_to_block(next);
        let one = b.iconst(Type::I64, 1);
        let h1 = b.binop(BinOp::Add, h, one);
        let h2 = b.binop(BinOp::And, h1, mask_v);
        b.add_phi_incoming(h, next, h2);
        b.br(probe);

        // Read the whole 64-byte value, folding it into the result.
        b.switch_to_block(found);
        let iaddr = b.gep(index, h, 16, 8);
        let slabp1 = b.load(Type::I64, iaddr);
        let one2 = b.iconst(Type::I64, 1);
        let slab_idx = b.binop(BinOp::Sub, slabp1, one2);
        let vwords = b.iconst(Type::I64, VALUE_WORDS as i64);
        let base_w = b.binop(BinOp::Mul, slab_idx, vwords);
        let vbase = b.gep(slab, base_w, 8, 0);
        let z2 = b.iconst(Type::I64, 0);
        b.counted_loop(z2, vwords, 1, |b, w| {
            let wa = b.gep(vbase, w, 8, 0);
            let wv = b.load(Type::I64, wa);
            let s = b.load(Type::I64, res);
            let s2 = b.binop(BinOp::Xor, s, wv);
            b.store(res, s2);
        });
        b.br(done);

        b.switch_to_block(done);
        let out = b.load(Type::I64, res);
        b.ret(Some(out));
    }
    m.verify().expect("kv_openloop is well-formed");

    OpenLoopSpec {
        spec: WorkloadSpec {
            name: format!("kv-openloop/{}k-{}", p.keys / 1000, p.skew),
            module: m,
            inputs: vec![InputData::U64(store.index), InputData::U64(store.slab)],
            args: vec![
                ArgSpec::Input(0),
                ArgSpec::Const(store.mask as i64),
                ArgSpec::Input(1),
            ],
            expected: None, // checked per-request by the driver instead
        },
        requests,
        expected,
    }
}

/// The outcome of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopRun {
    /// Cumulative execution result (`stats.cycles` is the makespan — the
    /// latest core clock — rather than whichever core happened to retire
    /// the final request).
    pub outcome: Outcome,
    /// Per-request latency (retire − arrival, queueing included).
    pub latency: Histogram,
    /// Final per-core clocks.
    pub core_clocks: Vec<u64>,
    /// The run's makespan in simulated cycles.
    pub makespan: u64,
    /// The accumulated checksum (already asserted against the oracle).
    pub checksum: u64,
}

impl OpenLoopRun {
    /// Requests served per thousand simulated cycles of makespan, ×1000
    /// (integer fixed-point so comparisons stay exact).
    pub fn throughput_milli(&self, requests: usize) -> u64 {
        if self.makespan == 0 {
            return 0;
        }
        (requests as u64).saturating_mul(1_000_000) / self.makespan
    }
}

/// Runs the open-loop workload under `cfg` on `cfg.cores` simulated cores.
///
/// # Panics
/// Panics if any request traps or the accumulated checksum disagrees with
/// the host oracle — under *any* core count or schedule.
pub fn execute_open_loop(ol: &OpenLoopSpec, cfg: &RunConfig) -> OpenLoopRun {
    let heap = ol.spec.heap_size(cfg.object_size);
    match cfg.system {
        SystemKind::Local => drive(ol, &ol.spec.module, LocalMem::new(heap), cfg, heap, None),
        SystemKind::Fastswap => {
            let pcfg = PagerConfig {
                local_budget: ol.spec.local_budget(cfg.local_fraction, 4096),
                faults: cfg.faults,
                backend: cfg.backend,
                ..PagerConfig::default()
            };
            drive(
                ol,
                &ol.spec.module,
                FastswapMem::new(heap, pcfg),
                cfg,
                heap,
                None,
            )
        }
        SystemKind::TrackFm | SystemKind::Aifm => {
            let mut module = ol.spec.module.clone();
            let compiler = TrackFmCompiler::new(cfg.compiler);
            let report = compiler.compile(&mut module, None);
            let fm_cfg = runner::far_config(&ol.spec, cfg);
            let mem = match cfg.system {
                SystemKind::TrackFm => TrackFmMem::new(fm_cfg, cfg.cost),
                _ => TrackFmMem::new_aifm(fm_cfg, cfg.cost),
            };
            drive(ol, &module, mem, cfg, heap, Some(report))
        }
        SystemKind::Hybrid => {
            let mut module = ol.spec.module.clone();
            let mut copts = cfg.compiler;
            copts.guards = false;
            let compiler = TrackFmCompiler::new(copts);
            let report = compiler.compile(&mut module, None);
            let mem = HybridMem::new(runner::far_config(&ol.spec, cfg), cfg.cost);
            drive(ol, &module, mem, cfg, heap, Some(report))
        }
    }
}

/// [`execute_open_loop`] with telemetry forced on, returning the run and a
/// [`RunReport`] extended with the open-loop-only `request_latency_cycles`
/// histogram and scheduling metadata.
pub fn execute_open_loop_with_report(
    ol: &OpenLoopSpec,
    cfg: &RunConfig,
) -> (OpenLoopRun, RunReport) {
    let cfg = cfg.with_telemetry(true);
    let run = execute_open_loop(ol, &cfg);
    let mut rep = runner::build_report(&ol.spec, &cfg, &run.outcome);
    rep.push_meta("cores", cfg.cores.max(1));
    rep.push_meta("requests", ol.requests.len() as u64);
    rep.push_histogram("request_latency_cycles", run.latency.clone());
    (run, rep)
}

/// The multi-core dispatch loop: one shared machine, N simulated core
/// clocks, requests served in arrival order on the earliest-free core.
/// See [`CoreSet`] for the scheduling contract.
fn drive<M: MemorySystem>(
    ol: &OpenLoopSpec,
    module: &Module,
    mem: M,
    cfg: &RunConfig,
    heap: u64,
    report: Option<trackfm::CompileReport>,
) -> OpenLoopRun {
    let mut machine = Machine::new(module, mem, cfg.cost, heap);
    machine.set_engine(cfg.engine);
    let args = runner::setup(&ol.spec, &mut machine, false);
    let tel = if cfg.trace.enabled {
        Telemetry::with_trace(cfg.trace)
    } else if cfg.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    machine.set_telemetry(tel.clone());

    let mut cores = CoreSet::new(cfg.cores);
    let multi = cores.len() > 1;
    if multi {
        // Only multi-core runs split issue from completion: with one core
        // there is nothing to overlap with, and staying synchronous keeps
        // the run bit-identical to the plain machine.
        machine.mem.set_async_fetch(true);
    }

    let mut latency = Histogram::new();
    let mut checksum = 0u64;
    let mut last: Option<RunResult> = None;
    let mut call = Vec::with_capacity(args.len() + 1);
    for req in &ol.requests {
        let core = cores.pick();
        let start = cores.begin(core, req.arrival);
        machine.set_clock(start);
        if multi {
            machine.set_core(core);
        }
        call.clear();
        call.extend_from_slice(&args);
        call.push(req.key);
        let r = machine
            .run("get", &call)
            .unwrap_or_else(|t| panic!("{}: request trapped: {t}", ol.spec.name));
        let end = machine.clock();
        cores.finish(core, end);
        // The core is free at `end` (misses charge only to the issue
        // point), but the request itself is not complete until every fetch
        // it issued has landed — the completion horizon carries that cycle.
        let retire = end.max(machine.mem.take_completion_horizon());
        latency.record(retire - req.arrival);
        checksum = checksum.wrapping_add(r.ret);
        last = Some(r);
    }
    assert_eq!(
        checksum, ol.expected,
        "{}: open-loop checksum diverged — the schedule broke semantics",
        ol.spec.name
    );

    let mut result = last.expect("open-loop workloads serve at least one request");
    // The final request's retire time is one core's clock; the run's wall
    // time is the latest core's.
    result.stats.cycles = cores.makespan();
    let mut telemetry = tel.snapshot();
    if let Some(rep) = &report {
        runner::attribute_elision(rep, &mut telemetry);
        runner::attribute_motion(rep, &mut telemetry);
    }
    OpenLoopRun {
        outcome: Outcome {
            result,
            report,
            telemetry,
        },
        latency,
        core_clocks: (0..cores.len() as u32).map(|c| cores.clock(c)).collect(),
        makespan: cores.makespan(),
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OpenLoopParams {
        OpenLoopParams {
            keys: 2_000,
            requests: 4_000,
            skew: 1.05,
            seed: 11,
            mean_gap_cycles: 500,
        }
    }

    #[test]
    fn checksum_holds_under_every_system_and_core_count() {
        let ol = open_loop(&small());
        for cores in [1, 2, 4] {
            execute_open_loop(&ol, &RunConfig::local().with_cores(cores));
            execute_open_loop(
                &ol,
                &RunConfig::trackfm(0.2)
                    .with_object_size(64)
                    .with_cores(cores),
            );
            execute_open_loop(&ol, &RunConfig::fastswap(0.2).with_cores(cores));
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_seeded() {
        let a = open_loop(&small());
        let b = open_loop(&small());
        assert_eq!(a.requests.len(), 4_000);
        for w in a.requests.windows(2) {
            assert!(w[0].arrival < w[1].arrival, "gaps are at least mean/2 > 0");
        }
        for (x, y) in a.requests.iter().zip(&b.requests) {
            assert_eq!((x.arrival, x.key), (y.arrival, y.key));
        }
        let c = open_loop(&OpenLoopParams {
            seed: 12,
            ..small()
        });
        assert!(
            a.requests
                .iter()
                .zip(&c.requests)
                .any(|(x, y)| x.key != y.key),
            "a different seed must reshuffle the trace"
        );
    }

    #[test]
    fn open_loop_report_adds_the_latency_histogram() {
        let ol = open_loop(&small());
        let cfg = RunConfig::trackfm(0.25).with_object_size(64).with_cores(4);
        let (run, rep) = execute_open_loop_with_report(&ol, &cfg);
        // The five standard distributions plus the open-loop-only one.
        assert_eq!(rep.histograms.len(), 6);
        let lat = rep.histogram("request_latency_cycles").unwrap();
        assert_eq!(lat.count(), 4_000);
        assert!(lat.p99() >= lat.p50());
        assert!(rep.meta.iter().any(|(k, v)| k == "cores" && v == "4"));
        assert_eq!(run.core_clocks.len(), 4);
        assert_eq!(run.makespan, *run.core_clocks.iter().max().unwrap());
        assert_eq!(run.outcome.result.stats.cycles, run.makespan);
    }

    #[test]
    fn multi_core_overlap_beats_one_core_on_miss_heavy_gets() {
        // Miss-heavy small-object serving: most gets issue a wire fetch, so
        // splitting issue from completion lets cores pipeline the link.
        let ol = open_loop(&OpenLoopParams {
            mean_gap_cycles: 100,
            ..small()
        });
        let cfg = RunConfig::trackfm(0.1)
            .with_object_size(64)
            .with_prefetch(false);
        let one = execute_open_loop(&ol, &cfg);
        let four = execute_open_loop(&ol, &cfg.with_cores(4));
        assert!(
            four.makespan * 2 < one.makespan,
            "4 cores should overlap fetches: {} vs {}",
            four.makespan,
            one.makespan
        );
        // Joined fetches surface in the runtime's counter when two requests
        // race to the same in-flight object.
        let rt = four.outcome.result.runtime.as_ref().unwrap();
        assert!(rt.remote_fetches > 0);
    }

    #[test]
    fn one_core_run_is_the_synchronous_machine_bit_for_bit() {
        // The scheduler with one core must be indistinguishable from a
        // hand-rolled synchronous loop over the same machine.
        let ol = open_loop(&small());
        let cfg = RunConfig::trackfm(0.2).with_object_size(64);
        let sched = execute_open_loop(&ol, &cfg);

        let mut module = ol.spec.module.clone();
        TrackFmCompiler::new(cfg.compiler).compile(&mut module, None);
        let fm_cfg = runner::far_config(&ol.spec, &cfg);
        let mem = TrackFmMem::new(fm_cfg, cfg.cost);
        let heap = ol.spec.heap_size(cfg.object_size);
        let mut machine = Machine::new(&module, mem, cfg.cost, heap);
        let args = runner::setup(&ol.spec, &mut machine, false);
        let mut last = None;
        for req in &ol.requests {
            let start = machine.clock().max(req.arrival);
            machine.set_clock(start);
            let mut call = args.clone();
            call.push(req.key);
            last = Some(machine.run("get", &call).unwrap());
        }
        let manual = last.unwrap();
        assert_eq!(sched.makespan, machine.clock());
        let mut want = manual.stats;
        want.cycles = machine.clock();
        assert_eq!(sched.outcome.result.stats, want);
        assert_eq!(
            sched.outcome.result.runtime.as_ref().unwrap(),
            manual.runtime.as_ref().unwrap()
        );
    }
}
