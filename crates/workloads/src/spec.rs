//! Declarative workload specifications.
//!
//! A [`WorkloadSpec`] bundles an *unmodified* IR program with the input
//! arrays its `main` expects. The runner allocates the inputs through
//! whichever memory system is under test, fills them during the (uncharged)
//! setup phase, optionally cold-starts the far memory, and invokes `main`.

use tfm_ir::Module;

/// Input data for one heap array.
#[derive(Clone, Debug)]
pub enum InputData {
    /// 64-bit words.
    U64(Vec<u64>),
    /// Doubles.
    F64(Vec<f64>),
    /// 32-bit words.
    U32(Vec<u32>),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// `n` zero bytes (output buffers).
    Zeroed(u64),
}

impl InputData {
    /// Size in bytes.
    pub fn byte_len(&self) -> u64 {
        match self {
            InputData::U64(v) => v.len() as u64 * 8,
            InputData::F64(v) => v.len() as u64 * 8,
            InputData::U32(v) => v.len() as u64 * 4,
            InputData::Bytes(v) => v.len() as u64,
            InputData::Zeroed(n) => *n,
        }
    }
}

/// How to construct one argument of `main`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArgSpec {
    /// Pointer to the `i`-th input array.
    Input(usize),
    /// An integer constant.
    Const(i64),
}

/// A complete benchmark program.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Human-readable name (figure labels).
    pub name: String,
    /// The unmodified program; entry point `main`.
    pub module: Module,
    /// Input arrays, allocated in order.
    pub inputs: Vec<InputData>,
    /// `main`'s arguments.
    pub args: Vec<ArgSpec>,
    /// The value `main` must return under *any* memory system — the
    /// semantic-preservation oracle.
    pub expected: Option<u64>,
}

impl WorkloadSpec {
    /// Total bytes of input data — the working set the paper's local-memory
    /// sweeps are expressed against.
    pub fn working_set(&self) -> u64 {
        self.inputs.iter().map(|i| i.byte_len()).sum()
    }

    /// A far-heap size comfortably holding the working set plus allocator
    /// slack, rounded to `object_size`.
    pub fn heap_size(&self, object_size: u64) -> u64 {
        // Per-allocation rounding can double small allocations; 1.5× plus a
        // fixed floor covers every workload in the suite.
        let want = self.working_set() * 3 / 2 + (4 << 20);
        want.next_multiple_of(object_size)
    }

    /// The local-memory budget corresponding to `fraction` of the working
    /// set (the x-axis of Figs. 7–16), floored to one object.
    pub fn local_budget(&self, fraction: f64, object_size: u64) -> u64 {
        let b = (self.working_set() as f64 * fraction) as u64;
        b.max(object_size * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lengths() {
        assert_eq!(InputData::U64(vec![0; 3]).byte_len(), 24);
        assert_eq!(InputData::F64(vec![0.0; 2]).byte_len(), 16);
        assert_eq!(InputData::U32(vec![0; 5]).byte_len(), 20);
        assert_eq!(InputData::Bytes(vec![0; 7]).byte_len(), 7);
        assert_eq!(InputData::Zeroed(100).byte_len(), 100);
    }

    #[test]
    fn sizing_helpers() {
        let spec = WorkloadSpec {
            name: "t".into(),
            module: Module::new("t"),
            inputs: vec![InputData::Zeroed(1 << 20)],
            args: vec![],
            expected: None,
        };
        assert_eq!(spec.working_set(), 1 << 20);
        assert_eq!(spec.heap_size(4096) % 4096, 0);
        assert!(spec.heap_size(4096) > spec.working_set());
        assert_eq!(spec.local_budget(0.25, 4096), 1 << 18);
        assert_eq!(spec.local_budget(0.0, 4096), 4 * 4096);
    }
}
