//! NAS-like kernels — the paper's Fig. 17 benchmarks.
//!
//! §4.5 runs serial C++ NAS benchmarks CG, FT, IS, MG and SP (Table 3) at a
//! 25% local-memory constraint. We reproduce each kernel's *access-pattern
//! character* (what the figure actually measures) at MB scale:
//!
//! * **CG** — sparse matrix-vector products: strided walks over the CSR
//!   arrays plus irregular gathers from the dense vector;
//! * **FT** — deeply nested tight stencil passes with strong temporal reuse
//!   (Fastswap-friendly) whose register-computed indices confound the
//!   induction-variable analysis, plus heavy source-level redundancy —
//!   the Fig. 17b O1 target;
//! * **IS** — bucket sort: sequential key scans plus scattered writes;
//! * **MG** — multigrid V-cycles: 3-point smoothing sweeps across grid
//!   levels;
//! * **SP** — per-line penta-diagonal-style forward recurrences, also with
//!   redundant loads and register-computed indices (the second Fig. 17b
//!   target).

use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use tfm_ir::{BinOp, CmpOp, FunctionBuilder, Module, Signature, Type};

/// Scale factor applied to default sizes (1 = benchmark scale; tests use
/// smaller).
#[derive(Copy, Clone, Debug)]
pub struct NasParams {
    /// Linear size divisor (2 → roughly 1/2 the elements per dimension).
    pub shrink: usize,
}

impl Default for NasParams {
    fn default() -> Self {
        NasParams { shrink: 1 }
    }
}

/// All five kernels at the given scale, for the Fig. 17 sweep.
pub fn all(p: &NasParams) -> Vec<WorkloadSpec> {
    vec![cg(p), ft(p), is(p), mg(p), sp(p)]
}

// ======================================================================
// CG — conjugate-gradient-style sparse mat-vec.
// ======================================================================

/// CG-like kernel: `T` sparse mat-vec products with a scaled copy-back.
pub fn cg(p: &NasParams) -> WorkloadSpec {
    let n = 30_000 / p.shrink;
    let per_row = 12usize;
    let iters = 2i64;
    let nnz = n * per_row;

    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for r in 0..n {
        rowptr.push((r * per_row) as u64);
        for j in 0..per_row {
            colidx.push(((r * 31 + j * j * 7 + 1) % n) as u64);
            vals.push(1.0 + ((r + j) % 13) as f64 / 13.0);
        }
    }
    rowptr.push(nnz as u64);
    let x0: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 / 7.0).collect();

    // Host mirror.
    let expected = {
        let mut x = x0.clone();
        let mut y = vec![0.0f64; n];
        for _ in 0..iters {
            for r in 0..n {
                let mut acc = 0.0f64;
                for c in rowptr[r] as usize..rowptr[r + 1] as usize {
                    acc += vals[c] * x[colidx[c] as usize];
                }
                y[r] = acc;
            }
            for i in 0..n {
                x[i] = y[i] * 0.001;
            }
        }
        let mut s = 0.0f64;
        for v in y.iter().take(n) {
            s += v;
        }
        s.to_bits()
    };

    let mut m = Module::new("nas_cg");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::I64,
                Type::I64,
            ],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let rowptr_p = b.param(0);
        let colidx_p = b.param(1);
        let vals_p = b.param(2);
        let x_p = b.param(3);
        let y_p = b.param(4);
        let nv = b.param(5);
        let it = b.param(6);
        let zero = b.iconst(Type::I64, 0);

        b.counted_loop(zero, it, 1, |b, _t| {
            let z0 = b.iconst(Type::I64, 0);
            b.counted_loop(z0, nv, 1, |b, r| {
                let pa = b.gep(rowptr_p, r, 8, 0);
                let pb = b.gep(rowptr_p, r, 8, 8);
                let start = b.load(Type::I64, pa);
                let end = b.load(Type::I64, pb);
                let pre = b.current_block();
                let hdr = b.create_block();
                let body = b.create_block();
                let exit = b.create_block();
                let f0 = b.fconst(0.0);
                b.br(hdr);
                b.switch_to_block(hdr);
                let c = b.phi(Type::I64, &[(pre, start)]);
                let acc = b.phi(Type::F64, &[(pre, f0)]);
                let cc = b.icmp(CmpOp::Slt, c, end);
                b.cond_br(cc, body, exit);
                b.switch_to_block(body);
                let va = b.gep(vals_p, c, 8, 0);
                let ca = b.gep(colidx_p, c, 8, 0);
                let v = b.load(Type::F64, va);
                let col = b.load(Type::I64, ca);
                let xa = b.gep(x_p, col, 8, 0);
                let xv = b.load(Type::F64, xa);
                let prod = b.binop(BinOp::Fmul, v, xv);
                let acc2 = b.binop(BinOp::Fadd, acc, prod);
                let one = b.iconst(Type::I64, 1);
                let c2 = b.binop(BinOp::Add, c, one);
                b.add_phi_incoming(c, body, c2);
                b.add_phi_incoming(acc, body, acc2);
                b.br(hdr);
                b.switch_to_block(exit);
                let ya = b.gep(y_p, r, 8, 0);
                b.store(ya, acc);
            });
            let z1 = b.iconst(Type::I64, 0);
            let scale = b.fconst(0.001);
            b.counted_loop(z1, nv, 1, |b, i| {
                let ya = b.gep(y_p, i, 8, 0);
                let xa = b.gep(x_p, i, 8, 0);
                let yv = b.load(Type::F64, ya);
                let nx = b.binop(BinOp::Fmul, yv, scale);
                b.store(xa, nx);
            });
        });
        // Checksum over y.
        let z2 = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let hdr = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let f0 = b.fconst(0.0);
        b.br(hdr);
        b.switch_to_block(hdr);
        let i = b.phi(Type::I64, &[(pre, z2)]);
        let acc = b.phi(Type::F64, &[(pre, f0)]);
        let c = b.icmp(CmpOp::Slt, i, nv);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let ya = b.gep(y_p, i, 8, 0);
        let yv = b.load(Type::F64, ya);
        let acc2 = b.binop(BinOp::Fadd, acc, yv);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(hdr);
        b.switch_to_block(exit);
        let bits = b.cast(tfm_ir::CastOp::Bitcast, acc, Type::I64);
        b.ret(Some(bits));
    }
    m.verify().expect("cg is well-formed");

    WorkloadSpec {
        name: format!("nas-cg/{n}"),
        module: m,
        inputs: vec![
            InputData::U64(rowptr),
            InputData::U64(colidx),
            InputData::F64(vals),
            InputData::F64(x0),
            InputData::Zeroed(n as u64 * 8),
        ],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Input(2),
            ArgSpec::Input(3),
            ArgSpec::Input(4),
            ArgSpec::Const(n as i64),
            ArgSpec::Const(iters),
        ],
        expected: Some(expected),
    }
}

// ======================================================================
// FT — stencil passes with temporal reuse and redundant loads.
// ======================================================================

/// FT-like kernel: ping-pong 3-point stencil passes over a 3-D grid with
/// register-computed indices (defeating IV analysis) and source-level
/// redundant loads (the O1 pre-pipeline target).
pub fn ft(p: &NasParams) -> WorkloadSpec {
    let nx = 48 / p.shrink.min(8);
    let (ny, nz) = (nx, nx);
    let n = nx * ny * nz;
    let iters = 2i64;
    let g0: Vec<f64> = (0..n).map(|i| ((i % 97) as f64) / 97.0).collect();

    // Host mirror: two passes per iteration (a→b then b→a).
    let expected = {
        let mut a = g0.clone();
        let mut bb = vec![0.0f64; n];
        let pass = |src: &[f64], dst: &mut [f64]| {
            for z in 0..nz {
                for y in 0..ny {
                    let rowbase = (z * ny + y) * nx;
                    for x in 1..nx - 1 {
                        let idx = rowbase + x;
                        let v = src[idx];
                        let l = src[idx - 1];
                        let r = src[idx + 1];
                        dst[idx] = v * 0.5 + (l + r) * 0.25 + v * 0.1 - v * 0.05;
                    }
                    dst[rowbase] = src[rowbase];
                    dst[rowbase + nx - 1] = src[rowbase + nx - 1];
                }
            }
        };
        for _ in 0..iters {
            pass(&a, &mut bb);
            pass(&bb, &mut a);
        }
        let mut s = 0.0f64;
        for v in &a {
            s += v;
        }
        s.to_bits()
    };

    let mut m = Module::new("nas_ft");
    // pass(src, dst, nx, ny, nz)
    let pass_id = m.declare_function(
        "pass",
        Signature::new(
            vec![Type::Ptr, Type::Ptr, Type::I64, Type::I64, Type::I64],
            None,
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(pass_id));
        let src = b.param(0);
        let dst = b.param(1);
        let nxv = b.param(2);
        let nyv = b.param(3);
        let nzv = b.param(4);
        let zero = b.iconst(Type::I64, 0);
        b.counted_loop(zero, nzv, 1, |b, z| {
            let z1 = b.iconst(Type::I64, 0);
            b.counted_loop(z1, nyv, 1, |b, y| {
                let zy = b.binop(BinOp::Mul, z, nyv);
                let zyy = b.binop(BinOp::Add, zy, y);
                let rowbase = b.binop(BinOp::Mul, zyy, nxv);
                let one = b.iconst(Type::I64, 1);
                let top = b.binop(BinOp::Sub, nxv, one);
                b.counted_loop(one, top, 1, |b, x| {
                    // idx is a register sum — the IV analysis cannot prove a
                    // stride, so every access below gets a full guard.
                    let idx = b.binop(BinOp::Add, rowbase, x);
                    // Redundant loads, exactly as naive source would read.
                    let a1 = b.gep(src, idx, 8, 0);
                    let v1 = b.load(Type::F64, a1);
                    let a2 = b.gep(src, idx, 8, 0);
                    let v2 = b.load(Type::F64, a2);
                    let a3 = b.gep(src, idx, 8, 0);
                    let v3 = b.load(Type::F64, a3);
                    let al = b.gep(src, idx, 8, -8);
                    let l = b.load(Type::F64, al);
                    let ar = b.gep(src, idx, 8, 8);
                    let r = b.load(Type::F64, ar);
                    // Naive source re-reads the neighbors for the average.
                    let al2 = b.gep(src, idx, 8, -8);
                    let l2 = b.load(Type::F64, al2);
                    let ar2 = b.gep(src, idx, 8, 8);
                    let r2 = b.load(Type::F64, ar2);
                    let half = b.fconst(0.5);
                    let quarter = b.fconst(0.25);
                    let tenth = b.fconst(0.1);
                    let twentieth = b.fconst(0.05);
                    let t1 = b.binop(BinOp::Fmul, v1, half);
                    let lr = b.binop(BinOp::Fadd, l, r);
                    let t2 = b.binop(BinOp::Fmul, lr, quarter);
                    let t3 = b.binop(BinOp::Fmul, v2, tenth);
                    let t4 = b.binop(BinOp::Fmul, v3, twentieth);
                    let lr2 = b.binop(BinOp::Fadd, l2, r2);
                    let zero_f = b.fconst(0.0);
                    let t5 = b.binop(BinOp::Fmul, lr2, zero_f);
                    let s1 = b.binop(BinOp::Fadd, t1, t2);
                    let s2 = b.binop(BinOp::Fadd, s1, t3);
                    let s2b = b.binop(BinOp::Fadd, s2, t5);
                    let s3 = b.binop(BinOp::Fsub, s2b, t4);
                    let da = b.gep(dst, idx, 8, 0);
                    b.store(da, s3);
                });
                // Copy row edges.
                let ea = b.gep(src, rowbase, 8, 0);
                let ev = b.load(Type::F64, ea);
                let da = b.gep(dst, rowbase, 8, 0);
                b.store(da, ev);
                let last = b.binop(BinOp::Add, rowbase, top);
                let ea2 = b.gep(src, last, 8, 0);
                let ev2 = b.load(Type::F64, ea2);
                let da2 = b.gep(dst, last, 8, 0);
                b.store(da2, ev2);
            });
        });
        b.ret(None);
    }
    let main_id = m.declare_function(
        "main",
        Signature::new(
            vec![
                Type::Ptr,
                Type::Ptr,
                Type::I64,
                Type::I64,
                Type::I64,
                Type::I64,
            ],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(main_id));
        let a = b.param(0);
        let bb = b.param(1);
        let nxv = b.param(2);
        let nyv = b.param(3);
        let nzv = b.param(4);
        let it = b.param(5);
        let zero = b.iconst(Type::I64, 0);
        b.counted_loop(zero, it, 1, |b, _t| {
            b.call(pass_id, vec![a, bb, nxv, nyv, nzv], None);
            b.call(pass_id, vec![bb, a, nxv, nyv, nzv], None);
        });
        // Checksum over a.
        let zy = b.binop(BinOp::Mul, nzv, nyv);
        let n_total = b.binop(BinOp::Mul, zy, nxv);
        let z2 = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let hdr = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let f0 = b.fconst(0.0);
        b.br(hdr);
        b.switch_to_block(hdr);
        let i = b.phi(Type::I64, &[(pre, z2)]);
        let acc = b.phi(Type::F64, &[(pre, f0)]);
        let c = b.icmp(CmpOp::Slt, i, n_total);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let aa = b.gep(a, i, 8, 0);
        let av = b.load(Type::F64, aa);
        let acc2 = b.binop(BinOp::Fadd, acc, av);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(hdr);
        b.switch_to_block(exit);
        let bits = b.cast(tfm_ir::CastOp::Bitcast, acc, Type::I64);
        b.ret(Some(bits));
    }
    m.verify().expect("ft is well-formed");

    WorkloadSpec {
        name: format!("nas-ft/{nx}^3"),
        module: m,
        inputs: vec![InputData::F64(g0), InputData::Zeroed(n as u64 * 8)],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Const(nx as i64),
            ArgSpec::Const(ny as i64),
            ArgSpec::Const(nz as i64),
            ArgSpec::Const(iters),
        ],
        expected: Some(expected),
    }
}

// ======================================================================
// IS — bucket sort.
// ======================================================================

/// IS-like kernel: histogram, exclusive prefix sum, scatter.
pub fn is(p: &NasParams) -> WorkloadSpec {
    let n = 600_000 / p.shrink;
    let buckets = 1024usize;
    let shift = 32 - 10; // bucket = key >> 22
    let keys: Vec<u32> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13) as u32)
        .collect();

    let expected = {
        let mut cnt = vec![0u64; buckets];
        for &k in &keys {
            cnt[(k >> shift) as usize] += 1;
        }
        let mut acc = 0u64;
        let mut pos = vec![0u64; buckets];
        for b in 0..buckets {
            pos[b] = acc;
            acc += cnt[b];
        }
        let mut out = vec![0u32; n];
        for &k in &keys {
            let b = (k >> shift) as usize;
            out[pos[b] as usize] = k;
            pos[b] += 1;
        }
        let mut s = 0u64;
        for (i, &v) in out.iter().enumerate() {
            s = s.wrapping_add((v as u64).wrapping_mul(i as u64 & 0xFF));
        }
        s
    };

    let mut m = Module::new("nas_is");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![Type::Ptr, Type::Ptr, Type::Ptr, Type::I64, Type::I64],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let keys_p = b.param(0);
        let cnt_p = b.param(1); // buckets u64 counters, reused as positions
        let out_p = b.param(2);
        let nv = b.param(3);
        let nb = b.param(4);
        let zero = b.iconst(Type::I64, 0);
        let shift_c = b.iconst(Type::I64, shift as i64);

        // Count.
        b.counted_loop(zero, nv, 1, |b, i| {
            let ka = b.gep(keys_p, i, 4, 0);
            let k32 = b.load(Type::I32, ka);
            let k = b.cast(tfm_ir::CastOp::Zext, k32, Type::I64);
            let bi = b.binop(BinOp::Lshr, k, shift_c);
            let ca = b.gep(cnt_p, bi, 8, 0);
            let cv = b.load(Type::I64, ca);
            let one = b.iconst(Type::I64, 1);
            let cv2 = b.binop(BinOp::Add, cv, one);
            b.store(ca, cv2);
        });
        // Exclusive prefix sum (in place: cnt becomes start positions).
        let racc = b.alloca(8, 8);
        b.store(racc, zero);
        let z1 = b.iconst(Type::I64, 0);
        b.counted_loop(z1, nb, 1, |b, bi| {
            let ca = b.gep(cnt_p, bi, 8, 0);
            let cv = b.load(Type::I64, ca);
            let run = b.load(Type::I64, racc);
            b.store(ca, run);
            let run2 = b.binop(BinOp::Add, run, cv);
            b.store(racc, run2);
        });
        // Scatter.
        let z2 = b.iconst(Type::I64, 0);
        b.counted_loop(z2, nv, 1, |b, i| {
            let ka = b.gep(keys_p, i, 4, 0);
            let k32 = b.load(Type::I32, ka);
            let k = b.cast(tfm_ir::CastOp::Zext, k32, Type::I64);
            let bi = b.binop(BinOp::Lshr, k, shift_c);
            let ca = b.gep(cnt_p, bi, 8, 0);
            let posn = b.load(Type::I64, ca);
            let oa = b.gep(out_p, posn, 4, 0);
            b.store(oa, k32);
            let one = b.iconst(Type::I64, 1);
            let p2 = b.binop(BinOp::Add, posn, one);
            b.store(ca, p2);
        });
        // Checksum.
        let sum = b.alloca(8, 8);
        b.store(sum, zero);
        let z3 = b.iconst(Type::I64, 0);
        b.counted_loop(z3, nv, 1, |b, i| {
            let oa = b.gep(out_p, i, 4, 0);
            let v32 = b.load(Type::I32, oa);
            let v = b.cast(tfm_ir::CastOp::Zext, v32, Type::I64);
            let mask = b.iconst(Type::I64, 0xFF);
            let w = b.binop(BinOp::And, i, mask);
            let prod = b.binop(BinOp::Mul, v, w);
            let s = b.load(Type::I64, sum);
            let s2 = b.binop(BinOp::Add, s, prod);
            b.store(sum, s2);
        });
        let out = b.load(Type::I64, sum);
        b.ret(Some(out));
    }
    m.verify().expect("is is well-formed");

    WorkloadSpec {
        name: format!("nas-is/{n}"),
        module: m,
        inputs: vec![
            InputData::U32(keys),
            InputData::Zeroed(buckets as u64 * 8),
            InputData::Zeroed(n as u64 * 4),
        ],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Input(2),
            ArgSpec::Const(n as i64),
            ArgSpec::Const(buckets as i64),
        ],
        expected: Some(expected),
    }
}

// ======================================================================
// MG — multigrid V-cycles.
// ======================================================================

/// MG-like kernel: 1-D V-cycles (smooth → restrict → smooth → prolong →
/// smooth) over a fine and a coarse grid.
pub fn mg(p: &NasParams) -> WorkloadSpec {
    let n = 300_000 / p.shrink;
    let nc = n / 2;
    let cycles = 2i64;
    let g0: Vec<f64> = (0..n).map(|i| ((i % 31) as f64) / 31.0).collect();

    let expected = {
        let mut u = g0.clone();
        let mut c = vec![0.0f64; nc];
        let smooth = |v: &mut [f64], len: usize| {
            for i in 1..len - 1 {
                v[i] = 0.5 * v[i] + 0.25 * (v[i - 1] + v[i + 1]);
            }
        };
        for _ in 0..cycles {
            smooth(&mut u, n);
            for i in 0..nc {
                c[i] = u[2 * i];
            }
            smooth(&mut c, nc);
            for i in 0..nc {
                u[2 * i] += 0.5 * c[i];
            }
            smooth(&mut u, n);
        }
        let mut s = 0.0f64;
        for v in &u {
            s += v;
        }
        s.to_bits()
    };

    let mut m = Module::new("nas_mg");
    let smooth_id = m.declare_function("smooth", Signature::new(vec![Type::Ptr, Type::I64], None));
    {
        let mut b = FunctionBuilder::new(m.function_mut(smooth_id));
        let u = b.param(0);
        let len = b.param(1);
        let one = b.iconst(Type::I64, 1);
        let top = b.binop(BinOp::Sub, len, one);
        b.counted_loop(one, top, 1, |b, i| {
            let am = b.gep(u, i, 8, -8);
            let a0 = b.gep(u, i, 8, 0);
            let ap = b.gep(u, i, 8, 8);
            let vm = b.load(Type::F64, am);
            let v0 = b.load(Type::F64, a0);
            let vp = b.load(Type::F64, ap);
            let half = b.fconst(0.5);
            let quarter = b.fconst(0.25);
            let t1 = b.binop(BinOp::Fmul, v0, half);
            let nb = b.binop(BinOp::Fadd, vm, vp);
            let t2 = b.binop(BinOp::Fmul, nb, quarter);
            let nv = b.binop(BinOp::Fadd, t1, t2);
            b.store(a0, nv);
        });
        b.ret(None);
    }
    let main_id = m.declare_function(
        "main",
        Signature::new(
            vec![Type::Ptr, Type::Ptr, Type::I64, Type::I64, Type::I64],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(main_id));
        let u = b.param(0);
        let c = b.param(1);
        let nv = b.param(2);
        let ncv = b.param(3);
        let cyc = b.param(4);
        let zero = b.iconst(Type::I64, 0);
        b.counted_loop(zero, cyc, 1, |b, _t| {
            b.call(smooth_id, vec![u, nv], None);
            // Restrict: c[i] = u[2i].
            let z1 = b.iconst(Type::I64, 0);
            b.counted_loop(z1, ncv, 1, |b, i| {
                let two = b.iconst(Type::I64, 2);
                let i2 = b.binop(BinOp::Mul, i, two);
                let ua = b.gep(u, i2, 8, 0);
                let uv = b.load(Type::F64, ua);
                let ca = b.gep(c, i, 8, 0);
                b.store(ca, uv);
            });
            b.call(smooth_id, vec![c, ncv], None);
            // Prolong: u[2i] += 0.5 * c[i].
            let z2 = b.iconst(Type::I64, 0);
            b.counted_loop(z2, ncv, 1, |b, i| {
                let two = b.iconst(Type::I64, 2);
                let i2 = b.binop(BinOp::Mul, i, two);
                let ca = b.gep(c, i, 8, 0);
                let cv = b.load(Type::F64, ca);
                let half = b.fconst(0.5);
                let d = b.binop(BinOp::Fmul, half, cv);
                let ua = b.gep(u, i2, 8, 0);
                let uv = b.load(Type::F64, ua);
                let s = b.binop(BinOp::Fadd, uv, d);
                b.store(ua, s);
            });
            b.call(smooth_id, vec![u, nv], None);
        });
        // Checksum over u.
        let z3 = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let hdr = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let f0 = b.fconst(0.0);
        b.br(hdr);
        b.switch_to_block(hdr);
        let i = b.phi(Type::I64, &[(pre, z3)]);
        let acc = b.phi(Type::F64, &[(pre, f0)]);
        let cnd = b.icmp(CmpOp::Slt, i, nv);
        b.cond_br(cnd, body, exit);
        b.switch_to_block(body);
        let ua = b.gep(u, i, 8, 0);
        let uv = b.load(Type::F64, ua);
        let acc2 = b.binop(BinOp::Fadd, acc, uv);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(hdr);
        b.switch_to_block(exit);
        let bits = b.cast(tfm_ir::CastOp::Bitcast, acc, Type::I64);
        b.ret(Some(bits));
    }
    m.verify().expect("mg is well-formed");

    WorkloadSpec {
        name: format!("nas-mg/{n}"),
        module: m,
        inputs: vec![InputData::F64(g0), InputData::Zeroed(nc as u64 * 8)],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Const(n as i64),
            ArgSpec::Const(nc as i64),
            ArgSpec::Const(cycles),
        ],
        expected: Some(expected),
    }
}

// ======================================================================
// SP — penta-diagonal-style line sweeps.
// ======================================================================

/// SP-like kernel: forward recurrences along independent lines, with
/// redundant coefficient loads and register-computed indices (the second
/// Fig. 17b O1 target).
pub fn sp(p: &NasParams) -> WorkloadSpec {
    let lines = 250 / p.shrink.min(5);
    let len = 1000usize;
    let total = lines * len;
    let a1: Vec<f64> = (0..total).map(|i| 0.1 + (i % 7) as f64 / 70.0).collect();
    let a2: Vec<f64> = (0..total).map(|i| 0.05 + (i % 5) as f64 / 100.0).collect();
    let bb: Vec<f64> = (0..total).map(|i| 1.0 + (i % 11) as f64 / 11.0).collect();

    let expected = {
        let mut x = vec![0.0f64; total];
        for l in 0..lines {
            let base = l * len;
            x[base] = bb[base];
            x[base + 1] = bb[base + 1];
            for i in 2..len {
                let t1 = a1[base + i];
                let t2 = a2[base + i];
                let v = bb[base + i] - t1 * x[base + i - 1] - t2 * x[base + i - 2];
                let denom = 1.0 / (t1 + t2 + 2.0);
                x[base + i] = v * denom;
            }
        }
        let mut s = 0.0f64;
        for v in &x {
            s += v;
        }
        s.to_bits()
    };

    let mut m = Module::new("nas_sp");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::I64,
                Type::I64,
            ],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let a1_p = b.param(0);
        let a2_p = b.param(1);
        let bb_p = b.param(2);
        let x_p = b.param(3);
        let lv = b.param(4);
        let nv = b.param(5);
        let zero = b.iconst(Type::I64, 0);

        b.counted_loop(zero, lv, 1, |b, l| {
            let base = b.binop(BinOp::Mul, l, nv);
            // x[base] = b[base]; x[base+1] = b[base+1].
            let ba = b.gep(bb_p, base, 8, 0);
            let bv = b.load(Type::F64, ba);
            let xa = b.gep(x_p, base, 8, 0);
            b.store(xa, bv);
            let ba1 = b.gep(bb_p, base, 8, 8);
            let bv1 = b.load(Type::F64, ba1);
            let xa1 = b.gep(x_p, base, 8, 8);
            b.store(xa1, bv1);
            let two = b.iconst(Type::I64, 2);
            b.counted_loop(two, nv, 1, |b, i| {
                // Register-computed index: base + i (defeats IV analysis).
                let idx = b.binop(BinOp::Add, base, i);
                // Redundant coefficient loads (O1 folds them).
                let aa1 = b.gep(a1_p, idx, 8, 0);
                let t1 = b.load(Type::F64, aa1);
                let aa2 = b.gep(a2_p, idx, 8, 0);
                let t2 = b.load(Type::F64, aa2);
                let aa1b = b.gep(a1_p, idx, 8, 0);
                let t1b = b.load(Type::F64, aa1b);
                let aa2b = b.gep(a2_p, idx, 8, 0);
                let t2b = b.load(Type::F64, aa2b);
                let bba = b.gep(bb_p, idx, 8, 0);
                let bv = b.load(Type::F64, bba);
                let xm1 = b.gep(x_p, idx, 8, -8);
                let x1 = b.load(Type::F64, xm1);
                let xm2 = b.gep(x_p, idx, 8, -16);
                let x2 = b.load(Type::F64, xm2);
                let p1 = b.binop(BinOp::Fmul, t1, x1);
                let p2 = b.binop(BinOp::Fmul, t2, x2);
                let v1 = b.binop(BinOp::Fsub, bv, p1);
                let v2 = b.binop(BinOp::Fsub, v1, p2);
                let twof = b.fconst(2.0);
                let d1 = b.binop(BinOp::Fadd, t1b, t2b);
                let d2 = b.binop(BinOp::Fadd, d1, twof);
                let onef = b.fconst(1.0);
                let denom = b.binop(BinOp::Fdiv, onef, d2);
                let res = b.binop(BinOp::Fmul, v2, denom);
                let xa2 = b.gep(x_p, idx, 8, 0);
                b.store(xa2, res);
            });
        });
        // Checksum over x.
        let total_v = b.binop(BinOp::Mul, lv, nv);
        let z2 = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let hdr = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let f0 = b.fconst(0.0);
        b.br(hdr);
        b.switch_to_block(hdr);
        let i = b.phi(Type::I64, &[(pre, z2)]);
        let acc = b.phi(Type::F64, &[(pre, f0)]);
        let c = b.icmp(CmpOp::Slt, i, total_v);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let xa = b.gep(x_p, i, 8, 0);
        let xv = b.load(Type::F64, xa);
        let acc2 = b.binop(BinOp::Fadd, acc, xv);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(hdr);
        b.switch_to_block(exit);
        let bits = b.cast(tfm_ir::CastOp::Bitcast, acc, Type::I64);
        b.ret(Some(bits));
    }
    m.verify().expect("sp is well-formed");

    WorkloadSpec {
        name: format!("nas-sp/{lines}x{len}"),
        module: m,
        inputs: vec![
            InputData::F64(a1),
            InputData::F64(a2),
            InputData::F64(bb),
            InputData::Zeroed(total as u64 * 8),
        ],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Input(2),
            ArgSpec::Input(3),
            ArgSpec::Const(lines as i64),
            ArgSpec::Const(len as i64),
        ],
        expected: Some(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute, RunConfig};

    fn tiny() -> NasParams {
        NasParams { shrink: 20 }
    }

    #[test]
    fn cg_checksum_everywhere() {
        let spec = cg(&tiny());
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.25));
        execute(&spec, &RunConfig::fastswap(0.25));
    }

    #[test]
    fn ft_checksum_and_guard_explosion() {
        let spec = ft(&tiny());
        execute(&spec, &RunConfig::local());
        let out = execute(&spec, &RunConfig::trackfm(0.25));
        // FT's register-computed indices defeat chunking: guards dominate.
        assert!(out.result.stats.guards_fast > 0);
        let rep = out.report.unwrap();
        assert!(rep.total_guards() >= 7, "FT should need many guards");
    }

    #[test]
    fn ft_o1_reduces_memory_instructions() {
        // Fig. 17b: O1 pre-pipeline collapses FT's redundant loads.
        let spec = ft(&tiny());
        let plain = execute(&spec, &RunConfig::trackfm(0.25));
        let mut o1 = RunConfig::trackfm(0.25);
        o1.compiler.o1 = true;
        let opt = execute(&spec, &o1);
        assert!(
            opt.result.stats.loads < plain.result.stats.loads / 2,
            "O1 should cut FT loads >2x: {} vs {}",
            opt.result.stats.loads,
            plain.result.stats.loads
        );
        assert!(opt.result.stats.cycles < plain.result.stats.cycles);
    }

    #[test]
    fn is_checksum_everywhere() {
        let spec = is(&tiny());
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.25));
    }

    #[test]
    fn mg_checksum_everywhere() {
        let spec = mg(&tiny());
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.25));
    }

    #[test]
    fn sp_checksum_and_o1() {
        let spec = sp(&tiny());
        execute(&spec, &RunConfig::local());
        let plain = execute(&spec, &RunConfig::trackfm(0.25));
        let mut o1 = RunConfig::trackfm(0.25);
        o1.compiler.o1 = true;
        let opt = execute(&spec, &o1);
        assert!(opt.result.stats.loads < plain.result.stats.loads);
    }

    #[test]
    fn all_returns_five_kernels() {
        let specs = all(&NasParams { shrink: 100 });
        assert_eq!(specs.len(), 5);
        let names: Vec<_> = specs.iter().map(|s| s.name.clone()).collect();
        for prefix in ["nas-cg", "nas-ft", "nas-is", "nas-mg", "nas-sp"] {
            assert!(names.iter().any(|n| n.starts_with(prefix)), "{names:?}");
        }
    }
}
