//! k-means clustering — the paper's Fig. 8 workload.
//!
//! §4.2: "we automatically transformed a k-means benchmark, which contains
//! many loops for which it would be detrimental to apply the loop chunking
//! transformation [...] k-means has many nested loops with a low object
//! density. Such nested loops amplify the cost of loop chunking."
//!
//! The structure below has exactly that character: the distance computation
//! iterates over `dims`-element rows (tens of bytes) inside loops entered
//! once per point × centroid, so a chunk stream set up for an 8-iteration
//! loop pays a locality-invariant guard it can never amortize.

use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use tfm_ir::{BinOp, CmpOp, FCmpOp, FunctionBuilder, Module, Signature, Type};

/// k-means parameters.
#[derive(Copy, Clone, Debug)]
pub struct KmeansParams {
    /// Number of points.
    pub points: usize,
    /// Dimensions per point (small → low object density).
    pub dims: usize,
    /// Number of centroids.
    pub k: usize,
    /// Lloyd iterations.
    pub iters: usize,
}

impl Default for KmeansParams {
    fn default() -> Self {
        KmeansParams {
            points: 30_000,
            dims: 8,
            k: 8,
            iters: 2,
        }
    }
}

fn synth_points(p: &KmeansParams) -> Vec<f64> {
    // Deterministic blobs around k anchors (no RNG dependency needed).
    let mut out = Vec::with_capacity(p.points * p.dims);
    for i in 0..p.points {
        let cluster = i % p.k;
        for j in 0..p.dims {
            let anchor = (cluster * 10 + j) as f64;
            let jitter = ((i.wrapping_mul(2654435761) >> 8) & 0xFF) as f64 / 256.0;
            out.push(anchor + jitter);
        }
    }
    out
}

fn init_centroids(p: &KmeansParams, points: &[f64]) -> Vec<f64> {
    // First k points.
    points[..p.k * p.dims].to_vec()
}

/// Host mirror of the IR program (bit-exact: same operation order).
fn reference(p: &KmeansParams, points: &[f64], centroids_init: &[f64]) -> u64 {
    let (n, d, k) = (p.points, p.dims, p.k);
    let mut centroids = centroids_init.to_vec();
    let mut checksum: i64 = 0;
    for _ in 0..p.iters {
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0i64; k];
        for i in 0..n {
            let row = &points[i * d..(i + 1) * d];
            let mut best = 0i64;
            let mut bestd = f64::INFINITY;
            for c in 0..k {
                let crow = &centroids[c * d..(c + 1) * d];
                let mut d2 = 0.0;
                for j in 0..d {
                    let diff = row[j] - crow[j];
                    d2 += diff * diff;
                }
                if d2 < bestd {
                    bestd = d2;
                    best = c as i64;
                }
            }
            counts[best as usize] += 1;
            for j in 0..d {
                sums[best as usize * d + j] += row[j];
            }
            checksum = checksum.wrapping_add(best);
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    centroids[c * d + j] = sums[c * d + j] / counts[c] as f64;
                }
            }
        }
    }
    checksum as u64
}

/// Builds the k-means workload.
///
/// `main(points, centroids, sums, counts, n, d, k, iters) -> i64` returns
/// the sum of assigned cluster ids across all iterations.
pub fn kmeans(p: &KmeansParams) -> WorkloadSpec {
    let pts = synth_points(p);
    let cents = init_centroids(p, &pts);
    let expected = reference(p, &pts, &cents);

    let mut m = Module::new("kmeans");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![
                Type::Ptr, // points
                Type::Ptr, // centroids
                Type::Ptr, // sums scratch (k*d f64)
                Type::Ptr, // counts scratch (k i64)
                Type::I64, // n
                Type::I64, // d
                Type::I64, // k
                Type::I64, // iters
            ],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let points = b.param(0);
        let centroids = b.param(1);
        let sums = b.param(2);
        let counts = b.param(3);
        let n = b.param(4);
        let d = b.param(5);
        let k = b.param(6);
        let iters = b.param(7);

        let zero = b.iconst(Type::I64, 0);
        let checksum = b.alloca(8, 8);
        b.store(checksum, zero);
        // Locals hoisted to the entry block, as clang would emit them
        // (allocas in loop bodies would grow the stack per iteration).
        let best = b.alloca(8, 8);
        let bestd = b.alloca(8, 8);
        let kd = b.binop(BinOp::Mul, k, d);

        b.counted_loop(zero, iters, 1, |b, _it| {
            // Zero scratch.
            let z0 = b.iconst(Type::I64, 0);
            let f0 = b.fconst(0.0);
            b.counted_loop(z0, kd, 1, |b, j| {
                let a = b.gep(sums, j, 8, 0);
                b.store(a, f0);
            });
            let z1 = b.iconst(Type::I64, 0);
            b.counted_loop(z1, k, 1, |b, c| {
                let a = b.gep(counts, c, 8, 0);
                b.store(a, z1);
            });

            // Assignment step.
            let z2 = b.iconst(Type::I64, 0);
            b.counted_loop(z2, n, 1, |b, i| {
                let id8 = b.binop(BinOp::Mul, i, d);
                let row = b.gep(points, id8, 8, 0);
                let zz = b.iconst(Type::I64, 0);
                let inf = b.fconst(f64::INFINITY);
                b.store(best, zz);
                b.store(bestd, inf);
                let z3 = b.iconst(Type::I64, 0);
                b.counted_loop(z3, k, 1, |b, c| {
                    let cd = b.binop(BinOp::Mul, c, d);
                    let crow = b.gep(centroids, cd, 8, 0);
                    // Inner distance loop: the low-density nested loop.
                    let z4 = b.iconst(Type::I64, 0);
                    let pre = b.current_block();
                    let hdr = b.create_block();
                    let body = b.create_block();
                    let exit = b.create_block();
                    let f0 = b.fconst(0.0);
                    b.br(hdr);
                    b.switch_to_block(hdr);
                    let j = b.phi(Type::I64, &[(pre, z4)]);
                    let acc = b.phi(Type::F64, &[(pre, f0)]);
                    let cj = b.icmp(CmpOp::Slt, j, d);
                    b.cond_br(cj, body, exit);
                    b.switch_to_block(body);
                    let pa = b.gep(row, j, 8, 0);
                    let ca = b.gep(crow, j, 8, 0);
                    let pv = b.load(Type::F64, pa);
                    let cv = b.load(Type::F64, ca);
                    let diff = b.binop(BinOp::Fsub, pv, cv);
                    let sq = b.binop(BinOp::Fmul, diff, diff);
                    let acc2 = b.binop(BinOp::Fadd, acc, sq);
                    let one = b.iconst(Type::I64, 1);
                    let j2 = b.binop(BinOp::Add, j, one);
                    b.add_phi_incoming(j, body, j2);
                    b.add_phi_incoming(acc, body, acc2);
                    b.br(hdr);
                    b.switch_to_block(exit);
                    // if acc < bestd { bestd = acc; best = c }
                    let cur = b.load(Type::F64, bestd);
                    let lt = b.fcmp(FCmpOp::Olt, acc, cur);
                    let upd = b.create_block();
                    let cont = b.create_block();
                    b.cond_br(lt, upd, cont);
                    b.switch_to_block(upd);
                    b.store(bestd, acc);
                    b.store(best, c);
                    b.br(cont);
                    b.switch_to_block(cont);
                });
                // Accumulate into the winning cluster.
                let bi = b.load(Type::I64, best);
                let ca = b.gep(counts, bi, 8, 0);
                let cv = b.load(Type::I64, ca);
                let one = b.iconst(Type::I64, 1);
                let cv2 = b.binop(BinOp::Add, cv, one);
                b.store(ca, cv2);
                let bd = b.binop(BinOp::Mul, bi, d);
                let srow = b.gep(sums, bd, 8, 0);
                let z5 = b.iconst(Type::I64, 0);
                b.counted_loop(z5, d, 1, |b, j| {
                    let pa = b.gep(row, j, 8, 0);
                    let sa = b.gep(srow, j, 8, 0);
                    let pv = b.load(Type::F64, pa);
                    let sv = b.load(Type::F64, sa);
                    let sv2 = b.binop(BinOp::Fadd, sv, pv);
                    b.store(sa, sv2);
                });
                let cs = b.load(Type::I64, checksum);
                let cs2 = b.binop(BinOp::Add, cs, bi);
                b.store(checksum, cs2);
            });

            // Update step.
            let z6 = b.iconst(Type::I64, 0);
            b.counted_loop(z6, k, 1, |b, c| {
                let ca = b.gep(counts, c, 8, 0);
                let cnt = b.load(Type::I64, ca);
                let zz = b.iconst(Type::I64, 0);
                let nonzero = b.icmp(CmpOp::Sgt, cnt, zz);
                let doit = b.create_block();
                let skip = b.create_block();
                b.cond_br(nonzero, doit, skip);
                b.switch_to_block(doit);
                let cntf = b.cast(tfm_ir::CastOp::SiToFp, cnt, Type::F64);
                let cd = b.binop(BinOp::Mul, c, d);
                let srow = b.gep(sums, cd, 8, 0);
                let crow = b.gep(centroids, cd, 8, 0);
                let z7 = b.iconst(Type::I64, 0);
                b.counted_loop(z7, d, 1, |b, j| {
                    let sa = b.gep(srow, j, 8, 0);
                    let caab = b.gep(crow, j, 8, 0);
                    let sv = b.load(Type::F64, sa);
                    let mean = b.binop(BinOp::Fdiv, sv, cntf);
                    b.store(caab, mean);
                });
                b.br(skip);
                b.switch_to_block(skip);
            });
        });

        let out = b.load(Type::I64, checksum);
        b.ret(Some(out));
    }
    m.verify().expect("kmeans is well-formed");

    WorkloadSpec {
        name: format!("kmeans/{}x{}", p.points, p.dims),
        module: m,
        inputs: vec![
            InputData::F64(pts),
            InputData::F64(cents),
            InputData::Zeroed((p.k * p.dims * 8) as u64),
            InputData::Zeroed((p.k * 8) as u64),
        ],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Input(2),
            ArgSpec::Input(3),
            ArgSpec::Const(p.points as i64),
            ArgSpec::Const(p.dims as i64),
            ArgSpec::Const(p.k as i64),
            ArgSpec::Const(p.iters as i64),
        ],
        expected: Some(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{collect_profile, execute, execute_with_profile, RunConfig};
    use trackfm::ChunkingMode;

    fn small() -> KmeansParams {
        KmeansParams {
            points: 2_000,
            dims: 8,
            k: 4,
            iters: 2,
        }
    }

    #[test]
    fn checksum_matches_reference_everywhere() {
        let spec = kmeans(&small());
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.5));
        execute(&spec, &RunConfig::fastswap(0.5));
    }

    #[test]
    fn indiscriminate_chunking_hurts_kmeans() {
        // The Fig. 8 mechanism: all-loops chunking pays locality guards in
        // 8-iteration inner loops.
        let spec = kmeans(&small());
        let profile = collect_profile(&spec);

        let mut all = RunConfig::trackfm(1.0);
        all.compiler.chunking = ChunkingMode::AllLoops;
        let mut filtered = RunConfig::trackfm(1.0);
        filtered.compiler.chunking = ChunkingMode::CostModel;
        let mut off = RunConfig::trackfm(1.0);
        off.compiler.chunking = ChunkingMode::Off;

        let r_all = execute(&spec, &all);
        let r_filtered = execute_with_profile(&spec, &filtered, Some(&profile));
        let r_off = execute(&spec, &off);

        let c_all = r_all.result.stats.cycles as f64;
        let c_filtered = r_filtered.result.stats.cycles as f64;
        let c_off = r_off.result.stats.cycles as f64;
        assert!(
            c_all > 1.5 * c_off,
            "all-loops chunking should slow k-means down: {c_all} vs {c_off}"
        );
        assert!(
            c_filtered < c_all / 1.5,
            "profile-guided filter should rescue it: {c_filtered} vs {c_all}"
        );
        // The filter must actually have skipped streams.
        let rep = r_filtered.report.unwrap();
        assert!(rep.chunking.skipped_low_benefit > 0);
    }
}
