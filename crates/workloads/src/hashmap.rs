//! Zipfian hash-map lookups — the paper's Figs. 9/13 workload.
//!
//! §4.3: "The first microbenchmark involves accessing a hashmap, much like
//! how a key-value store would operate. [...] a small handful of the entries
//! in the hashmap will constitute the majority of accesses, so there will be
//! a high degree of temporal locality (but little spatial locality), and
//! accesses occur at very small granularities." Small object sizes win here
//! (Fig. 9) and page-granularity Fastswap suffers 43× I/O amplification
//! (Fig. 13).
//!
//! The table is open-addressing with linear probing: 16-byte slots
//! `(key, value)`, key 0 = empty, multiplicative hashing. Probing uses a
//! masked increment, which is deliberately *not* an affine induction
//! variable — loop chunking correctly stays away, leaving per-access guards
//! exactly as the paper describes for irregular structures.

use crate::rng::SplitMix64;
use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use crate::zipf::zipf_trace;
use tfm_ir::{BinOp, CmpOp, FunctionBuilder, Module, Signature, Type};

/// Hash-map workload parameters.
#[derive(Copy, Clone, Debug)]
pub struct HashmapParams {
    /// Number of key/value pairs inserted.
    pub keys: usize,
    /// Number of Zipf-distributed lookups.
    pub lookups: usize,
    /// Zipf skew (the paper uses 1.02).
    pub skew: f64,
    /// RNG seed for the trace.
    pub seed: u64,
}

impl Default for HashmapParams {
    fn default() -> Self {
        HashmapParams {
            keys: 200_000, // ~6.4 MiB table at load factor 0.5
            lookups: 500_000,
            skew: 1.02,
            seed: 42,
        }
    }
}

const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

fn hash_slot(key: u64, mask: u64) -> u64 {
    (key.wrapping_mul(HASH_MULT) >> 32) & mask
}

fn value_of(key: u64) -> u64 {
    key.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// Builds the table host-side (the IR program only does lookups, like the
/// paper's 50M-lookup measurement phase).
fn build_table(p: &HashmapParams) -> (Vec<u64>, u64) {
    let capacity = (p.keys * 2).next_power_of_two() as u64;
    let mask = capacity - 1;
    let mut slots = vec![0u64; (capacity * 2) as usize];
    for rank in 0..p.keys as u64 {
        let key = rank + 1; // nonzero, distinct
        let mut h = hash_slot(key, mask);
        loop {
            let idx = (h * 2) as usize;
            if slots[idx] == 0 {
                slots[idx] = key;
                slots[idx + 1] = value_of(key);
                break;
            }
            h = (h + 1) & mask;
        }
    }
    (slots, mask)
}

fn reference(slots: &[u64], mask: u64, trace: &[u64]) -> u64 {
    let mut sum = 0u64;
    for &key in trace {
        let mut h = hash_slot(key, mask);
        loop {
            let idx = (h * 2) as usize;
            if slots[idx] == key {
                sum = sum.wrapping_add(slots[idx + 1]);
                break;
            }
            if slots[idx] == 0 {
                break;
            }
            h = (h + 1) & mask;
        }
    }
    sum
}

/// Builds the hash-map workload.
///
/// `main(table, mask, trace, n) -> i64` returns the wrapped sum of all
/// looked-up values.
pub fn hashmap(p: &HashmapParams) -> WorkloadSpec {
    let (slots, mask) = build_table(p);
    let mut rng = SplitMix64::seed_from_u64(p.seed);
    let trace: Vec<u64> = zipf_trace(p.keys as u64, p.skew, p.lookups, &mut rng)
        .into_iter()
        .map(|rank| rank + 1)
        .collect();
    let expected = reference(&slots, mask, &trace);

    let mut m = Module::new("hashmap");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![Type::Ptr, Type::I64, Type::Ptr, Type::I64],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let table = b.param(0);
        let mask_v = b.param(1);
        let trace_p = b.param(2);
        let n = b.param(3);
        let zero = b.iconst(Type::I64, 0);
        let sum = b.alloca(8, 8);
        b.store(sum, zero);

        b.counted_loop(zero, n, 1, |b, t| {
            let kaddr = b.gep(trace_p, t, 8, 0);
            let key = b.load(Type::I64, kaddr);
            let mult = b.iconst(Type::I64, HASH_MULT as i64);
            let hm = b.binop(BinOp::Mul, key, mult);
            let c32 = b.iconst(Type::I64, 32);
            let hs = b.binop(BinOp::Lshr, hm, c32);
            let h0 = b.binop(BinOp::And, hs, mask_v);

            let pre = b.current_block();
            let probe = b.create_block();
            let check_empty = b.create_block();
            let found = b.create_block();
            let next = b.create_block();
            let done = b.create_block();

            b.br(probe);
            b.switch_to_block(probe);
            let h = b.phi(Type::I64, &[(pre, h0)]);
            let slot = b.gep(table, h, 16, 0);
            let skey = b.load(Type::I64, slot);
            let hit = b.icmp(CmpOp::Eq, skey, key);
            b.cond_br(hit, found, check_empty);

            b.switch_to_block(check_empty);
            let zz = b.iconst(Type::I64, 0);
            let empty = b.icmp(CmpOp::Eq, skey, zz);
            b.cond_br(empty, done, next);

            b.switch_to_block(next);
            let one = b.iconst(Type::I64, 1);
            let h1 = b.binop(BinOp::Add, h, one);
            let h2 = b.binop(BinOp::And, h1, mask_v);
            b.add_phi_incoming(h, next, h2);
            b.br(probe);

            b.switch_to_block(found);
            let vaddr = b.gep(table, h, 16, 8);
            let val = b.load(Type::I64, vaddr);
            let s = b.load(Type::I64, sum);
            let s2 = b.binop(BinOp::Add, s, val);
            b.store(sum, s2);
            b.br(done);

            b.switch_to_block(done);
        });

        let out = b.load(Type::I64, sum);
        b.ret(Some(out));
    }
    m.verify().expect("hashmap is well-formed");

    WorkloadSpec {
        name: format!("hashmap/{}k-{}", p.keys / 1000, p.skew),
        module: m,
        inputs: vec![InputData::U64(slots), InputData::U64(trace)],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Const(mask as i64),
            ArgSpec::Input(1),
            ArgSpec::Const(p.lookups as i64),
        ],
        expected: Some(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute, RunConfig};

    fn small() -> HashmapParams {
        HashmapParams {
            keys: 4_000,
            lookups: 10_000,
            skew: 1.02,
            seed: 7,
        }
    }

    #[test]
    fn lookups_are_semantically_preserved() {
        let spec = hashmap(&small());
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.25).with_object_size(256));
        execute(&spec, &RunConfig::fastswap(0.25));
    }

    #[test]
    fn probe_loop_is_not_chunked() {
        let spec = hashmap(&small());
        let out = execute(&spec, &RunConfig::trackfm(0.5));
        let rep = out.report.unwrap();
        // The trace scan may chunk, but slot probing must use plain guards.
        assert!(out.result.stats.guards_fast > 0);
        let _ = rep;
    }

    #[test]
    fn small_objects_reduce_io_amplification() {
        // The Fig. 9/13 mechanism at 25% local memory.
        let spec = hashmap(&small());
        let big = execute(&spec, &RunConfig::trackfm(0.25).with_object_size(4096));
        let small_o = execute(&spec, &RunConfig::trackfm(0.25).with_object_size(64));
        assert!(
            small_o.result.bytes_transferred() < big.result.bytes_transferred() / 4,
            "64B objects should move far less data: {} vs {}",
            small_o.result.bytes_transferred(),
            big.result.bytes_transferred()
        );
    }
}
