//! Columnar taxi-trip analytics — the paper's Figs. 14/15 application.
//!
//! §4.5: a Kaggle NYC-taxi analysis on a C dataframe library, 31 GB working
//! set, "many column scan operations, which involve tight loops with almost
//! no temporal locality but a high degree of spatial locality" (Fig. 14),
//! plus "several aggregation operations that involve loops that iterate
//! over small collections of table rows (low object density)" that make
//! indiscriminate chunking a slowdown (Fig. 15).
//!
//! The pipeline below has both phases over synthetic columns:
//!
//! 1. range-filter count over the distance column (scan);
//! 2. predicated sum over the fare column (scan);
//! 3. pickup-hour histogram (scan + tiny indexed writes);
//! 4. per-group fare averages over an index-list grouping whose per-group
//!    row lists are short — the low-density aggregation loops of Fig. 15.

use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use tfm_ir::{BinOp, CastOp, CmpOp, FunctionBuilder, Module, Signature, Type};

/// Analytics parameters.
#[derive(Copy, Clone, Debug)]
pub struct AnalyticsParams {
    /// Number of rows.
    pub rows: usize,
    /// Number of aggregation groups (rows/groups per-group list length;
    /// keep it small for the Fig. 15 effect).
    pub groups: usize,
}

impl Default for AnalyticsParams {
    fn default() -> Self {
        AnalyticsParams {
            rows: 200_000, // ~5.6 MiB of columns
            groups: 16_000,
        }
    }
}

struct Columns {
    dist: Vec<f64>,
    fare: Vec<f64>,
    hour: Vec<u32>,
    pass: Vec<u32>,
    offs: Vec<u64>,
    rows: Vec<u64>,
}

fn synth(p: &AnalyticsParams) -> Columns {
    let n = p.rows;
    let mut dist = Vec::with_capacity(n);
    let mut fare = Vec::with_capacity(n);
    let mut hour = Vec::with_capacity(n);
    let mut pass = Vec::with_capacity(n);
    for i in 0..n {
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        dist.push(((h >> 16) & 0x3FF) as f64 / 32.0); // 0..32 miles
        fare.push(2.5 + ((h >> 26) & 0xFFF) as f64 / 64.0);
        hour.push(((h >> 38) % 24) as u32);
        pass.push((1 + (h >> 43) % 6) as u32);
    }
    // Round-robin grouping: group g owns rows g, g+G, g+2G, ...
    let g = p.groups;
    let mut offs = Vec::with_capacity(g + 1);
    let mut rows = Vec::with_capacity(n);
    let mut acc = 0u64;
    for grp in 0..g {
        offs.push(acc);
        let mut r = grp;
        while r < n {
            rows.push(r as u64);
            acc += 1;
            r += g;
        }
    }
    offs.push(acc);
    Columns {
        dist,
        fare,
        hour,
        pass,
        offs,
        rows,
    }
}

fn reference(c: &Columns, n: usize, groups: usize) -> u64 {
    // Q1: count 2 <= dist < 10.
    let mut q1 = 0u64;
    for i in 0..n {
        if c.dist[i] >= 2.0 && c.dist[i] < 10.0 {
            q1 += 1;
        }
    }
    // Q2: sum fare where pass == 2.
    let mut q2 = 0.0f64;
    for i in 0..n {
        if c.pass[i] == 2 {
            q2 += c.fare[i];
        }
    }
    // Q3: hour histogram, then weighted sum.
    let mut hist = [0u64; 24];
    for i in 0..n {
        hist[c.hour[i] as usize] += 1;
    }
    let q3: u64 = hist
        .iter()
        .enumerate()
        .map(|(h, &cnt)| cnt.wrapping_mul(h as u64 + 1))
        .fold(0u64, |a, x| a.wrapping_add(x));
    // Q4: per-group fare sums folded together.
    let mut q4 = 0.0f64;
    for g in 0..groups {
        let mut s = 0.0f64;
        for r in c.offs[g]..c.offs[g + 1] {
            s += c.fare[c.rows[r as usize] as usize];
        }
        q4 += s;
    }
    q1.wrapping_add(q2.to_bits())
        .wrapping_add(q3)
        .wrapping_add(q4.to_bits())
}

/// Builds the analytics workload.
///
/// `main(dist, fare, hour, pass, hist, offs, rows, n, groups) -> i64`
/// returns the combined checksum of all four queries.
pub fn analytics(p: &AnalyticsParams) -> WorkloadSpec {
    let c = synth(p);
    let expected = reference(&c, p.rows, p.groups);

    let mut m = Module::new("analytics");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::Ptr,
                Type::I64,
                Type::I64,
            ],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let dist = b.param(0);
        let fare = b.param(1);
        let hour = b.param(2);
        let pass = b.param(3);
        let hist = b.param(4);
        let offs = b.param(5);
        let rows = b.param(6);
        let n = b.param(7);
        let groups = b.param(8);

        let zero = b.iconst(Type::I64, 0);
        let q1 = b.alloca(8, 8);
        let q2 = b.alloca(8, 8);
        let q4 = b.alloca(8, 8);
        let f0 = b.fconst(0.0);
        b.store(q1, zero);
        b.store(q2, f0);
        b.store(q4, f0);

        // Q1: range filter over dist.
        b.counted_loop(zero, n, 1, |b, i| {
            let a = b.gep(dist, i, 8, 0);
            let d = b.load(Type::F64, a);
            let lo = b.fconst(2.0);
            let hi = b.fconst(10.0);
            let ge = b.fcmp(tfm_ir::FCmpOp::Oge, d, lo);
            let lt = b.fcmp(tfm_ir::FCmpOp::Olt, d, hi);
            let both = b.binop(BinOp::And, ge, lt);
            let cur = b.load(Type::I64, q1);
            let nxt = b.binop(BinOp::Add, cur, both);
            b.store(q1, nxt);
        });

        // Q2: predicated fare sum.
        let z1 = b.iconst(Type::I64, 0);
        b.counted_loop(z1, n, 1, |b, i| {
            let pa = b.gep(pass, i, 4, 0);
            let pv = b.load(Type::I32, pa);
            let two = b.iconst(Type::I32, 2);
            let is2 = b.icmp(CmpOp::Eq, pv, two);
            let hit = b.create_block();
            let cont = b.create_block();
            b.cond_br(is2, hit, cont);
            b.switch_to_block(hit);
            let fa = b.gep(fare, i, 8, 0);
            let fv = b.load(Type::F64, fa);
            let cur = b.load(Type::F64, q2);
            let nxt = b.binop(BinOp::Fadd, cur, fv);
            b.store(q2, nxt);
            b.br(cont);
            b.switch_to_block(cont);
        });

        // Q3: hour histogram.
        let z2 = b.iconst(Type::I64, 0);
        b.counted_loop(z2, n, 1, |b, i| {
            let ha = b.gep(hour, i, 4, 0);
            let hv = b.load(Type::I32, ha);
            let hx = b.cast(CastOp::Sext, hv, Type::I64);
            let slot = b.gep(hist, hx, 8, 0);
            let cur = b.load(Type::I64, slot);
            let one = b.iconst(Type::I64, 1);
            let nxt = b.binop(BinOp::Add, cur, one);
            b.store(slot, nxt);
        });
        // Weighted histogram fold.
        let q3v = b.alloca(8, 8);
        b.store(q3v, zero);
        let z3 = b.iconst(Type::I64, 0);
        let c24 = b.iconst(Type::I64, 24);
        b.counted_loop(z3, c24, 1, |b, h| {
            let slot = b.gep(hist, h, 8, 0);
            let cnt = b.load(Type::I64, slot);
            let one = b.iconst(Type::I64, 1);
            let w = b.binop(BinOp::Add, h, one);
            let prod = b.binop(BinOp::Mul, cnt, w);
            let cur = b.load(Type::I64, q3v);
            let nxt = b.binop(BinOp::Add, cur, prod);
            b.store(q3v, nxt);
        });

        // Q4: short per-group aggregation loops (the Fig. 15 villains).
        let z4 = b.iconst(Type::I64, 0);
        b.counted_loop(z4, groups, 1, |b, g| {
            let oa = b.gep(offs, g, 8, 0);
            let ob = b.gep(offs, g, 8, 8);
            let start = b.load(Type::I64, oa);
            let end = b.load(Type::I64, ob);
            // Inner short loop with its own accumulator phi.
            let pre = b.current_block();
            let hdr = b.create_block();
            let body = b.create_block();
            let exit = b.create_block();
            let f00 = b.fconst(0.0);
            b.br(hdr);
            b.switch_to_block(hdr);
            let r = b.phi(Type::I64, &[(pre, start)]);
            let acc = b.phi(Type::F64, &[(pre, f00)]);
            let c = b.icmp(CmpOp::Slt, r, end);
            b.cond_br(c, body, exit);
            b.switch_to_block(body);
            let ra = b.gep(rows, r, 8, 0);
            let ridx = b.load(Type::I64, ra);
            let fa = b.gep(fare, ridx, 8, 0);
            let fv = b.load(Type::F64, fa);
            let acc2 = b.binop(BinOp::Fadd, acc, fv);
            let one = b.iconst(Type::I64, 1);
            let r2 = b.binop(BinOp::Add, r, one);
            b.add_phi_incoming(r, body, r2);
            b.add_phi_incoming(acc, body, acc2);
            b.br(hdr);
            b.switch_to_block(exit);
            let cur = b.load(Type::F64, q4);
            let nxt = b.binop(BinOp::Fadd, cur, acc);
            b.store(q4, nxt);
        });

        // Combine: q1 + bits(q2) + q3 + bits(q4), all wrapping.
        let v1 = b.load(Type::I64, q1);
        let v2f = b.load(Type::F64, q2);
        let v2 = b.cast(CastOp::Bitcast, v2f, Type::I64);
        let v3 = b.load(Type::I64, q3v);
        let v4f = b.load(Type::F64, q4);
        let v4 = b.cast(CastOp::Bitcast, v4f, Type::I64);
        let s1 = b.binop(BinOp::Add, v1, v2);
        let s2 = b.binop(BinOp::Add, s1, v3);
        let s3 = b.binop(BinOp::Add, s2, v4);
        b.ret(Some(s3));
    }
    m.verify().expect("analytics is well-formed");

    WorkloadSpec {
        name: format!("analytics/{}k", p.rows / 1000),
        module: m,
        inputs: vec![
            InputData::F64(c.dist),
            InputData::F64(c.fare),
            InputData::U32(c.hour),
            InputData::U32(c.pass),
            InputData::Zeroed(24 * 8),
            InputData::U64(c.offs),
            InputData::U64(c.rows),
        ],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Input(2),
            ArgSpec::Input(3),
            ArgSpec::Input(4),
            ArgSpec::Input(5),
            ArgSpec::Input(6),
            ArgSpec::Const(p.rows as i64),
            ArgSpec::Const(p.groups as i64),
        ],
        expected: Some(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{collect_profile, execute, execute_with_profile, RunConfig};
    use trackfm::ChunkingMode;

    fn small() -> AnalyticsParams {
        AnalyticsParams {
            rows: 12_000,
            groups: 1_000,
        }
    }

    #[test]
    fn checksum_matches_everywhere() {
        let spec = analytics(&small());
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.25));
        execute(&spec, &RunConfig::fastswap(0.25));
        execute(&spec, &RunConfig::aifm(0.25));
    }

    #[test]
    fn selective_chunking_beats_all_loops() {
        // Fig. 15: chunking the short per-group loops hurts.
        let spec = analytics(&small());
        let profile = collect_profile(&spec);
        let mut all = RunConfig::trackfm(0.5);
        all.compiler.chunking = ChunkingMode::AllLoops;
        let mut model = RunConfig::trackfm(0.5);
        model.compiler.chunking = ChunkingMode::CostModel;
        let r_all = execute(&spec, &all);
        let r_model = execute_with_profile(&spec, &model, Some(&profile));
        assert!(
            r_model.result.stats.cycles < r_all.result.stats.cycles,
            "model-filtered chunking must beat indiscriminate chunking"
        );
        assert!(r_model.report.unwrap().chunking.skipped_low_benefit > 0);
    }
}
