//! STREAM (McCalpin) — the paper's sequential-access microbenchmark.
//!
//! Used by Figs. 7 (chunking speedup), 10 (object-size choice), 11
//! (prefetching) and 12 (vs. Fastswap). Elements are 4-byte integers, as in
//! §4.2 ("sequential access to arrays of small elements (integers)"), giving
//! an object density of 1024 at the 4 KB object size.

use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use tfm_ir::{BinOp, CastOp, FunctionBuilder, Module, Signature, Type};

/// STREAM parameters.
#[derive(Copy, Clone, Debug)]
pub struct StreamParams {
    /// Number of 4-byte elements per array.
    pub elems: usize,
}

impl Default for StreamParams {
    fn default() -> Self {
        // 8 MiB per array — scaled from the paper's 12 GB working set; the
        // local-memory *fraction* is what the figures sweep.
        StreamParams { elems: 2 << 20 }
    }
}

fn input_values(p: &StreamParams) -> Vec<u32> {
    (0..p.elems as u32)
        .map(|i| i.wrapping_mul(7).wrapping_add(3) & 0xFFFF)
        .collect()
}

/// Builds the "Sum" test: `for i { sum += a[i] }`.
pub fn sum(p: &StreamParams) -> WorkloadSpec {
    let vals = input_values(p);
    let expected: u64 = vals.iter().map(|&v| v as u64).sum();

    let mut m = Module::new("stream_sum");
    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.br(header);
        b.switch_to_block(header);
        let i = b.phi(Type::I64, &[(pre, zero)]);
        let acc = b.phi(Type::I64, &[(pre, zero)]);
        let c = b.icmp(tfm_ir::CmpOp::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let addr = b.gep(a, i, 4, 0);
        let x32 = b.load(Type::I32, addr);
        let x = b.cast(CastOp::Sext, x32, Type::I64);
        let acc2 = b.binop(BinOp::Add, acc, x);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to_block(exit);
        b.ret(Some(acc));
    }
    m.verify().expect("stream sum is well-formed");

    WorkloadSpec {
        name: format!("stream-sum/{}", p.elems),
        module: m,
        inputs: vec![InputData::U32(vals)],
        args: vec![ArgSpec::Input(0), ArgSpec::Const(p.elems as i64)],
        expected: Some(expected),
    }
}

/// Builds the "Copy" test: `for i { b[i] = a[i] }` (returning the running
/// sum of copied elements as the checksum).
pub fn copy(p: &StreamParams) -> WorkloadSpec {
    let vals = input_values(p);
    let expected: u64 = vals.iter().map(|&v| v as u64).sum();

    let mut m = Module::new("stream_copy");
    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let src = b.param(0);
        let dst = b.param(1);
        let n = b.param(2);
        let zero = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.br(header);
        b.switch_to_block(header);
        let i = b.phi(Type::I64, &[(pre, zero)]);
        let acc = b.phi(Type::I64, &[(pre, zero)]);
        let c = b.icmp(tfm_ir::CmpOp::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let saddr = b.gep(src, i, 4, 0);
        let daddr = b.gep(dst, i, 4, 0);
        let x32 = b.load(Type::I32, saddr);
        b.store(daddr, x32);
        let x = b.cast(CastOp::Sext, x32, Type::I64);
        let acc2 = b.binop(BinOp::Add, acc, x);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to_block(exit);
        b.ret(Some(acc));
    }
    m.verify().expect("stream copy is well-formed");

    WorkloadSpec {
        name: format!("stream-copy/{}", p.elems),
        module: m,
        inputs: vec![InputData::U32(vals), InputData::Zeroed(p.elems as u64 * 4)],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Const(p.elems as i64),
        ],
        expected: Some(expected),
    }
}

/// Builds the "Triad" test: `a[i] = b[i] + 3.0 * c[i]` over `f64` arrays
/// (three streams, two reads + one write per iteration — the heaviest
/// STREAM kernel).
pub fn triad(p: &StreamParams) -> WorkloadSpec {
    let n = p.elems / 2; // f64 arrays; halve the count to keep bytes similar
    let bvals: Vec<f64> = (0..n).map(|i| (i % 100) as f64 / 10.0).collect();
    let cvals: Vec<f64> = (0..n).map(|i| (i % 37) as f64 / 7.0).collect();
    let expected = {
        let mut acc = 0.0f64;
        for i in 0..n {
            let a = bvals[i] + 3.0 * cvals[i];
            acc += a;
        }
        acc.to_bits()
    };

    let mut m = Module::new("stream_triad");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![Type::Ptr, Type::Ptr, Type::Ptr, Type::I64],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let a = b.param(0);
        let bb = b.param(1);
        let cc = b.param(2);
        let n_v = b.param(3);
        let zero = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let f0 = b.fconst(0.0);
        b.br(header);
        b.switch_to_block(header);
        let i = b.phi(Type::I64, &[(pre, zero)]);
        let acc = b.phi(Type::F64, &[(pre, f0)]);
        let cnd = b.icmp(tfm_ir::CmpOp::Slt, i, n_v);
        b.cond_br(cnd, body, exit);
        b.switch_to_block(body);
        let ba = b.gep(bb, i, 8, 0);
        let ca = b.gep(cc, i, 8, 0);
        let aa = b.gep(a, i, 8, 0);
        let bv = b.load(Type::F64, ba);
        let cv = b.load(Type::F64, ca);
        let three = b.fconst(3.0);
        let scaled = b.binop(BinOp::Fmul, three, cv);
        let av = b.binop(BinOp::Fadd, bv, scaled);
        b.store(aa, av);
        let acc2 = b.binop(BinOp::Fadd, acc, av);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to_block(exit);
        let bits = b.cast(CastOp::Bitcast, acc, Type::I64);
        b.ret(Some(bits));
    }
    m.verify().expect("stream triad is well-formed");

    WorkloadSpec {
        name: format!("stream-triad/{n}"),
        module: m,
        inputs: vec![
            InputData::Zeroed(n as u64 * 8),
            InputData::F64(bvals),
            InputData::F64(cvals),
        ],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Input(1),
            ArgSpec::Input(2),
            ArgSpec::Const(n as i64),
        ],
        expected: Some(expected),
    }
}

/// Builds a STREAM-like "Sum" over elements of arbitrary byte stride —
/// used by the Fig. 6 cost-model crossover sweep (the loop touches the
/// first 8 bytes of each `elem_bytes`-wide record).
pub fn strided_sum(elems: usize, elem_bytes: u32) -> WorkloadSpec {
    assert!(elem_bytes >= 8 && elem_bytes.is_multiple_of(8));
    let n_words = elems * (elem_bytes as usize / 8);
    let vals: Vec<u64> = (0..n_words as u64).map(|i| i & 0xFF).collect();
    let stride_words = (elem_bytes / 8) as u64;
    let expected: u64 = (0..elems as u64)
        .map(|i| vals[(i * stride_words) as usize])
        .sum();

    let mut m = Module::new("strided_sum");
    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::I64], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let a = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(Type::I64, 0);
        let pre = b.current_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.br(header);
        b.switch_to_block(header);
        let i = b.phi(Type::I64, &[(pre, zero)]);
        let acc = b.phi(Type::I64, &[(pre, zero)]);
        let c = b.icmp(tfm_ir::CmpOp::Slt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to_block(body);
        let addr = b.gep(a, i, elem_bytes, 0);
        let x = b.load(Type::I64, addr);
        let acc2 = b.binop(BinOp::Add, acc, x);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binop(BinOp::Add, i, one);
        b.add_phi_incoming(i, body, i2);
        b.add_phi_incoming(acc, body, acc2);
        b.br(header);
        b.switch_to_block(exit);
        b.ret(Some(acc));
    }
    m.verify().expect("strided sum is well-formed");

    WorkloadSpec {
        name: format!("strided-sum/{elems}x{elem_bytes}"),
        module: m,
        inputs: vec![InputData::U64(vals)],
        args: vec![ArgSpec::Input(0), ArgSpec::Const(elems as i64)],
        expected: Some(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute, RunConfig};

    fn small() -> StreamParams {
        StreamParams { elems: 64 << 10 } // 256 KiB
    }

    #[test]
    fn sum_is_semantically_preserved_everywhere() {
        let spec = sum(&small());
        for cfg in [
            RunConfig::local(),
            RunConfig::fastswap(0.25),
            RunConfig::trackfm(0.25),
            RunConfig::aifm(0.25),
        ] {
            let out = execute(&spec, &cfg); // panics on wrong checksum
            assert!(out.result.stats.cycles > 0);
        }
    }

    #[test]
    fn copy_moves_data_under_trackfm() {
        let spec = copy(&small());
        let out = execute(&spec, &RunConfig::trackfm(0.25));
        let report = out.report.unwrap();
        assert_eq!(report.chunking.streams, 2);
        assert!(out.result.bytes_transferred() > 0);
    }

    #[test]
    fn chunking_beats_naive_guards_on_stream() {
        // The Fig. 7 mechanism at full local memory.
        let spec = sum(&small());
        let chunked = execute(&spec, &RunConfig::trackfm(1.0));
        let mut naive_cfg = RunConfig::trackfm(1.0);
        naive_cfg.compiler.chunking = trackfm::ChunkingMode::Off;
        let naive = execute(&spec, &naive_cfg);
        let speedup = naive.result.stats.cycles as f64 / chunked.result.stats.cycles as f64;
        assert!(
            speedup > 1.4,
            "chunking should speed STREAM up noticeably, got {speedup:.2}"
        );
        // Fast-path guards go to zero (§4.2: "we reduce the fast-path guard
        // count from ~1.6 billion to zero").
        assert_eq!(chunked.result.stats.guards_fast, 0);
        assert!(naive.result.stats.guards_fast > 0);
    }

    #[test]
    fn triad_chunks_three_streams_and_preserves_semantics() {
        let spec = triad(&small());
        for cfg in [
            RunConfig::local(),
            RunConfig::trackfm(0.25),
            RunConfig::fastswap(0.25),
        ] {
            execute(&spec, &cfg);
        }
        let out = execute(&spec, &RunConfig::trackfm(0.25));
        assert_eq!(out.report.unwrap().chunking.streams, 3);
    }

    #[test]
    fn strided_sum_checksum_holds() {
        let spec = strided_sum(1000, 64);
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.5));
    }
}
