//! Zipfian workload generation.
//!
//! The paper drives its hashmap (§4.3) and memcached (§4.5) experiments with
//! Zipfian key distributions (skew 1.02 for the hashmap, 1.0–1.3 swept for
//! memcached). This is the standard bounded-Zipf sampler of Gray et al.
//! ("Quickly generating billion-record synthetic databases", SIGMOD '94),
//! the same construction YCSB uses.

use crate::rng::SplitMix64;

/// A bounded Zipf(θ) sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfGen {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfGen {
    /// Creates a sampler over `n` items with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `theta <= 0`, or `theta == 1` (the harmonic
    /// singularity; use 1.0001 instead, as YCSB does).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty universe");
        assert!(theta > 0.0, "skew must be positive");
        assert!(
            (theta - 1.0).abs() > 1e-9,
            "theta == 1 is singular; use e.g. 1.0001"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfGen {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws a rank in `0..n`; rank 0 is the hottest item.
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u: f64 = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The number of items.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Kept for introspection: ζ(2, θ), used by the eta correction.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Generates a trace of `len` Zipf-distributed ranks.
pub fn zipf_trace(n: u64, theta: f64, len: usize, rng: &mut SplitMix64) -> Vec<u64> {
    let gen = ZipfGen::new(n, theta);
    (0..len).map(|_| gen.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let g = ZipfGen::new(1000, 1.02);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let trace = zipf_trace(100_000, 1.2, 50_000, &mut rng);
        let hot = trace.iter().filter(|&&r| r < 100).count() as f64 / trace.len() as f64;
        assert!(
            hot > 0.4,
            "top 0.1% of keys should draw >40% of accesses, got {hot}"
        );
        // Rank 0 must be the single hottest.
        let r0 = trace.iter().filter(|&&r| r == 0).count();
        let r500 = trace.iter().filter(|&&r| r == 500).count();
        assert!(r0 > r500);
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mild = zipf_trace(10_000, 1.01, 20_000, &mut rng);
        let sharp = zipf_trace(10_000, 1.3, 20_000, &mut rng);
        let mass = |t: &[u64]| t.iter().filter(|&&r| r < 10).count();
        assert!(mass(&sharp) > mass(&mild));
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn theta_one_rejected() {
        ZipfGen::new(10, 1.0);
    }

    #[test]
    fn accessors() {
        let g = ZipfGen::new(64, 1.1);
        assert_eq!(g.universe(), 64);
        assert!((g.theta() - 1.1).abs() < 1e-12);
        assert!(g.zeta2() > 1.0);
    }
}
