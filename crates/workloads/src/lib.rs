//! # tfm-workloads — the paper's evaluation programs
//!
//! Every benchmark in the TrackFM paper's evaluation (§4), built as
//! *unmodified* IR programs plus input generators:
//!
//! * [`stream`] — STREAM Sum/Copy/Triad with 4-byte elements (Figs. 7,
//!   10–12) and a strided variant for the Fig. 6 cost-model sweep;
//! * [`kmeans`] — k-means with short, low-density inner loops (Fig. 8);
//! * [`hashmap`] — open-addressing hash table driven by Zipfian lookups
//!   (Figs. 9, 13);
//! * [`analytics`] — a columnar taxi-trip analytics pipeline: scans,
//!   filters, aggregations over small row groups (Figs. 14–15);
//! * [`memcached`] — a key-value store with a hash index and slab-resident
//!   values under Zipfian `get`s (Fig. 16);
//! * [`nas`] — NAS-like kernels CG/FT/IS/MG/SP with the originals' access
//!   patterns (Fig. 17);
//! * [`openloop`] — an open-loop variant of the key-value store: seeded
//!   Zipf arrivals served on N deterministic simulated cores with
//!   per-request latency accounting;
//! * [`zipf`] — the Gray et al. bounded-Zipf sampler the traces use.
//!
//! [`autotune`] implements the paper's §3.2 future-work object-size
//! autotuner (exhaustive search over powers of two with recompilation).
//!
//! [`spec::WorkloadSpec`] carries the program, its inputs, and the expected
//! result (the semantic-preservation oracle); [`runner`] executes specs
//! under the local / Fastswap / TrackFM / AIFM systems with cold-start and
//! counter-reset methodology.
//!
//! Working sets are scaled from the paper's GBs to MBs; every figure sweeps
//! the *fraction* of the working set that fits locally, which is preserved
//! exactly. See DESIGN.md §2.

pub mod analytics;
pub mod autotune;
pub mod hashmap;
pub mod kmeans;
pub mod memcached;
pub mod nas;
pub mod openloop;
pub mod rng;
pub mod runner;
pub mod serving;
pub mod spec;
pub mod stream;
pub mod zipf;

pub use autotune::{autotune_object_size, AutotuneReport, CANDIDATE_SIZES};
pub use openloop::{
    execute_open_loop, execute_open_loop_with_report, open_loop, OpenLoopParams, OpenLoopRun,
    OpenLoopSpec, Request,
};
pub use rng::SplitMix64;
pub use runner::{collect_profile, execute, execute_with_profile, Outcome, RunConfig, SystemKind};
pub use spec::{ArgSpec, InputData, WorkloadSpec};
pub use zipf::ZipfGen;
