//! A guard-heavy request-serving loop, built to exercise the
//! interprocedural custody analysis and loop-invariant guard motion.
//!
//! Each request is classified by a *pure helper function* (`classify`),
//! then charged to a data-dependent bucket counter and to one
//! loop-invariant far-memory total slot:
//!
//! ```text
//! for i in 0..n {
//!     op = ops[i];
//!     t  = *total_slot;           // loop-invariant pointer
//!     k  = classify(op);          // pure call — kills custody w/o summaries
//!     counts[k] += op;            // data-dependent RMW
//!     *total_slot = t + 1;        // invariant RMW completes
//! }
//! return sum(counts) + *total_slot;
//! ```
//!
//! Without interprocedural summaries the `classify` call pessimistically
//! kills guard custody every iteration: the total-slot read and write each
//! need their own guard, per iteration, forever. With call-aware kill sets
//! the read→write pair folds into one write guard, and guard motion then
//! hoists it into the preheader — one guard execution for the whole loop.

use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use tfm_ir::{BinOp, FunctionBuilder, Module, Signature, Type};

/// Serving-loop parameters.
#[derive(Copy, Clone, Debug)]
pub struct ServingParams {
    /// Number of requests.
    pub ops: usize,
    /// Bucket count (rounded up to a power of two).
    pub buckets: usize,
    /// RNG seed for the request stream.
    pub seed: u64,
}

impl Default for ServingParams {
    fn default() -> Self {
        ServingParams {
            ops: 1 << 16,
            buckets: 256,
            seed: 42,
        }
    }
}

/// Index of the slot used in the totals array (an arbitrary non-zero slot,
/// so the pointer is a `gep`, not the raw input base).
const TOTAL_SLOT: i64 = 3;

/// Builds the serving loop described in the module docs.
pub fn serving(p: &ServingParams) -> WorkloadSpec {
    let buckets = p.buckets.next_power_of_two().max(2);
    let mask = (buckets - 1) as u64;
    let mut rng = crate::rng::SplitMix64::seed_from_u64(p.seed);
    let ops: Vec<u64> = (0..p.ops).map(|_| rng.next_u64() & 0xFFFF).collect();

    // Oracle: every op lands in exactly one bucket, so the bucket sum is
    // the op sum; the total slot counts requests.
    let expected: u64 = ops.iter().sum::<u64>().wrapping_add(p.ops as u64);

    let mut m = Module::new("serving");

    // Pure classifier: op & (buckets - 1). No memory effects, so the
    // interprocedural summary proves it custody-transparent.
    let classify = m.declare_function("classify", Signature::new(vec![Type::I64], Some(Type::I64)));
    {
        let mut b = FunctionBuilder::new(m.function_mut(classify));
        let op = b.param(0);
        let mk = b.iconst(Type::I64, mask as i64);
        let k = b.binop(BinOp::And, op, mk);
        b.ret(Some(k));
    }

    let id = m.declare_function(
        "main",
        Signature::new(vec![Type::Ptr, Type::Ptr, Type::Ptr], Some(Type::I64)),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let ops_ptr = b.param(0);
        let counts = b.param(1);
        let totals = b.param(2);
        let zero = b.iconst(Type::I64, 0);
        let one = b.iconst(Type::I64, 1);
        let n = b.iconst(Type::I64, p.ops as i64);
        let nb = b.iconst(Type::I64, buckets as i64);
        let slot_idx = b.iconst(Type::I64, TOTAL_SLOT);
        // Loop-invariant far-memory slot, computed once in the entry block.
        let total_slot = b.gep(totals, slot_idx, 8, 0);

        b.counted_loop(zero, n, 1, |b, i| {
            let oaddr = b.gep(ops_ptr, i, 8, 0);
            let op = b.load(Type::I64, oaddr);
            // Read the invariant slot *before* the call, write it after:
            // without call-aware kills, custody dies in between.
            let t = b.load(Type::I64, total_slot);
            let k = b.call(classify, vec![op], Some(Type::I64));
            let caddr = b.gep(counts, k, 8, 0);
            let c = b.load(Type::I64, caddr);
            let c2 = b.binop(BinOp::Add, c, op);
            b.store(caddr, c2);
            let t2 = b.binop(BinOp::Add, t, one);
            b.store(total_slot, t2);
        });

        // Checksum: bucket sum plus the request count from the slot.
        let acc_slot = b.alloca(8, 8);
        b.store(acc_slot, zero);
        b.counted_loop(zero, nb, 1, |b, j| {
            let caddr = b.gep(counts, j, 8, 0);
            let c = b.load(Type::I64, caddr);
            let a = b.load(Type::I64, acc_slot);
            let a2 = b.binop(BinOp::Add, a, c);
            b.store(acc_slot, a2);
        });
        let acc = b.load(Type::I64, acc_slot);
        let total = b.load(Type::I64, total_slot);
        let out = b.binop(BinOp::Add, acc, total);
        b.ret(Some(out));
    }
    m.verify().expect("serving loop is well-formed");

    WorkloadSpec {
        name: format!("serving/{}x{}", p.ops, buckets),
        module: m,
        inputs: vec![
            InputData::U64(ops),
            InputData::Zeroed(buckets as u64 * 8),
            InputData::Zeroed((TOTAL_SLOT as u64 + 1) * 8),
        ],
        args: vec![ArgSpec::Input(0), ArgSpec::Input(1), ArgSpec::Input(2)],
        expected: Some(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute, RunConfig};

    #[test]
    fn serving_runs_and_checks_out_on_local_memory() {
        let spec = serving(&ServingParams {
            ops: 512,
            buckets: 16,
            seed: 7,
        });
        let out = execute(&spec, &RunConfig::local());
        assert_eq!(Some(out.result.ret), spec.expected);
    }

    #[test]
    fn serving_checks_out_on_trackfm() {
        let spec = serving(&ServingParams {
            ops: 512,
            buckets: 16,
            seed: 7,
        });
        let out = execute(&spec, &RunConfig::trackfm(0.25));
        assert_eq!(Some(out.result.ret), spec.expected);
        let rep = out.report.expect("trackfm compiles");
        // The invariant-slot guard is hoisted out of the serving loop.
        assert!(
            rep.motion.hoisted >= 1,
            "expected a hoisted guard, motion: {:?}",
            rep.motion
        );
    }
}
