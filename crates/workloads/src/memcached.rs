//! A memcached-like key-value store — the paper's Fig. 16 workload.
//!
//! §4.5: memcached 1.2.7 transformed by TrackFM, USR-style small key/value
//! pairs, 100M Zipfian `get`s with skew swept from 1.0 to 1.3. The store
//! here has the same shape: a hash index mapping keys to slab slots, and a
//! slab area holding 64-byte values that each `get` reads in full. Access
//! granularity is small and spatially scattered, so Fastswap's 4 KB pages
//! amplify I/O (66× in the paper) while TrackFM's small objects keep it low.

use crate::rng::SplitMix64;
use crate::spec::{ArgSpec, InputData, WorkloadSpec};
use crate::zipf::zipf_trace;
use tfm_ir::{BinOp, CmpOp, FunctionBuilder, Module, Signature, Type};

/// Value payload size (bytes); USR-style small objects.
pub const VALUE_BYTES: usize = 64;
pub(crate) const VALUE_WORDS: usize = VALUE_BYTES / 8;
pub(crate) const HASH_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Key-value store parameters.
#[derive(Copy, Clone, Debug)]
pub struct MemcachedParams {
    /// Number of stored keys.
    pub keys: usize,
    /// Number of `get` operations.
    pub gets: usize,
    /// Zipf skew (paper sweeps 1.0–1.3; use e.g. 1.01).
    pub skew: f64,
    /// Trace RNG seed.
    pub seed: u64,
}

impl Default for MemcachedParams {
    fn default() -> Self {
        MemcachedParams {
            keys: 100_000, // 1.6 MiB index + 6.4 MiB slab
            gets: 300_000,
            skew: 1.01,
            seed: 17,
        }
    }
}

pub(crate) fn hash_slot(key: u64, mask: u64) -> u64 {
    (key.wrapping_mul(HASH_MULT) >> 32) & mask
}

fn word_of(slab_idx: u64, w: u64) -> u64 {
    (slab_idx * VALUE_WORDS as u64 + w).wrapping_mul(0x2545_F491_4F6C_DD1D)
}

pub(crate) struct Store {
    pub(crate) index: Vec<u64>,
    pub(crate) slab: Vec<u64>,
    pub(crate) mask: u64,
}

/// Host-side store construction: key `rank+1` lives in slab slot `rank`
/// (hash-ordered placement scatters index entries, not slab entries; the
/// slab is written in insertion order, like a real slab allocator — the §5
/// "lesson" about batched small allocations limiting I/O-amplification
/// mitigation applies to the index, not the values).
pub(crate) fn build(p: &MemcachedParams) -> Store {
    let capacity = (p.keys * 2).next_power_of_two() as u64;
    let mask = capacity - 1;
    let mut index = vec![0u64; (capacity * 2) as usize];
    let mut slab = vec![0u64; p.keys * VALUE_WORDS];
    for rank in 0..p.keys as u64 {
        let key = rank + 1;
        let mut h = hash_slot(key, mask);
        loop {
            let i = (h * 2) as usize;
            if index[i] == 0 {
                index[i] = key;
                index[i + 1] = rank + 1; // slab idx + 1 (0 = empty)
                break;
            }
            h = (h + 1) & mask;
        }
        for w in 0..VALUE_WORDS as u64 {
            slab[(rank * VALUE_WORDS as u64 + w) as usize] = word_of(rank, w);
        }
    }
    Store { index, slab, mask }
}

fn reference(s: &Store, trace: &[u64]) -> u64 {
    let mut sum = 0u64;
    for &key in trace {
        let mut h = hash_slot(key, s.mask);
        loop {
            let i = (h * 2) as usize;
            if s.index[i] == key {
                let slab_idx = s.index[i + 1] - 1;
                for w in 0..VALUE_WORDS as u64 {
                    sum ^= s.slab[(slab_idx * VALUE_WORDS as u64 + w) as usize];
                }
                sum = sum.wrapping_add(1);
                break;
            }
            if s.index[i] == 0 {
                break;
            }
            h = (h + 1) & s.mask;
        }
    }
    sum
}

/// Builds the key-value store workload.
///
/// `main(index, mask, slab, trace, n) -> i64` performs `n` `get`s and
/// returns a checksum over the values read.
pub fn memcached(p: &MemcachedParams) -> WorkloadSpec {
    let store = build(p);
    let mut rng = SplitMix64::seed_from_u64(p.seed);
    let trace: Vec<u64> = zipf_trace(p.keys as u64, p.skew, p.gets, &mut rng)
        .into_iter()
        .map(|r| r + 1)
        .collect();
    let expected = reference(&store, &trace);

    let mut m = Module::new("memcached");
    let id = m.declare_function(
        "main",
        Signature::new(
            vec![Type::Ptr, Type::I64, Type::Ptr, Type::Ptr, Type::I64],
            Some(Type::I64),
        ),
    );
    {
        let mut b = FunctionBuilder::new(m.function_mut(id));
        let index = b.param(0);
        let mask_v = b.param(1);
        let slab = b.param(2);
        let trace_p = b.param(3);
        let n = b.param(4);
        let zero = b.iconst(Type::I64, 0);
        let sum = b.alloca(8, 8);
        b.store(sum, zero);

        b.counted_loop(zero, n, 1, |b, t| {
            let kaddr = b.gep(trace_p, t, 8, 0);
            let key = b.load(Type::I64, kaddr);
            let mult = b.iconst(Type::I64, HASH_MULT as i64);
            let hm = b.binop(BinOp::Mul, key, mult);
            let c32 = b.iconst(Type::I64, 32);
            let hs = b.binop(BinOp::Lshr, hm, c32);
            let h0 = b.binop(BinOp::And, hs, mask_v);

            let pre = b.current_block();
            let probe = b.create_block();
            let check_empty = b.create_block();
            let found = b.create_block();
            let next = b.create_block();
            let done = b.create_block();

            b.br(probe);
            b.switch_to_block(probe);
            let h = b.phi(Type::I64, &[(pre, h0)]);
            let slot = b.gep(index, h, 16, 0);
            let skey = b.load(Type::I64, slot);
            let hit = b.icmp(CmpOp::Eq, skey, key);
            b.cond_br(hit, found, check_empty);

            b.switch_to_block(check_empty);
            let zz = b.iconst(Type::I64, 0);
            let empty = b.icmp(CmpOp::Eq, skey, zz);
            b.cond_br(empty, done, next);

            b.switch_to_block(next);
            let one = b.iconst(Type::I64, 1);
            let h1 = b.binop(BinOp::Add, h, one);
            let h2 = b.binop(BinOp::And, h1, mask_v);
            b.add_phi_incoming(h, next, h2);
            b.br(probe);

            // Read the whole 64-byte value from the slab.
            b.switch_to_block(found);
            let iaddr = b.gep(index, h, 16, 8);
            let slabp1 = b.load(Type::I64, iaddr);
            let one2 = b.iconst(Type::I64, 1);
            let slab_idx = b.binop(BinOp::Sub, slabp1, one2);
            let vwords = b.iconst(Type::I64, VALUE_WORDS as i64);
            let base_w = b.binop(BinOp::Mul, slab_idx, vwords);
            let vbase = b.gep(slab, base_w, 8, 0);
            let z2 = b.iconst(Type::I64, 0);
            b.counted_loop(z2, vwords, 1, |b, w| {
                let wa = b.gep(vbase, w, 8, 0);
                let wv = b.load(Type::I64, wa);
                let s = b.load(Type::I64, sum);
                let s2 = b.binop(BinOp::Xor, s, wv);
                b.store(sum, s2);
            });
            let s = b.load(Type::I64, sum);
            let s2 = b.binop(BinOp::Add, s, one2);
            b.store(sum, s2);
            b.br(done);

            b.switch_to_block(done);
        });

        let out = b.load(Type::I64, sum);
        b.ret(Some(out));
    }
    m.verify().expect("memcached is well-formed");

    WorkloadSpec {
        name: format!("memcached/{}k-{}", p.keys / 1000, p.skew),
        module: m,
        inputs: vec![
            InputData::U64(store.index),
            InputData::U64(store.slab),
            InputData::U64(trace),
        ],
        args: vec![
            ArgSpec::Input(0),
            ArgSpec::Const(store.mask as i64),
            ArgSpec::Input(1),
            ArgSpec::Input(2),
            ArgSpec::Const(p.gets as i64),
        ],
        expected: Some(expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute, RunConfig};

    fn small() -> MemcachedParams {
        MemcachedParams {
            keys: 2_000,
            gets: 5_000,
            skew: 1.05,
            seed: 3,
        }
    }

    #[test]
    fn gets_are_semantically_preserved() {
        let spec = memcached(&small());
        execute(&spec, &RunConfig::local());
        execute(&spec, &RunConfig::trackfm(0.2).with_object_size(64));
        execute(&spec, &RunConfig::fastswap(0.2));
    }

    #[test]
    fn skew_reduces_fastswap_misses() {
        // Higher skew → more temporal locality → fewer major faults; the
        // Fig. 16a convergence mechanism.
        let mild = memcached(&MemcachedParams {
            skew: 1.01,
            ..small()
        });
        let sharp = memcached(&MemcachedParams {
            skew: 1.3,
            ..small()
        });
        let f_mild = execute(&mild, &RunConfig::fastswap(0.15));
        let f_sharp = execute(&sharp, &RunConfig::fastswap(0.15));
        assert!(
            f_sharp.result.pager.unwrap().major_faults < f_mild.result.pager.unwrap().major_faults
        );
    }
}
