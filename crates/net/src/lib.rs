//! # tfm-net — the cycle-accounted network link model
//!
//! Far-memory performance is dominated by three network quantities: the
//! per-message latency, the link bandwidth, and the total bytes moved
//! (I/O amplification). This crate models exactly those three on a simulated
//! cycle timeline, standing in for the paper's 25 Gb/s ConnectX-4 fabric with
//! its two software backends:
//!
//! * **TCP** (AIFM/Shenango's backend, used by TrackFM): higher per-message
//!   base latency;
//! * **RDMA** (Fastswap's backend): slightly lower per-message latency.
//!
//! The presets are calibrated so that a 4 KB fetch costs ≈35 K cycles end to
//! end over TCP and a remote 4 KB page fault lands at ≈34 K cycles over RDMA
//! (1.3 K of which is kernel fault handling), matching Table 2 of the paper.
//!
//! ## Timeline semantics
//!
//! [`Link`] keeps a single `free_at` horizon. A transfer issued at cycle
//! `now` begins its bandwidth slot at `max(now, free_at)`, occupies the link
//! for `bytes / bandwidth` cycles, and completes `base_latency` cycles after
//! its slot ends. Latency therefore overlaps across outstanding messages
//! (pipelining) while bandwidth strictly serializes — the behaviour that
//! makes prefetching profitable (Fig. 11) and small-object fetches
//! latency-bound (Fig. 9).
//!
//! ```
//! use tfm_net::{Link, LinkParams};
//! let mut link = Link::new(LinkParams::tcp_25g());
//! let done = link.transfer(4096, 0);
//! assert!(done > 30_000); // latency-dominated
//! let second = link.transfer(4096, 0); // queued behind the first
//! assert!(second > done);
//! ```

use std::fmt;

use tfm_telemetry::{EventKind, MergeStats, Span, SpanKind, StatGroup, Telemetry};

mod backend;
mod fault;
mod retry;

pub use backend::{
    build_backend, BackendSpec, FailoverAudit, PlacementPolicy, RemoteBackend, ResyncOutcome,
    ShardSnapshot, Sharded, SingleNode, SpecError,
};
pub use fault::{
    CrashWindow, FaultKind, FaultPlan, LinkFault, LinkHealth, OutageWindow, ShardState, PPM,
};
use fault::{Fate, FaultState};
pub use retry::{drive_retries, Retried, RetryOps, MAX_DRIVEN_RETRIES};

/// Parameters of a simulated link.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LinkParams {
    /// Fixed per-message latency in cycles (software stack + wire + remote
    /// service), charged after the message's bandwidth slot.
    pub base_latency: u64,
    /// Bandwidth expressed as cycles per 1024 bytes (so fractional
    /// bytes-per-cycle rates stay in integer math).
    pub cycles_per_kib: u64,
}

impl LinkParams {
    /// 25 Gb/s link on a 2.4 GHz core: ≈0.77 B/cycle ≈ 1330 cycles/KiB.
    const CYCLES_PER_KIB_25G: u64 = 1330;

    /// Derives link parameters from a wire rate in Gb/s plus a fixed
    /// per-message setup cost in cycles. The bandwidth term scales the
    /// calibrated 25 Gb/s point (1330 cycles/KiB on a 2.4 GHz core), so
    /// `from_gbps(25, _)` reproduces the presets exactly.
    ///
    /// # Panics
    /// Panics if `gbps` is zero.
    pub fn from_gbps(gbps: u64, setup_cycles: u64) -> Self {
        assert!(gbps > 0, "a link needs a non-zero wire rate");
        LinkParams {
            base_latency: setup_cycles,
            cycles_per_kib: 25 * Self::CYCLES_PER_KIB_25G / gbps,
        }
    }

    /// TCP backend preset (AIFM/Shenango): 4 KB fetch ≈ 35 K cycles,
    /// matching the TrackFM remote slow-path guard in Table 2.
    pub fn tcp_25g() -> Self {
        Self::from_gbps(25, 30_000)
    }

    /// RDMA backend preset (Fastswap): one-sided 4 KB read ≈ 33 K cycles;
    /// with ≈1.3 K cycles of kernel fault handling on top this reproduces the
    /// ≈34 K-cycle remote fault of Table 2.
    pub fn rdma_25g() -> Self {
        Self::from_gbps(25, 27_500)
    }

    /// An idealized instant link (useful in tests).
    pub fn instant() -> Self {
        LinkParams {
            base_latency: 0,
            cycles_per_kib: 0,
        }
    }

    /// Cycles the link's bandwidth is occupied transferring `bytes`.
    ///
    /// Units: simulated core cycles (2.4 GHz calibration), computed as
    /// `ceil(bytes * cycles_per_kib / 1024)`. This is the *serializing*
    /// term of a transfer — while these cycles elapse no other message can
    /// use the wire; the per-message `base_latency` is charged after the
    /// slot and pipelines across outstanding messages.
    #[inline]
    pub fn occupancy(&self, bytes: u64) -> u64 {
        // Round up: even a 1-byte message consumes a sliver of bandwidth.
        // The intermediate product is taken in u128: `bytes *
        // cycles_per_kib` overflows u64 once bytes exceeds ~2^53 (a dozen
        // PiB at the 25 Gb/s calibration) — unrealistic for one message,
        // but cheap to make impossible.
        ((bytes as u128 * self.cycles_per_kib as u128).div_ceil(1024)) as u64
    }

    /// End-to-end cycles for a single transfer on an idle link:
    /// [`occupancy`](Self::occupancy) (bandwidth slot, serializes) plus
    /// `base_latency` (per-message setup + wire + remote service,
    /// pipelines). Under queueing the real completion time is later; this
    /// is the contention-free floor.
    #[inline]
    pub fn solo_cost(&self, bytes: u64) -> u64 {
        self.occupancy(bytes) + self.base_latency
    }
}

/// Byte/message counters, split by direction.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TransferStats {
    /// Messages fetched from the remote node.
    pub fetches: u64,
    /// Bytes fetched from the remote node.
    pub bytes_fetched: u64,
    /// Messages written back to the remote node.
    pub writebacks: u64,
    /// Bytes written back to the remote node.
    pub bytes_written_back: u64,
    /// Failed transfer attempts (drops and outage hits).
    pub faults: u64,
    /// Bytes whose bandwidth slot was burned by a failed attempt.
    pub fault_wasted_bytes: u64,
    /// Successful transfers that completed late (stalls and jitter).
    pub delayed: u64,
    /// Total extra completion latency injected into delayed transfers.
    pub delay_cycles: u64,
}

impl TransferStats {
    /// Total bytes moved in either direction — the I/O-amplification
    /// numerator used by Figs. 13 and 16c.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_fetched + self.bytes_written_back
    }
}

impl StatGroup for TransferStats {
    fn group_name(&self) -> &'static str {
        "transfer"
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("fetches", self.fetches),
            ("bytes_fetched", self.bytes_fetched),
            ("writebacks", self.writebacks),
            ("bytes_written_back", self.bytes_written_back),
            ("faults", self.faults),
            ("fault_wasted_bytes", self.fault_wasted_bytes),
            ("delayed", self.delayed),
            ("delay_cycles", self.delay_cycles),
        ]
    }
}

impl MergeStats for TransferStats {
    fn merge(&mut self, other: &Self) {
        self.fetches += other.fetches;
        self.bytes_fetched += other.bytes_fetched;
        self.writebacks += other.writebacks;
        self.bytes_written_back += other.bytes_written_back;
        self.faults += other.faults;
        self.fault_wasted_bytes += other.fault_wasted_bytes;
        self.delayed += other.delayed;
        self.delay_cycles += other.delay_cycles;
    }
}

impl fmt::Display for TransferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetches: {} ({} B), writebacks: {} ({} B)",
            self.fetches, self.bytes_fetched, self.writebacks, self.bytes_written_back
        )?;
        if self.faults > 0 || self.delayed > 0 {
            write!(
                f,
                ", faults: {} ({} B wasted), delayed: {} (+{} cyc)",
                self.faults, self.fault_wasted_bytes, self.delayed, self.delay_cycles
            )?;
        }
        Ok(())
    }
}

/// A simulated link with an occupancy horizon and a transfer ledger.
#[derive(Clone, Debug)]
pub struct Link {
    params: LinkParams,
    free_at: u64,
    stats: TransferStats,
    tel: Telemetry,
    /// Present only when an active [`FaultPlan`] is attached; the flawless
    /// fabric pays one `Option` branch per transfer and nothing else.
    fault: Option<FaultState>,
    health: LinkHealth,
    /// Shard index stamped on traced transfer spans (0 for a single-node
    /// backend; set by `Sharded` so each link gets its own trace track).
    shard: u32,
    /// Failover state of the node behind this link (DESIGN.md §6g). Only
    /// leaves `Up` when a crash plan is attached or health degrades.
    fstate: ShardState,
    /// Restart epoch: bumped every time the node comes back from a crash.
    /// A fenced reader refuses replicas whose store predates the epoch's
    /// resync.
    epoch: u64,
    /// Latched once the scripted crash's restart has been processed, so
    /// the `Down → Recovering` edge fires exactly once even if no attempt
    /// ever landed inside the window.
    crash_done: bool,
}

/// Safety valve for the blocking [`Link::transfer`]/[`Link::writeback`]
/// retry loops: a fault plan hostile enough to fail this many consecutive
/// attempts means the link is permanently dead, which the simulation cannot
/// make progress under.
const MAX_BLIND_RETRIES: u32 = 10_000;

impl Link {
    /// Creates an idle link.
    pub fn new(params: LinkParams) -> Self {
        Link {
            params,
            free_at: 0,
            stats: TransferStats::default(),
            tel: Telemetry::disabled(),
            fault: None,
            health: LinkHealth::default(),
            shard: 0,
            fstate: ShardState::Up,
            epoch: 0,
            crash_done: false,
        }
    }

    /// Attaches a telemetry sink; every transfer records its size there.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Sets the shard index stamped on this link's traced transfer spans.
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = shard;
    }

    /// Attaches a fault plan. [`FaultPlan::none`] (or any inactive plan)
    /// detaches fault injection entirely, restoring the flawless fabric.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan.is_active().then(|| FaultState::new(plan));
    }

    /// The attached fault plan ([`FaultPlan::none`] when fault injection is
    /// detached).
    pub fn fault_plan(&self) -> FaultPlan {
        self.fault.as_ref().map(|f| f.plan).unwrap_or_default()
    }

    /// The link-health tracker (EWMA fault rate + degraded flag). Only
    /// advances while a fault plan is attached.
    pub fn health(&self) -> LinkHealth {
        self.health
    }

    /// The link parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// One transfer attempt: decides its fate, burns the bandwidth slot
    /// either way (a lost message still occupied the wire), and updates the
    /// ledger and health tracker.
    fn attempt(&mut self, bytes: u64, now: u64, writeback: bool) -> Result<u64, LinkFault> {
        let span_kind = if writeback {
            SpanKind::WritebackXfer
        } else {
            SpanKind::Transfer
        };
        if let Some(f) = &self.fault {
            if f.plan.crash.is_some_and(|c| c.contains(now)) && !self.crash_done {
                // Crashed node: connection refused. No bandwidth slot is
                // burned (nothing went on the wire) and detection takes one
                // base latency — the RST comes back in one trip, not the
                // full drop timeout. Fail-fast is what lets the failover
                // machinery react orders of magnitude sooner than a drop.
                self.stats.faults += 1;
                self.tel
                    .emit(now, EventKind::FaultInjected, FaultKind::Crash.code());
                self.health.on_attempt(true);
                self.fstate = ShardState::Down;
                let detected_at = now + self.params.base_latency.max(1);
                self.tel.span_leaf(Span {
                    kind: span_kind,
                    start: now,
                    end: detected_at,
                    parent: Span::NO_PARENT,
                    arg: bytes,
                    wait: 0,
                    shard: self.shard,
                    fault: FaultKind::Crash.code() as u32,
                    core: Span::NO_CORE,
                });
                return Err(LinkFault {
                    kind: FaultKind::Crash,
                    detected_at,
                });
            }
        }
        let start = now.max(self.free_at);
        let fate = match &mut self.fault {
            Some(f) => f.decide(start),
            None => Fate::Deliver,
        };
        self.free_at = start + self.params.occupancy(bytes);
        match fate {
            Fate::Deliver | Fate::Slow(..) => {
                if writeback {
                    self.stats.writebacks += 1;
                    self.stats.bytes_written_back += bytes;
                } else {
                    self.stats.fetches += 1;
                    self.stats.bytes_fetched += bytes;
                }
                self.tel.record_transfer(bytes);
                let mut done = self.free_at + self.params.base_latency;
                let mut fault_code = Span::NO_FAULT;
                if let Fate::Slow(kind, extra) = fate {
                    self.stats.delayed += 1;
                    self.stats.delay_cycles += extra;
                    self.tel.emit(start, EventKind::FaultInjected, kind.code());
                    fault_code = kind.code() as u32;
                    done += extra;
                }
                if self.fault.is_some() {
                    self.health.on_attempt(false);
                    self.refresh_suspect();
                }
                self.tel.span_leaf(Span {
                    kind: span_kind,
                    start: now,
                    end: done,
                    parent: Span::NO_PARENT,
                    arg: bytes,
                    wait: start - now,
                    shard: self.shard,
                    fault: fault_code,
                    core: Span::NO_CORE,
                });
                Ok(done)
            }
            Fate::Fail(kind) => {
                self.stats.faults += 1;
                self.stats.fault_wasted_bytes += bytes;
                self.tel.emit(start, EventKind::FaultInjected, kind.code());
                self.health.on_attempt(true);
                self.refresh_suspect();
                let detected_at = self.free_at + self.params.drop_timeout();
                self.tel.span_leaf(Span {
                    kind: span_kind,
                    start: now,
                    end: detected_at,
                    parent: Span::NO_PARENT,
                    arg: bytes,
                    wait: start - now,
                    shard: self.shard,
                    fault: kind.code() as u32,
                    core: Span::NO_CORE,
                });
                Err(LinkFault { kind, detected_at })
            }
        }
    }

    /// Attempts a fetch of `bytes` at cycle `now`. Returns the completion
    /// cycle, or the [`LinkFault`] if the attempt failed — `detected_at` is
    /// the earliest cycle the caller's timeout fires and a retry can be
    /// issued. Retry/backoff policy lives with the caller.
    pub fn try_transfer(&mut self, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.attempt(bytes, now, false)
    }

    /// Attempts a writeback of `bytes` at cycle `now`; see
    /// [`Link::try_transfer`] for the failure contract.
    pub fn try_writeback(&mut self, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.attempt(bytes, now, true)
    }

    /// Blindly retries `attempt` until it succeeds, charging each failure's
    /// detection timeout but no backoff. The legacy synchronous interface —
    /// policy-aware callers use [`Link::try_transfer`] instead.
    fn retry_until_delivered(&mut self, bytes: u64, mut now: u64, writeback: bool) -> u64 {
        let mut attempts = 0u32;
        loop {
            match self.attempt(bytes, now, writeback) {
                Ok(done) => return done,
                Err(f) => {
                    attempts += 1;
                    assert!(
                        attempts < MAX_BLIND_RETRIES,
                        "link permanently dead: {} consecutive faults (plan: {})",
                        attempts,
                        self.fault_plan(),
                    );
                    self.tel
                        .emit(f.detected_at, EventKind::Retry, attempts as u64);
                    now = f.detected_at;
                }
            }
        }
    }

    /// Schedules a fetch of `bytes` at cycle `now`; returns the completion
    /// cycle. Synchronous callers stall until then; asynchronous callers
    /// (the prefetcher) record it as the object's ready time. Under an
    /// attached fault plan, faulted attempts are transparently retried
    /// (timeout charged, no backoff) until one delivers.
    pub fn transfer(&mut self, bytes: u64, now: u64) -> u64 {
        self.retry_until_delivered(bytes, now, false)
    }

    /// Schedules a writeback (evacuation of a dirty object/page). Returns the
    /// completion cycle, though callers typically fire-and-forget: the cost
    /// surfaces as queueing delay for subsequent fetches.
    pub fn writeback(&mut self, bytes: u64, now: u64) -> u64 {
        self.retry_until_delivered(bytes, now, true)
    }

    /// Health-driven `Up ↔ Suspect` hysteresis. Never touches `Down` /
    /// `Recovering` — those edges belong to the crash machinery.
    fn refresh_suspect(&mut self) {
        match self.fstate {
            ShardState::Up if self.health.is_degraded() => self.fstate = ShardState::Suspect,
            ShardState::Suspect if !self.health.is_degraded() => self.fstate = ShardState::Up,
            _ => {}
        }
    }

    /// Advances the crash-driven failover transitions to cycle `now`
    /// without issuing any traffic. Returns `Some(cold)` exactly once per
    /// scripted crash, at the `Down → Recovering` edge (restart): the
    /// epoch is bumped and the caller owns re-syncing the node (a `cold`
    /// restart additionally lost its un-synced store). The edge fires even
    /// if no attempt ever landed inside the window — the crash happened
    /// whether or not anyone was talking to the node.
    pub fn poll_failover(&mut self, now: u64) -> Option<bool> {
        let c = self.fault.as_ref().and_then(|f| f.plan.crash)?;
        // Once the restart has been processed the window is history: an
        // attempt stamped with an in-window cycle can still arrive later
        // (overlapping operations advance their own timelines at different
        // rates) and must not knock the restarted node back Down.
        if self.crash_done {
            return None;
        }
        if c.contains(now) {
            self.fstate = ShardState::Down;
            return None;
        }
        if now >= c.end {
            self.crash_done = true;
            self.fstate = ShardState::Recovering;
            self.epoch += 1;
            return Some(c.cold);
        }
        None
    }

    /// The node's failover state.
    pub fn failover_state(&self) -> ShardState {
        self.fstate
    }

    /// The node's restart epoch (0 until it crashes for the first time).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `Recovering → Up`: the owner finished replaying the redo ledger
    /// onto the restarted node, so it may serve reads again.
    pub fn mark_synced(&mut self) {
        if self.fstate == ShardState::Recovering {
            self.fstate = ShardState::Up;
        }
    }

    /// First cycle at which a new transfer could start.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// The transfer ledger.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Resets the ledger and the occupancy horizon (used between benchmark
    /// phases, e.g. to exclude setup traffic). Also rewinds the fault
    /// schedule and health tracker so a measured phase sees the same fault
    /// sequence regardless of setup traffic.
    pub fn reset_stats(&mut self) {
        self.stats = TransferStats::default();
        self.free_at = 0;
        if let Some(f) = &mut self.fault {
            f.reset();
        }
        self.health = LinkHealth::default();
        self.fstate = ShardState::Up;
        self.epoch = 0;
        self.crash_done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2_calibration() {
        // TCP 4KB fetch ≈ 35K cycles once the 144-cycle slow-path guard is
        // added by the runtime; the raw link cost must sit just below that.
        let tcp = LinkParams::tcp_25g().solo_cost(4096);
        assert!((34_000..36_000).contains(&tcp), "tcp 4KB = {tcp}");
        // RDMA + 1.3K kernel handling ≈ 34K.
        let rdma = LinkParams::rdma_25g().solo_cost(4096) + 1_300;
        assert!((33_000..35_500).contains(&rdma), "rdma fault = {rdma}");
    }

    #[test]
    fn from_gbps_scales_the_calibrated_point() {
        // The presets are exact instances of the shared constructor.
        assert_eq!(LinkParams::from_gbps(25, 30_000), LinkParams::tcp_25g());
        assert_eq!(LinkParams::from_gbps(25, 27_500), LinkParams::rdma_25g());
        // Double the wire rate, half the per-KiB occupancy.
        assert_eq!(LinkParams::from_gbps(50, 0).cycles_per_kib, 665);
        assert_eq!(LinkParams::from_gbps(100, 0).cycles_per_kib, 332);
    }

    #[test]
    fn occupancy_rounds_up_and_scales() {
        let p = LinkParams::tcp_25g();
        assert_eq!(p.occupancy(0), 0);
        assert!(p.occupancy(1) >= 1);
        assert_eq!(p.occupancy(2048), 2 * p.occupancy(1024));
    }

    #[test]
    fn latency_overlaps_bandwidth_serializes() {
        let p = LinkParams {
            base_latency: 1000,
            cycles_per_kib: 1024, // 1 byte per cycle
        };
        let mut l = Link::new(p);
        let a = l.transfer(100, 0);
        let b = l.transfer(100, 0);
        assert_eq!(a, 100 + 1000);
        // Second message waits for the first's bandwidth slot only, not its
        // latency: starts at 100, done at 200 + 1000.
        assert_eq!(b, 200 + 1000);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let p = LinkParams {
            base_latency: 10,
            cycles_per_kib: 1024,
        };
        let mut l = Link::new(p);
        let _ = l.transfer(50, 0);
        // Issue long after the link drained: no queueing.
        let done = l.transfer(50, 10_000);
        assert_eq!(done, 10_000 + 50 + 10);
    }

    #[test]
    fn ledger_accumulates_both_directions() {
        let mut l = Link::new(LinkParams::instant());
        l.transfer(4096, 0);
        l.transfer(64, 0);
        l.writeback(4096, 0);
        let s = l.stats();
        assert_eq!(s.fetches, 2);
        assert_eq!(s.bytes_fetched, 4160);
        assert_eq!(s.writebacks, 1);
        assert_eq!(s.bytes_written_back, 4096);
        assert_eq!(s.total_bytes(), 8256);
        assert!(s.to_string().contains("fetches: 2"));
    }

    #[test]
    fn reset_clears_horizon_and_ledger() {
        let mut l = Link::new(LinkParams::tcp_25g());
        l.transfer(1 << 20, 0);
        assert!(l.free_at() > 0);
        l.reset_stats();
        assert_eq!(l.free_at(), 0);
        assert_eq!(l.stats().total_bytes(), 0);
    }

    #[test]
    fn occupancy_survives_multi_tib_transfers() {
        // Regression: `bytes * cycles_per_kib` used to overflow u64 for
        // sizes past ~2^53 bytes. 2^54 bytes is exactly 1330 << 44 cycles
        // at the 25 Gb/s calibration.
        let p = LinkParams::tcp_25g();
        assert_eq!(p.occupancy(1 << 54), 1330u64 << 44);
        // And the small-size behaviour is untouched.
        assert_eq!(p.occupancy(1024), 1330);
    }

    #[test]
    fn inactive_fault_plan_is_bit_identical_to_no_plan() {
        let mut plain = Link::new(LinkParams::tcp_25g());
        let mut planned = Link::new(LinkParams::tcp_25g());
        planned.set_fault_plan(FaultPlan::none());
        for i in 0..100 {
            let (size, at) = (64 + i * 37, i * 1000);
            assert_eq!(plain.transfer(size, at), planned.transfer(size, at));
            assert_eq!(plain.writeback(size, at), planned.writeback(size, at));
        }
        assert_eq!(plain.stats(), planned.stats());
        assert_eq!(plain.free_at(), planned.free_at());
        assert!(!planned.health().is_degraded());
        assert_eq!(planned.fault_plan(), FaultPlan::none());
    }

    #[test]
    fn faulted_attempt_burns_the_slot_and_reports_detection_time() {
        let p = LinkParams::tcp_25g();
        let mut l = Link::new(p);
        l.set_fault_plan(FaultPlan::drops(1, fault::PPM)); // every attempt drops
        let f = l.try_transfer(4096, 0).unwrap_err();
        assert_eq!(f.kind, FaultKind::Drop);
        // The lost message occupied the wire; detection is one timeout
        // (2x base latency) after its slot ended.
        assert_eq!(l.free_at(), p.occupancy(4096));
        assert_eq!(f.detected_at, p.occupancy(4096) + p.drop_timeout());
        let s = l.stats();
        assert_eq!((s.faults, s.fault_wasted_bytes), (1, 4096));
        assert_eq!(s.fetches, 0);
    }

    #[test]
    fn blocking_transfer_retries_through_drops() {
        let mut l = Link::new(LinkParams::tcp_25g());
        l.set_fault_plan(FaultPlan::drops(0xFEED, 500_000)); // 50%
        let mut now = 0;
        for _ in 0..64 {
            now = l.transfer(4096, now);
        }
        let s = l.stats();
        assert_eq!(s.fetches, 64, "every transfer eventually delivers");
        assert!(s.faults > 10, "a 50% plan must have faulted: {}", s.faults);
        assert_eq!(s.bytes_fetched, 64 * 4096);
        assert_eq!(s.fault_wasted_bytes, s.faults * 4096);
    }

    #[test]
    fn outage_window_defers_completion_past_its_end() {
        let p = LinkParams::tcp_25g();
        let mut l = Link::new(p);
        l.set_fault_plan(FaultPlan::none().with_outage(0, 200_000));
        let done = l.transfer(4096, 0);
        assert!(done > 200_000, "completed at {done} inside the outage");
        assert!(l.stats().faults > 0);
        assert_eq!(l.stats().fetches, 1);
    }

    #[test]
    fn stalls_complete_late_and_are_counted() {
        let p = LinkParams::tcp_25g();
        let mut l = Link::new(p);
        l.set_fault_plan(FaultPlan::none().with_stalls(fault::PPM, 777));
        let done = l.transfer(4096, 0);
        assert_eq!(done, p.solo_cost(4096) + 777);
        let s = l.stats();
        assert_eq!((s.delayed, s.delay_cycles), (1, 777));
        assert_eq!(s.faults, 0, "a stall is a late success, not a failure");
    }

    #[test]
    fn reset_stats_rewinds_the_fault_schedule() {
        let mut l = Link::new(LinkParams::tcp_25g());
        l.set_fault_plan(FaultPlan::drops(3, 300_000));
        let mut now = 0;
        for _ in 0..32 {
            now = l.transfer(512, now);
        }
        let first = l.stats();
        l.reset_stats();
        let mut now = 0;
        for _ in 0..32 {
            now = l.transfer(512, now);
        }
        assert_eq!(l.stats(), first, "same schedule after reset");
        assert_eq!(l.health().faults(), first.faults);
    }

    #[test]
    fn sustained_faults_degrade_health_then_recovery_restores_it() {
        let mut l = Link::new(LinkParams::tcp_25g());
        l.set_fault_plan(FaultPlan::none().with_outage(0, 1_000_000));
        // Attempts inside the outage all fail.
        let mut now = 0;
        for _ in 0..4 {
            now = match l.try_transfer(64, now) {
                Ok(d) => d,
                Err(f) => f.detected_at,
            };
        }
        assert!(l.health().is_degraded());
        // Past the window everything delivers; health decays back.
        let mut now = 2_000_000;
        for _ in 0..40 {
            now = l.transfer(64, now);
        }
        assert!(!l.health().is_degraded());
    }

    #[test]
    fn crash_fails_fast_without_burning_the_wire() {
        let p = LinkParams::tcp_25g();
        let mut l = Link::new(p);
        l.set_fault_plan(FaultPlan::none().with_crash(0, 500_000));
        let f = l.try_transfer(4096, 100).unwrap_err();
        assert_eq!(f.kind, FaultKind::Crash);
        // Connection refused: detection after one base latency, not the
        // occupancy + drop timeout a lost message costs.
        assert_eq!(f.detected_at, 100 + p.base_latency);
        assert_eq!(l.free_at(), 0, "no bandwidth slot was burned");
        assert_eq!(l.stats().fault_wasted_bytes, 0);
        assert_eq!(l.stats().faults, 1);
        assert_eq!(l.failover_state(), ShardState::Down);
        // Past the window the node restarts: exactly one Recovering edge.
        assert_eq!(l.poll_failover(600_000), Some(false));
        assert_eq!(l.failover_state(), ShardState::Recovering);
        assert_eq!(l.epoch(), 1);
        assert_eq!(l.poll_failover(700_000), None, "restart fires once");
        l.mark_synced();
        assert_eq!(l.failover_state(), ShardState::Up);
        let done = l.try_transfer(4096, 700_000).unwrap();
        assert_eq!(done, 700_000 + p.solo_cost(4096));
    }

    #[test]
    fn unobserved_crash_still_restarts_with_a_bumped_epoch() {
        // Nobody talks to the node during its window; the restart edge must
        // still fire on the first poll after the window (a cold crash wiped
        // the store whether or not anyone noticed).
        let mut l = Link::new(LinkParams::tcp_25g());
        l.set_fault_plan(FaultPlan::none().with_cold_crash(1_000, 2_000));
        assert_eq!(l.poll_failover(500), None, "before the window: nothing");
        assert_eq!(l.failover_state(), ShardState::Up);
        assert_eq!(l.poll_failover(5_000), Some(true), "cold restart reported");
        assert_eq!(l.epoch(), 1);
        assert_eq!(l.failover_state(), ShardState::Recovering);
    }

    #[test]
    fn health_suspects_a_degraded_link_and_clears_on_recovery() {
        let mut l = Link::new(LinkParams::tcp_25g());
        l.set_fault_plan(FaultPlan::none().with_outage(0, 1_000_000));
        let mut now = 0;
        for _ in 0..4 {
            now = match l.try_transfer(64, now) {
                Ok(d) => d,
                Err(f) => f.detected_at,
            };
        }
        assert_eq!(l.failover_state(), ShardState::Suspect);
        let mut now = 2_000_000;
        for _ in 0..40 {
            now = l.transfer(64, now);
        }
        assert_eq!(l.failover_state(), ShardState::Up);
    }

    #[test]
    fn reset_stats_clears_failover_state_and_epoch() {
        let mut l = Link::new(LinkParams::tcp_25g());
        l.set_fault_plan(FaultPlan::none().with_crash(0, 1_000));
        let _ = l.try_transfer(64, 10);
        assert_eq!(l.failover_state(), ShardState::Down);
        assert_eq!(l.poll_failover(5_000), Some(false));
        assert_eq!(l.epoch(), 1);
        l.reset_stats();
        assert_eq!(l.failover_state(), ShardState::Up);
        assert_eq!(l.epoch(), 0);
        // The schedule rewound too: the crash can fire again.
        let _ = l.try_transfer(64, 10);
        assert_eq!(l.failover_state(), ShardState::Down);
    }

    #[test]
    fn small_objects_are_latency_bound_large_are_bandwidth_bound() {
        // The Fig. 9/10 mechanism: per-byte cost of a 64B fetch is far worse
        // than per-byte cost of a 4KB fetch.
        let p = LinkParams::tcp_25g();
        let small = p.solo_cost(64) as f64 / 64.0;
        let large = p.solo_cost(4096) as f64 / 4096.0;
        assert!(small > 40.0 * large, "small {small} vs large {large}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;

    /// Tiny deterministic PRNG (SplitMix64) so these randomized properties
    /// need no external dependency and reproduce from the seed alone.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + ((self.next() as u128 * (hi - lo) as u128) >> 64) as u64
        }
    }

    /// Completion times are monotone in issue order, never precede the
    /// issue time plus the solo cost's latency component, and the byte
    /// ledger is exact.
    #[test]
    fn link_timeline_is_monotone_and_exact() {
        let mut rng = Rng(0x11CE);
        for _ in 0..256 {
            let msgs: Vec<(u64, u64)> = (0..rng.range(1, 40))
                .map(|_| (rng.range(1, 64_000), rng.range(0, 100_000)))
                .collect();
            let mut link = Link::new(LinkParams::tcp_25g());
            let mut now = 0u64;
            let mut last_done = 0u64;
            let mut total = 0u64;
            for (s, g) in &msgs {
                now += g;
                let done = link.transfer(*s, now);
                assert!(done >= last_done, "completions must be ordered");
                assert!(done >= now + LinkParams::tcp_25g().base_latency);
                last_done = done;
                total += s;
            }
            assert_eq!(link.stats().bytes_fetched, total);
            assert_eq!(link.stats().fetches, msgs.len() as u64);
        }
    }

    /// A transfer on an idle link costs exactly the solo cost.
    #[test]
    fn idle_link_charges_solo_cost() {
        let mut rng = Rng(0x1D1E);
        for _ in 0..256 {
            let size = rng.range(1, 1_000_000);
            let start = rng.range(0, 1_000_000);
            let p = LinkParams::rdma_25g();
            let mut link = Link::new(p);
            // Drain any state by starting fresh; first transfer at `start`.
            let done = link.transfer(size, start);
            assert_eq!(done, start + p.solo_cost(size));
        }
    }
}
