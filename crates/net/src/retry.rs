//! The shared retry/backoff/deadline driver.
//!
//! The runtime's slow path and the fastswap pager both wrap a fallible
//! backend attempt in the same skeleton — try, on fault pick the next issue
//! cycle (backoff, kernel re-drive, deadline bookkeeping), give up only when
//! the policy says so, and panic if the link is permanently dead. The two
//! copies drifted since PR 6; this module is the single implementation,
//! with the policy-specific pieces factored behind [`RetryOps`].
//!
//! The driver is deliberately dumb: it owns the attempt counter and the
//! dead-link safety valve, nothing else. Telemetry, stats, health polling,
//! and backoff arithmetic all live in the caller's [`RetryOps`], so the
//! pre-refactor emission order is preserved attempt for attempt.

use crate::fault::LinkFault;

/// Safety valve shared by every driven retry loop: a fault plan hostile
/// enough to fail this many consecutive attempts of one operation means the
/// link is permanently dead, which the simulation cannot make progress
/// under.
pub const MAX_DRIVEN_RETRIES: u32 = 10_000;

/// A successfully delivered operation, as reported by [`drive_retries`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Retried {
    /// Completion cycle of the delivering attempt.
    pub done: u64,
    /// Faulted attempts that preceded it (0 = first attempt delivered).
    pub attempts: u32,
    /// Cycle the delivering attempt was issued at (equals the start cycle
    /// when `attempts == 0`; later when backoff pushed the operation out).
    pub issued_at: u64,
}

/// The policy half of a driven retry loop.
///
/// `drive_retries` calls [`issue`](Self::issue) once per attempt; on a
/// fault it asks [`on_fault`](Self::on_fault) for the next issue cycle —
/// `None` abandons the operation (deferred writeback, exhausted budget).
/// The implementor owns all side effects: stats, events, spans, health and
/// failover polling.
pub trait RetryOps {
    /// One attempt at cycle `at`. `attempts` is how many faults preceded it.
    fn issue(&mut self, at: u64, attempts: u32) -> Result<u64, LinkFault>;

    /// Decides the follow-up to a faulted attempt: `Some(next_at)` retries
    /// at that cycle, `None` gives up. `attempts` counts this fault.
    fn on_fault(&mut self, attempts: u32, fault: LinkFault) -> Option<u64>;

    /// Panic message when [`MAX_DRIVEN_RETRIES`] consecutive attempts fault.
    fn describe_dead(&self, attempts: u32) -> String;
}

/// Drives `ops` from cycle `start` until an attempt delivers or the policy
/// gives up. Returns `None` only when [`RetryOps::on_fault`] declined to
/// retry.
///
/// # Panics
/// Panics with [`RetryOps::describe_dead`] after [`MAX_DRIVEN_RETRIES`]
/// consecutive faults: the link is permanently dead.
pub fn drive_retries(ops: &mut impl RetryOps, start: u64) -> Option<Retried> {
    let mut at = start;
    let mut attempts = 0u32;
    loop {
        match ops.issue(at, attempts) {
            Ok(done) => {
                return Some(Retried {
                    done,
                    attempts,
                    issued_at: at,
                })
            }
            Err(f) => {
                attempts += 1;
                assert!(
                    attempts < MAX_DRIVEN_RETRIES,
                    "{}",
                    ops.describe_dead(attempts)
                );
                match ops.on_fault(attempts, f) {
                    Some(next_at) => at = next_at,
                    None => return None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    /// Scripted ops: the first `fail` attempts fault, then one delivers.
    struct Scripted {
        fail: u32,
        give_up_after: Option<u32>,
        log: Vec<(u64, u32)>,
    }

    impl RetryOps for Scripted {
        fn issue(&mut self, at: u64, attempts: u32) -> Result<u64, LinkFault> {
            self.log.push((at, attempts));
            if attempts < self.fail {
                Err(LinkFault {
                    kind: FaultKind::Drop,
                    detected_at: at + 100,
                })
            } else {
                Ok(at + 10)
            }
        }

        fn on_fault(&mut self, attempts: u32, fault: LinkFault) -> Option<u64> {
            if self.give_up_after.is_some_and(|n| attempts >= n) {
                return None;
            }
            // Backoff: one extra cycle per attempt past detection.
            Some(fault.detected_at + u64::from(attempts))
        }

        fn describe_dead(&self, attempts: u32) -> String {
            format!("dead after {attempts}")
        }
    }

    #[test]
    fn first_attempt_success_reports_zero_retries() {
        let mut ops = Scripted {
            fail: 0,
            give_up_after: None,
            log: Vec::new(),
        };
        let r = drive_retries(&mut ops, 500).unwrap();
        assert_eq!(
            r,
            Retried {
                done: 510,
                attempts: 0,
                issued_at: 500
            }
        );
        assert_eq!(ops.log, vec![(500, 0)]);
    }

    #[test]
    fn faults_reissue_at_the_policy_cycle() {
        let mut ops = Scripted {
            fail: 2,
            give_up_after: None,
            log: Vec::new(),
        };
        let r = drive_retries(&mut ops, 0).unwrap();
        // Attempt 0 at 0 faults (detected 100, +1 backoff → 101); attempt 1
        // at 101 faults (detected 201, +2 → 203); attempt 2 delivers.
        assert_eq!(ops.log, vec![(0, 0), (101, 1), (203, 2)]);
        assert_eq!(
            r,
            Retried {
                done: 213,
                attempts: 2,
                issued_at: 203
            }
        );
    }

    #[test]
    fn policy_can_abandon_the_operation() {
        let mut ops = Scripted {
            fail: u32::MAX,
            give_up_after: Some(3),
            log: Vec::new(),
        };
        assert_eq!(drive_retries(&mut ops, 0), None);
        assert_eq!(ops.log.len(), 3, "exactly give_up_after attempts issued");
    }

    #[test]
    #[should_panic(expected = "dead after")]
    fn permanently_dead_link_panics() {
        let mut ops = Scripted {
            fail: u32::MAX,
            give_up_after: None,
            log: Vec::new(),
        };
        drive_retries(&mut ops, 0);
    }
}
