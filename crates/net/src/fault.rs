//! Deterministic fault injection for the simulated link.
//!
//! Production far-memory fabrics lose messages, stall under congestion, and
//! occasionally lose the remote node entirely. This module models those
//! hazards on the cycle timeline without giving up determinism: every
//! transfer attempt draws its fate from a [`FaultPlan`]-seeded hash of the
//! attempt's sequence number, so the same seed and the same sequence of
//! attempts reproduce the exact same fault schedule — and therefore the
//! exact same counters, retry histograms, and workload outputs.
//!
//! Fault taxonomy (see DESIGN.md §6c):
//!
//! * **Drop** — the message (or its response) is lost. The attempt still
//!   burns its bandwidth slot; the sender learns of the failure only after a
//!   timeout ([`LinkParams::drop_timeout`]) and must retry.
//! * **Outage** — a scripted [`OutageWindow`] during which the remote node
//!   is unreachable: every attempt whose wire slot starts inside the window
//!   fails like a drop. This is the "remote node died for N ms" experiment.
//! * **Stall** — the remote node hiccups (GC pause, scheduler delay): the
//!   transfer succeeds but completes [`FaultPlan::stall_cycles`] late.
//! * **Jitter** — congestion noise: the transfer succeeds with a uniformly
//!   drawn extra latency in `[0, max_jitter)`.
//!
//! [`FaultPlan::none`] (the default everywhere) injects nothing and costs
//! one branch on the transfer path — the machinery is strictly pay-for-use.

use crate::LinkParams;

/// What kind of fault was injected into a transfer attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Message lost; detected by timeout, must be retried.
    Drop,
    /// Attempt landed inside a scripted remote-node outage window.
    Outage,
    /// Remote-node stall: success, but late by a fixed amount.
    Stall,
    /// Congestion jitter: success, with drawn extra latency.
    Jitter,
    /// Whole-node crash: the shard is down, every attempt fails fast
    /// (connection refused — no bandwidth slot is burned, detection takes
    /// one base latency instead of the drop timeout).
    Crash,
}

impl FaultKind {
    /// Stable lowercase name (logs and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Outage => "outage",
            FaultKind::Stall => "stall",
            FaultKind::Jitter => "jitter",
            FaultKind::Crash => "crash",
        }
    }

    /// Stable numeric code — the `arg` of `FaultInjected` telemetry events.
    pub fn code(self) -> u64 {
        match self {
            FaultKind::Drop => 0,
            FaultKind::Outage => 1,
            FaultKind::Stall => 2,
            FaultKind::Jitter => 3,
            FaultKind::Crash => 4,
        }
    }
}

/// A failed transfer attempt, reported by `Link::try_transfer` /
/// `Link::try_writeback`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// Why the attempt failed ([`FaultKind::Drop`] or [`FaultKind::Outage`]).
    pub kind: FaultKind,
    /// Cycle at which the sender detects the failure (its timeout fires);
    /// the earliest cycle a retry can be issued.
    pub detected_at: u64,
}

/// A scripted remote-node outage on the cycle timeline: every transfer
/// attempt whose bandwidth slot starts in `[start, end)` fails.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OutageWindow {
    /// First cycle of the outage.
    pub start: u64,
    /// First cycle after the outage (exclusive).
    pub end: u64,
}

impl OutageWindow {
    /// True if `cycle` falls inside the window.
    #[inline]
    pub fn contains(&self, cycle: u64) -> bool {
        (self.start..self.end).contains(&cycle)
    }
}

/// A scripted whole-node crash/restart window: the shard is down for
/// `[start, end)` and restarts at `end`. While down, every attempt fails
/// fast ([`FaultKind::Crash`]); at restart the shard re-enters service
/// through the failover state machine (`Down → Recovering → Up`) with a
/// bumped epoch, and — if `cold` — with its un-synced store wiped.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// First cycle the node is down.
    pub start: u64,
    /// First cycle after the restart (exclusive).
    pub end: u64,
    /// Cold restart: the node comes back empty and must be re-synced
    /// before it may serve (a warm restart keeps its durable store).
    pub cold: bool,
}

impl CrashWindow {
    /// True if `cycle` falls inside the down window.
    #[inline]
    pub fn contains(&self, cycle: u64) -> bool {
        (self.start..self.end).contains(&cycle)
    }
}

/// Failover state of one shard, driven by fail-fast crash signals and
/// [`LinkHealth`] (see DESIGN.md §6g).
///
/// `Up → Suspect` when the health EWMA degrades; `Suspect → Up` when it
/// recovers. `→ Down` on a crash signal; `Down → Recovering` at restart
/// (epoch bump, cold-restart store wipe); `Recovering → Up` once the
/// owner has replayed its redo ledger onto the shard.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ShardState {
    /// Healthy and serving.
    #[default]
    Up,
    /// Degraded health: still serving, but reads prefer a replica.
    Suspect,
    /// Crashed: every attempt fails fast; reads fail over, writes skip it.
    Down,
    /// Restarted but not yet re-synced: it must not serve reads (epoch
    /// fence) until the redo ledger has been replayed onto it.
    Recovering,
}

impl ShardState {
    /// Stable lowercase name (logs and reports).
    pub fn name(self) -> &'static str {
        match self {
            ShardState::Up => "up",
            ShardState::Suspect => "suspect",
            ShardState::Down => "down",
            ShardState::Recovering => "recovering",
        }
    }

    /// Stable numeric code (report counters).
    pub fn code(self) -> u64 {
        match self {
            ShardState::Up => 0,
            ShardState::Suspect => 1,
            ShardState::Down => 2,
            ShardState::Recovering => 3,
        }
    }
}

impl std::fmt::Display for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scale of the per-attempt probability draws: rates are expressed in
/// parts-per-million so the whole plan stays in deterministic integer math.
pub const PPM: u32 = 1_000_000;

/// A seeded, deterministic fault schedule for one link.
///
/// Rates are parts-per-million of transfer *attempts* (e.g. `drop_ppm =
/// 10_000` is a 1% drop rate). Fate draws are keyed by the attempt sequence
/// number, so identical seeds and identical attempt sequences reproduce the
/// identical schedule.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-attempt fate draws.
    pub seed: u64,
    /// Fraction of attempts dropped (lost message → timeout → retry).
    pub drop_ppm: u32,
    /// Fraction of attempts hit by a remote-node stall.
    pub stall_ppm: u32,
    /// Extra completion latency of a stalled transfer.
    pub stall_cycles: u64,
    /// Fraction of attempts hit by congestion jitter.
    pub jitter_ppm: u32,
    /// Exclusive upper bound of the drawn jitter latency.
    pub max_jitter: u64,
    /// Scripted remote-node outage, if any.
    pub outage: Option<OutageWindow>,
    /// Scripted whole-node crash/restart, if any.
    pub crash: Option<CrashWindow>,
}

impl FaultPlan {
    /// The flawless-fabric plan: injects nothing, costs one branch.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_ppm: 0,
            stall_ppm: 0,
            stall_cycles: 0,
            jitter_ppm: 0,
            max_jitter: 0,
            outage: None,
            crash: None,
        }
    }

    /// A drop-only plan: `drop_ppm` of attempts are lost.
    pub fn drops(seed: u64, drop_ppm: u32) -> Self {
        FaultPlan {
            seed,
            drop_ppm,
            ..Self::none()
        }
    }

    /// Returns a copy with a scripted remote-node outage window.
    pub fn with_outage(mut self, start: u64, end: u64) -> Self {
        assert!(start < end, "outage window must be non-empty");
        self.outage = Some(OutageWindow { start, end });
        self
    }

    /// Returns a copy with a scripted warm crash/restart: the node is down
    /// for `[start, end)`, restarts with its store intact.
    pub fn with_crash(mut self, start: u64, end: u64) -> Self {
        assert!(start < end, "crash window must be non-empty");
        self.crash = Some(CrashWindow {
            start,
            end,
            cold: false,
        });
        self
    }

    /// Returns a copy with a scripted cold crash/restart: the node is down
    /// for `[start, end)` and loses its un-synced store at restart.
    pub fn with_cold_crash(mut self, start: u64, end: u64) -> Self {
        assert!(start < end, "crash window must be non-empty");
        self.crash = Some(CrashWindow {
            start,
            end,
            cold: true,
        });
        self
    }

    /// Returns a copy with remote-node stalls (`ppm` of attempts are
    /// `cycles` late).
    pub fn with_stalls(mut self, ppm: u32, cycles: u64) -> Self {
        self.stall_ppm = ppm;
        self.stall_cycles = cycles;
        self
    }

    /// Returns a copy with congestion jitter (`ppm` of attempts gain up to
    /// `max_jitter` extra cycles).
    pub fn with_jitter(mut self, ppm: u32, max_jitter: u64) -> Self {
        self.jitter_ppm = ppm;
        self.max_jitter = max_jitter;
        self
    }

    /// True if this plan can ever perturb a transfer. The link skips all
    /// fault bookkeeping for inactive plans (pay-for-use).
    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0
            || self.stall_ppm > 0
            || self.jitter_ppm > 0
            || self.outage.is_some()
            || self.crash.is_some()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_active() {
            return write!(f, "none");
        }
        write!(
            f,
            "seed={} drop={}ppm stall={}ppm jitter={}ppm",
            self.seed, self.drop_ppm, self.stall_ppm, self.jitter_ppm
        )?;
        if let Some(w) = self.outage {
            write!(f, " outage=[{}, {})", w.start, w.end)?;
        }
        if let Some(c) = self.crash {
            let mode = if c.cold { "cold" } else { "warm" };
            write!(f, " crash=[{}, {}) {mode}", c.start, c.end)?;
        }
        Ok(())
    }
}

/// The fate of one transfer attempt, decided before it touches the wire.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Normal delivery.
    Deliver,
    /// Success with `extra` cycles of additional latency.
    Slow(FaultKind, u64),
    /// Failure: the sender must time out and retry.
    Fail(FaultKind),
}

/// SplitMix64 finalizer: a statistically strong 64-bit mix, the same
/// generator the workloads crate uses for seeded randomness. Also used by
/// the sharded backend for hashed object→shard placement and per-shard
/// seed derivation.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-link fault state: the plan plus the attempt sequence counter the
/// fate draws are keyed by.
#[derive(Copy, Clone, Debug)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    seq: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState { plan, seq: 0 }
    }

    /// Rewinds the attempt counter (measured phases restart the schedule).
    pub(crate) fn reset(&mut self) {
        self.seq = 0;
    }

    /// Decides the fate of the attempt whose bandwidth slot starts at
    /// `wire_start`. Consumes one sequence number per call.
    pub(crate) fn decide(&mut self, wire_start: u64) -> Fate {
        let seq = self.seq;
        self.seq += 1;
        if let Some(w) = self.plan.outage {
            if w.contains(wire_start) {
                return Fate::Fail(FaultKind::Outage);
            }
        }
        let h = mix(self.plan.seed ^ seq.wrapping_mul(0xA24B_AED4_963E_E407));
        let draw = (h % PPM as u64) as u32;
        if draw < self.plan.drop_ppm {
            return Fate::Fail(FaultKind::Drop);
        }
        if draw < self.plan.drop_ppm + self.plan.stall_ppm {
            return Fate::Slow(FaultKind::Stall, self.plan.stall_cycles);
        }
        if draw < self.plan.drop_ppm + self.plan.stall_ppm + self.plan.jitter_ppm {
            let extra = if self.plan.max_jitter == 0 {
                0
            } else {
                mix(h) % self.plan.max_jitter
            };
            return Fate::Slow(FaultKind::Jitter, extra);
        }
        Fate::Deliver
    }
}

impl LinkParams {
    /// How long a sender waits before declaring a transfer lost: a
    /// retransmission-timeout stand-in of two base latencies (≈ one RTT
    /// plus slack).
    #[inline]
    pub fn drop_timeout(&self) -> u64 {
        2 * self.base_latency
    }
}

/// Exponentially-weighted fault-rate tracker with hysteresis — the signal
/// behind graceful degradation.
///
/// Every transfer attempt feeds one sample (fault or success). The EWMA
/// (α = 1/8, integer fixed-point in ppm) crosses
/// [`LinkHealth::DEGRADE_ENTER_PPM`] after roughly three consecutive faults
/// and decays back below [`LinkHealth::DEGRADE_EXIT_PPM`] after a dozen or
/// so clean attempts, so short blips don't flap the runtime's configuration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkHealth {
    ewma_ppm: u64,
    degraded: bool,
    attempts: u64,
    faults: u64,
}

impl LinkHealth {
    /// EWMA fault rate above which the link is declared degraded (30%).
    pub const DEGRADE_ENTER_PPM: u64 = 300_000;
    /// EWMA fault rate below which a degraded link is declared recovered
    /// (5%) — the hysteresis gap prevents oscillation.
    pub const DEGRADE_EXIT_PPM: u64 = 50_000;
    /// EWMA weight: new sample gets 1/2^ALPHA_SHIFT.
    const ALPHA_SHIFT: u32 = 3;

    /// Feeds one attempt outcome into the tracker.
    pub fn on_attempt(&mut self, faulted: bool) {
        self.attempts += 1;
        let sample: u64 = if faulted {
            self.faults += 1;
            PPM as u64
        } else {
            0
        };
        self.ewma_ppm =
            self.ewma_ppm - (self.ewma_ppm >> Self::ALPHA_SHIFT) + (sample >> Self::ALPHA_SHIFT);
        if !self.degraded && self.ewma_ppm >= Self::DEGRADE_ENTER_PPM {
            self.degraded = true;
        } else if self.degraded && self.ewma_ppm < Self::DEGRADE_EXIT_PPM {
            self.degraded = false;
        }
    }

    /// Smoothed recent fault rate in parts-per-million.
    pub fn fault_rate_ppm(&self) -> u64 {
        self.ewma_ppm
    }

    /// True while the EWMA sits inside the degraded band.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Total attempts observed.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Total faulted attempts observed.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Folds another tracker into this one, for aggregate views over a
    /// sharded backend: counters sum, the EWMA takes the worst shard's
    /// rate, and the aggregate is degraded if *any* constituent is.
    pub fn absorb(&mut self, other: &Self) {
        self.attempts += other.attempts;
        self.faults += other.faults;
        self.ewma_ppm = self.ewma_ppm.max(other.ewma_ppm);
        self.degraded |= other.degraded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_faults() {
        let mut fs = FaultState::new(FaultPlan::none());
        assert!(!fs.plan.is_active());
        for c in 0..1000 {
            assert_eq!(fs.decide(c), Fate::Deliver);
        }
    }

    #[test]
    fn schedule_is_deterministic_in_sequence_numbers() {
        let plan = FaultPlan::drops(0xC0FFEE, 100_000).with_jitter(200_000, 5_000);
        let mut a = FaultState::new(plan);
        let mut b = FaultState::new(plan);
        let fates_a: Vec<Fate> = (0..512).map(|c| a.decide(c)).collect();
        let fates_b: Vec<Fate> = (0..512).map(|c| b.decide(c)).collect();
        assert_eq!(fates_a, fates_b);
        // The schedule keys off the sequence number, not the cycle: shifting
        // issue times leaves the fate sequence unchanged.
        let mut c = FaultState::new(plan);
        let fates_c: Vec<Fate> = (0..512).map(|i| c.decide(i * 77 + 13)).collect();
        assert_eq!(fates_a, fates_c);
    }

    #[test]
    fn drop_rate_approximates_configured_ppm() {
        let mut fs = FaultState::new(FaultPlan::drops(7, 100_000)); // 10%
        let n = 100_000;
        let drops = (0..n)
            .filter(|&c| matches!(fs.decide(c), Fate::Fail(FaultKind::Drop)))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "drop rate = {rate}");
    }

    #[test]
    fn outage_window_fails_everything_inside() {
        let plan = FaultPlan::none().with_outage(1_000, 2_000);
        let mut fs = FaultState::new(plan);
        assert_eq!(fs.decide(999), Fate::Deliver);
        assert_eq!(fs.decide(1_000), Fate::Fail(FaultKind::Outage));
        assert_eq!(fs.decide(1_999), Fate::Fail(FaultKind::Outage));
        assert_eq!(fs.decide(2_000), Fate::Deliver);
    }

    #[test]
    fn reset_rewinds_the_schedule() {
        let plan = FaultPlan::drops(42, 500_000);
        let mut fs = FaultState::new(plan);
        let first: Vec<Fate> = (0..64).map(|c| fs.decide(c)).collect();
        fs.reset();
        let second: Vec<Fate> = (0..64).map(|c| fs.decide(c)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn health_enters_degraded_after_sustained_faults_and_recovers() {
        let mut h = LinkHealth::default();
        assert!(!h.is_degraded());
        // Three consecutive faults push the EWMA over 30%.
        for _ in 0..3 {
            h.on_attempt(true);
        }
        assert!(h.is_degraded(), "ewma = {}", h.fault_rate_ppm());
        // A single success must NOT immediately recover (hysteresis).
        h.on_attempt(false);
        assert!(h.is_degraded());
        // A sustained clean run decays the EWMA below the exit threshold.
        for _ in 0..30 {
            h.on_attempt(false);
        }
        assert!(!h.is_degraded(), "ewma = {}", h.fault_rate_ppm());
        assert_eq!(h.faults(), 3);
        assert_eq!(h.attempts(), 34);
    }

    #[test]
    fn absorb_sums_counters_and_takes_the_worst_rate() {
        let mut sick = LinkHealth::default();
        for _ in 0..4 {
            sick.on_attempt(true);
        }
        let mut well = LinkHealth::default();
        for _ in 0..12 {
            well.on_attempt(false);
        }
        let mut agg = LinkHealth::default();
        agg.absorb(&well);
        agg.absorb(&sick);
        assert_eq!(agg.attempts(), 16);
        assert_eq!(agg.faults(), 4);
        assert_eq!(agg.fault_rate_ppm(), sick.fault_rate_ppm());
        assert!(agg.is_degraded(), "one sick shard degrades the aggregate");
    }

    #[test]
    fn health_ignores_isolated_blips() {
        let mut h = LinkHealth::default();
        for i in 0..100 {
            h.on_attempt(i % 10 == 0); // 10% fault rate
            assert!(!h.is_degraded(), "10% faults must not degrade the link");
        }
    }

    #[test]
    fn plan_display_summarizes() {
        assert_eq!(FaultPlan::none().to_string(), "none");
        let p = FaultPlan::drops(9, 1_000).with_outage(5, 10);
        let s = p.to_string();
        assert!(s.contains("seed=9") && s.contains("drop=1000ppm") && s.contains("outage=[5, 10)"));
    }

    #[test]
    fn fault_kind_codes_and_names_are_stable() {
        let kinds = [
            FaultKind::Drop,
            FaultKind::Outage,
            FaultKind::Stall,
            FaultKind::Jitter,
            FaultKind::Crash,
        ];
        let mut codes: Vec<u64> = kinds.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
        assert_eq!(FaultKind::Outage.name(), "outage");
        assert_eq!(FaultKind::Crash.name(), "crash");
        assert_eq!(FaultKind::Crash.code(), 4);
    }

    #[test]
    fn outage_window_boundaries_are_inclusive_exclusive() {
        let w = OutageWindow { start: 10, end: 20 };
        assert!(!w.contains(9), "cycle before start is outside");
        assert!(w.contains(10), "start cycle is inside (inclusive)");
        assert!(w.contains(19), "last cycle before end is inside");
        assert!(!w.contains(20), "end cycle is outside (exclusive)");
        assert!(!w.contains(21));
        // Degenerate empty window contains nothing, even its own start.
        let empty = OutageWindow { start: 5, end: 5 };
        assert!(!empty.contains(5));
        // u64 extremes behave: a window ending at u64::MAX excludes MAX.
        let top = OutageWindow {
            start: u64::MAX - 1,
            end: u64::MAX,
        };
        assert!(top.contains(u64::MAX - 1));
        assert!(!top.contains(u64::MAX));
        // A window starting at 0 includes cycle 0.
        let zero = OutageWindow { start: 0, end: 1 };
        assert!(zero.contains(0));
        assert!(!zero.contains(1));
    }

    #[test]
    fn crash_window_boundaries_match_outage_semantics() {
        let c = CrashWindow {
            start: 100,
            end: 200,
            cold: true,
        };
        assert!(!c.contains(99));
        assert!(c.contains(100));
        assert!(c.contains(199));
        assert!(!c.contains(200), "the restart cycle is already up");
    }

    #[test]
    fn absorb_merges_degraded_and_recovered_states() {
        // recovered ⊕ recovered = recovered
        let well = {
            let mut h = LinkHealth::default();
            for _ in 0..8 {
                h.on_attempt(false);
            }
            h
        };
        let sick = {
            let mut h = LinkHealth::default();
            for _ in 0..4 {
                h.on_attempt(true);
            }
            h
        };
        let mut agg = LinkHealth::default();
        agg.absorb(&well);
        agg.absorb(&well);
        assert!(!agg.is_degraded(), "two healthy shards stay healthy");
        assert_eq!(agg.attempts(), 16);
        assert_eq!(agg.faults(), 0);

        // recovered ⊕ degraded = degraded, regardless of absorb order.
        let mut a = LinkHealth::default();
        a.absorb(&well);
        a.absorb(&sick);
        let mut b = LinkHealth::default();
        b.absorb(&sick);
        b.absorb(&well);
        assert!(a.is_degraded() && b.is_degraded());
        assert_eq!(a, b, "absorb is order-independent");

        // degraded ⊕ degraded sums counters and keeps the worst EWMA.
        let mut c = LinkHealth::default();
        c.absorb(&sick);
        c.absorb(&sick);
        assert!(c.is_degraded());
        assert_eq!(c.attempts(), 8);
        assert_eq!(c.faults(), 8);
        assert_eq!(c.fault_rate_ppm(), sick.fault_rate_ppm());

        // A shard that degraded and then recovered merges as recovered.
        let recovered = {
            let mut h = sick;
            for _ in 0..40 {
                h.on_attempt(false);
            }
            assert!(!h.is_degraded());
            h
        };
        let mut d = LinkHealth::default();
        d.absorb(&recovered);
        d.absorb(&well);
        assert!(
            !d.is_degraded(),
            "a recovered shard does not taint the aggregate"
        );
        assert_eq!(d.faults(), 4, "its fault history still counts");
    }

    #[test]
    fn crash_plan_is_active_and_displays() {
        let p = FaultPlan::none().with_crash(1_000, 2_000);
        assert!(p.is_active());
        assert!(p.to_string().contains("crash=[1000, 2000) warm"));
        let c = FaultPlan::none().with_cold_crash(5, 9);
        assert!(c.to_string().contains("crash=[5, 9) cold"));
        assert!(c.crash.unwrap().cold);
        assert!(!p.crash.unwrap().cold);
    }

    #[test]
    fn shard_state_codes_and_names_are_stable() {
        let states = [
            ShardState::Up,
            ShardState::Suspect,
            ShardState::Down,
            ShardState::Recovering,
        ];
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s.code(), i as u64);
        }
        assert_eq!(ShardState::default(), ShardState::Up);
        assert_eq!(ShardState::Recovering.name(), "recovering");
        assert_eq!(ShardState::Down.to_string(), "down");
    }
}
