//! Pluggable remote-memory backends.
//!
//! The runtime and the pager used to be hard-wired to a single [`Link`]: one
//! far-memory node behind one wire. This module decouples *what* a caller
//! asks for (fetch/writeback an object, observe health and occupancy) from
//! *where* the bytes live, behind the [`RemoteBackend`] trait:
//!
//! * [`SingleNode`] wraps exactly one [`Link`] — behavior- and
//!   cost-identical to the pre-trait world (the paper's evaluation fabric);
//! * [`Sharded`] spreads objects across N nodes, each with its own link
//!   (independent bandwidth queues), its own [`FaultPlan`] schedule, and its
//!   own [`LinkHealth`] tracker — one shard can degrade or die while the
//!   others keep serving.
//!
//! Every operation takes a `key` (the caller's object id or page number);
//! backends route it through a deterministic [`PlacementPolicy`], so the
//! same seed and the same object set always produce the same shard
//! assignment — and therefore the same counters and the same run reports.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::fault::{mix, FaultKind, FaultPlan, LinkFault, LinkHealth, ShardState};
use crate::{Link, LinkParams, TransferStats};
use tfm_telemetry::{StatGroup, Telemetry};

/// Why a [`BackendSpec`] is invalid. Returned by [`BackendSpec::validate`];
/// panicking callers unwrap it so the message survives verbatim.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// A sharded spec with zero shards.
    ZeroShards,
    /// The targeted fault shard does not exist.
    FaultShardOutOfRange {
        /// The shard the spec targets.
        fault_shard: u32,
        /// How many shards the spec builds.
        shards: u32,
    },
    /// A replication factor of zero (an object must live somewhere).
    ZeroReplicas,
    /// More replicas than shards: each copy needs its own node.
    ReplicasExceedShards {
        /// The requested replication factor.
        replicas: u32,
        /// How many shards the spec builds.
        shards: u32,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ZeroShards => write!(f, "a sharded backend needs at least one shard"),
            SpecError::FaultShardOutOfRange {
                fault_shard,
                shards,
            } => write!(
                f,
                "fault shard {fault_shard} out of range for {shards} shards"
            ),
            SpecError::ZeroReplicas => {
                write!(f, "replication factor must be at least 1 (every object needs a home)")
            }
            SpecError::ReplicasExceedShards { replicas, shards } => write!(
                f,
                "replication factor {replicas} exceeds {shards} shards (each replica needs its own node)"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Outcome of re-syncing one key onto a recovering shard
/// ([`RemoteBackend::resync_key`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResyncOutcome {
    /// A surviving replica's copy was re-written to the shard; the value is
    /// the copy's completion cycle.
    Synced(u64),
    /// Nothing to do: the shard already holds the acknowledged version, is
    /// not a home for the key, or the key has no acknowledged writeback.
    Clean,
    /// Every copy of the acknowledged version is gone — an acknowledged
    /// writeback has been lost. [`FailoverAudit::lost`] counts these.
    Lost,
}

/// End-of-run durability audit over every acknowledged writeback
/// ([`RemoteBackend::audit`]). The chaos suite's core assertion is
/// `lost == 0`: no write the backend acknowledged may ever disappear,
/// whatever the crash schedule did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FailoverAudit {
    /// Keys with at least one acknowledged writeback.
    pub acked_keys: u64,
    /// Acked keys no shard can serve at (or above) the acked version:
    /// acknowledged data lost. Must be zero under replication.
    pub lost: u64,
    /// Acked keys currently held by fewer shards than their replica set
    /// demands — redundancy not yet restored (but no data lost).
    pub under_replicated: u64,
}

/// A remote-memory data plane: where localize/writeback traffic goes.
///
/// All methods mirror [`Link`]'s contract, with an added routing `key` (the
/// object id or page number being moved). The blocking forms
/// ([`transfer`](Self::transfer)/[`writeback`](Self::writeback)) retry
/// blindly until delivery; the fallible forms
/// ([`try_transfer`](Self::try_transfer)/[`try_writeback`](Self::try_writeback))
/// surface the [`LinkFault`] so policy-aware callers (the runtime's
/// retry/backoff loop) own the retry schedule.
pub trait RemoteBackend: fmt::Debug {
    /// Number of remote nodes behind this backend.
    fn shard_count(&self) -> usize;

    /// The shard serving `key` (always 0 for a single node).
    fn shard_of(&self, key: u64) -> usize;

    /// Blocking fetch of `bytes` for `key` at cycle `now`; returns the
    /// completion cycle. Faulted attempts are transparently retried.
    fn transfer(&mut self, key: u64, bytes: u64, now: u64) -> u64;

    /// Blocking writeback counterpart of [`transfer`](Self::transfer).
    fn writeback(&mut self, key: u64, bytes: u64, now: u64) -> u64;

    /// One fetch attempt; the caller owns retry policy on failure.
    fn try_transfer(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault>;

    /// One writeback attempt; the caller owns retry policy on failure.
    fn try_writeback(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault>;

    // --- issue/poll-completion surface (DESIGN.md §6h) --------------------
    //
    // The link model computes a transfer's completion cycle analytically at
    // issue time (bandwidth slot + pipelined latency), so the asynchronous
    // protocol is a thin split over `try_transfer`: issue the attempt now,
    // learn the completion cycle immediately, poll it against the caller's
    // advancing clock. Sharding, replicas, and the fault fabric compose
    // unchanged underneath — a default method, not a per-backend feature.

    /// Issues one asynchronous fetch attempt for `key` at cycle `now`.
    /// Returns the cycle the data will be resident (the wire is occupied
    /// and the ledger charged immediately; the *caller* keeps computing
    /// until it polls the completion). Fault contract matches
    /// [`try_transfer`](Self::try_transfer).
    fn issue_transfer(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.try_transfer(key, bytes, now)
    }

    /// True once an issued transfer with completion cycle `done` has
    /// delivered by cycle `now`.
    fn poll_complete(&self, done: u64, now: u64) -> bool {
        now >= done
    }

    /// True if any shard has an active fault plan attached. Callers use
    /// this to keep the flawless-fabric fast path (no retry bookkeeping).
    fn faults_active(&self) -> bool;

    /// Aggregate health: counters summed, fault-rate EWMA maxed, degraded
    /// if *any* shard is degraded.
    fn health(&self) -> LinkHealth;

    /// Health of one shard.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    fn shard_health(&self, shard: usize) -> LinkHealth;

    /// Aggregate transfer ledger (all shards merged).
    fn stats(&self) -> TransferStats;

    /// Transfer ledger of one shard.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    fn shard_stats(&self, shard: usize) -> TransferStats;

    /// Attaches a telemetry sink (shared across shards).
    fn set_telemetry(&mut self, tel: Telemetry);

    /// Clears ledgers, occupancy horizons, fault schedules, and health —
    /// on every shard.
    fn reset_stats(&mut self);

    /// Clones the backend with its full state (see the blanket
    /// `Clone for Box<dyn RemoteBackend>`).
    fn clone_box(&self) -> Box<dyn RemoteBackend>;

    // --- failover surface (DESIGN.md §6g) ---------------------------------
    //
    // Every method defaults to the unreplicated, crash-free behaviour, so a
    // backend that never sees a crash plan pays nothing and implements
    // nothing.

    /// True when the crash/replication machinery is armed (replication
    /// factor > 1 or a scripted crash on some shard). Callers gate their
    /// failover bookkeeping on this — pay-for-use.
    fn failover_active(&self) -> bool {
        false
    }

    /// Replication factor R (1 = unreplicated).
    fn replicas(&self) -> u32 {
        1
    }

    /// Advances scripted crash/restart transitions to cycle `now` without
    /// issuing traffic (cold restarts wipe the crashed shard's store here).
    fn poll(&mut self, _now: u64) {}

    /// Failover state of one shard.
    fn shard_state(&self, _shard: usize) -> ShardState {
        ShardState::Up
    }

    /// Restart epoch of one shard (0 until its first crash).
    fn shard_epoch(&self, _shard: usize) -> u64 {
        0
    }

    /// Declares a recovering shard re-synced (`Recovering → Up`), lifting
    /// its epoch fence. Called by the owner after ledger replay.
    fn mark_synced(&mut self, _shard: usize) {}

    /// Re-writes `key`'s acknowledged version onto `shard` from a surviving
    /// replica, charging `bytes` of writeback traffic, if the shard's copy
    /// is stale or missing.
    fn resync_key(&mut self, _shard: usize, _key: u64, _bytes: u64, _now: u64) -> ResyncOutcome {
        ResyncOutcome::Clean
    }

    /// Restores `key`'s redundancy by copying it from a surviving replica
    /// onto a substitute shard and re-homing the key off Down shard `from`
    /// (the migration hook). Returns the copy's completion cycle if a copy
    /// was made.
    fn re_replicate(&mut self, _key: u64, _from: usize, _bytes: u64, _now: u64) -> Option<u64> {
        None
    }

    /// Backend-driven recovery for callers without their own redo ledger
    /// (the pager): re-syncs every acknowledged key hosted by `shard`, then
    /// marks it synced. Returns `(resynced, lost)` counts.
    fn recover_shard(&mut self, shard: usize, _bytes_per_key: u64, _now: u64) -> (u64, u64) {
        self.mark_synced(shard);
        (0, 0)
    }

    /// End-of-run durability audit; `None` unless the replication machinery
    /// is armed.
    fn audit(&self) -> Option<FailoverAudit> {
        None
    }

    /// Per-shard ledger + health, for reports. Cheap (copies counters).
    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        (0..self.shard_count())
            .map(|s| ShardSnapshot {
                stats: self.shard_stats(s),
                health: self.shard_health(s),
                state: self.shard_state(s),
                epoch: self.shard_epoch(s),
                failover_reads: 0,
                divergent_writes: 0,
            })
            .collect()
    }
}

impl Clone for Box<dyn RemoteBackend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One shard's end-of-run counters, as published into run reports.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's transfer ledger.
    pub stats: TransferStats,
    /// The shard's health tracker.
    pub health: LinkHealth,
    /// The shard's failover state at snapshot time.
    pub state: ShardState,
    /// The shard's restart epoch (0 = never crashed).
    pub epoch: u64,
    /// Reads served by this shard on behalf of a dead or fenced primary.
    pub failover_reads: u64,
    /// Writebacks this shard missed while Down (replica divergence repaid
    /// by resync/re-replication).
    pub divergent_writes: u64,
}

impl StatGroup for ShardSnapshot {
    fn group_name(&self) -> &'static str {
        // Reports publish one section per shard under caller-chosen names
        // ("shard0", "shard1", ...); this is only the fallback.
        "shard"
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        let mut fields = self.stats.stat_fields();
        fields.push(("ewma_fault_ppm", self.health.fault_rate_ppm()));
        fields.push(("degraded", u64::from(self.health.is_degraded())));
        fields.push(("state", self.state.code()));
        fields.push(("epoch", self.epoch));
        fields.push(("failover_reads", self.failover_reads));
        fields.push(("divergent_writes", self.divergent_writes));
        fields
    }
}

/// Deterministic object→shard routing.
///
/// Policies are pure functions of `(key, shard_count)`: no state, no
/// randomness, so shard assignment is reproducible across runs by
/// construction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// SplitMix64 hash of the object id, modulo shard count: spreads hot
    /// ranges evenly, destroys spatial locality (neighboring objects land
    /// on different shards — good for load balance).
    #[default]
    Hash,
    /// `key % shards`: neighboring objects round-robin across shards, so a
    /// sequential scan stripes its fetches over every node's bandwidth.
    Interleave,
}

impl PlacementPolicy {
    /// The shard serving `key` out of `shards` nodes.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[inline]
    pub fn shard_of(self, key: u64, shards: usize) -> usize {
        assert!(shards > 0, "a backend needs at least one shard");
        match self {
            PlacementPolicy::Hash => (mix(key) % shards as u64) as usize,
            PlacementPolicy::Interleave => (key % shards as u64) as usize,
        }
    }

    /// Stable lowercase name (report labels).
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Hash => "hash",
            PlacementPolicy::Interleave => "interleave",
        }
    }
}

/// Declarative backend selection, carried by run configurations.
///
/// `Copy` on purpose: configs spread freely through the workspace. The spec
/// is *what to build*; [`build_backend`] turns it into a live backend.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// One remote node behind one link (the paper's fabric). The default.
    #[default]
    SingleNode,
    /// N remote nodes, each with an independent link and fault schedule.
    Sharded {
        /// Number of remote nodes (≥ 1).
        shards: u32,
        /// Object→shard routing policy.
        placement: PlacementPolicy,
        /// When set, the configured fault plan applies *only* to this shard
        /// (the "one node dies" experiment); otherwise every shard runs the
        /// plan with a per-shard derived seed.
        fault_shard: Option<u32>,
        /// Replication factor R: every object lives on R consecutive shards
        /// of its placement ring. 1 (the default) is unreplicated and
        /// bit-identical to the pre-replication backend.
        replicas: u32,
    },
}

impl BackendSpec {
    /// The single-node default.
    pub fn single() -> Self {
        BackendSpec::SingleNode
    }

    /// A sharded backend with `shards` nodes, hashed placement, and no
    /// replication.
    pub fn sharded(shards: u32) -> Self {
        BackendSpec::Sharded {
            shards,
            placement: PlacementPolicy::Hash,
            fault_shard: None,
            replicas: 1,
        }
    }

    /// Returns a copy with a different placement policy (sharded specs
    /// only; a no-op on [`BackendSpec::SingleNode`]).
    pub fn with_placement(mut self, policy: PlacementPolicy) -> Self {
        if let BackendSpec::Sharded { placement, .. } = &mut self {
            *placement = policy;
        }
        self
    }

    /// Returns a copy targeting the fault plan at one shard (sharded specs
    /// only; a no-op on [`BackendSpec::SingleNode`]).
    pub fn with_fault_shard(mut self, shard: u32) -> Self {
        if let BackendSpec::Sharded { fault_shard, .. } = &mut self {
            *fault_shard = Some(shard);
        }
        self
    }

    /// Returns a copy with replication factor `r` (sharded specs only; a
    /// no-op on [`BackendSpec::SingleNode`]).
    pub fn with_replicas(mut self, r: u32) -> Self {
        if let BackendSpec::Sharded { replicas, .. } = &mut self {
            *replicas = r;
        }
        self
    }

    /// The spec's replication factor (1 unless a sharded spec raised it).
    pub fn replica_count(&self) -> u32 {
        match self {
            BackendSpec::SingleNode => 1,
            BackendSpec::Sharded { replicas, .. } => *replicas,
        }
    }

    /// Number of shards this spec builds.
    pub fn shard_count(&self) -> u32 {
        match self {
            BackendSpec::SingleNode => 1,
            BackendSpec::Sharded { shards, .. } => (*shards).max(1),
        }
    }

    /// True for the single-node default.
    pub fn is_single(&self) -> bool {
        matches!(self, BackendSpec::SingleNode)
    }

    /// Validates invariants, returning a descriptive [`SpecError`] for a
    /// sharded spec with zero shards, an out-of-range fault shard, or an
    /// impossible replication factor. Callers that cannot proceed simply
    /// unwrap — the error's `Display` is the panic message.
    pub fn validate(&self) -> Result<(), SpecError> {
        if let BackendSpec::Sharded {
            shards,
            fault_shard,
            replicas,
            ..
        } = self
        {
            if *shards == 0 {
                return Err(SpecError::ZeroShards);
            }
            if let Some(fs) = fault_shard {
                if fs >= shards {
                    return Err(SpecError::FaultShardOutOfRange {
                        fault_shard: *fs,
                        shards: *shards,
                    });
                }
            }
            if *replicas == 0 {
                return Err(SpecError::ZeroReplicas);
            }
            if replicas > shards {
                return Err(SpecError::ReplicasExceedShards {
                    replicas: *replicas,
                    shards: *shards,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::SingleNode => write!(f, "single"),
            BackendSpec::Sharded {
                shards,
                placement,
                fault_shard,
                replicas,
            } => {
                write!(f, "sharded({shards}, {})", placement.name())?;
                if *replicas > 1 {
                    write!(f, " replicas={replicas}")?;
                }
                if let Some(fs) = fault_shard {
                    write!(f, " fault_shard={fs}")?;
                }
                Ok(())
            }
        }
    }
}

/// Builds a live backend from a spec: link parameters are shared by every
/// shard, the fault plan is attached per the spec's targeting rules.
///
/// Seed derivation for untargeted sharded plans: shard 0 keeps the plan's
/// seed verbatim (so `Sharded` with one shard is schedule-identical to
/// [`SingleNode`]); shard `i > 0` draws `mix(seed ^ i)` so shards fault
/// independently instead of in lockstep.
pub fn build_backend(
    params: LinkParams,
    spec: BackendSpec,
    faults: FaultPlan,
) -> Box<dyn RemoteBackend> {
    spec.validate().unwrap_or_else(|e| panic!("{e}"));
    match spec {
        BackendSpec::SingleNode => {
            let mut b = SingleNode::new(params);
            b.set_fault_plan(faults);
            Box::new(b)
        }
        BackendSpec::Sharded {
            shards,
            placement,
            fault_shard,
            replicas,
        } => {
            let mut b = Sharded::new(params, shards.max(1), placement);
            match fault_shard {
                Some(fs) => b.set_fault_plan_on(fs as usize, faults),
                None if faults.is_active() => {
                    for s in 0..b.shard_count() {
                        let mut plan = faults;
                        if s > 0 {
                            plan.seed = mix(faults.seed ^ s as u64);
                        }
                        b.set_fault_plan_on(s, plan);
                    }
                }
                None => {}
            }
            b.set_replicas(replicas);
            Box::new(b)
        }
    }
}

// ======================================================================
// SingleNode
// ======================================================================

/// The classic one-node backend: a thin wrapper over today's [`Link`],
/// behavior- and cost-identical to driving the link directly (the routing
/// key is ignored; there is nowhere else to go).
#[derive(Clone, Debug)]
pub struct SingleNode {
    link: Link,
}

impl SingleNode {
    /// Creates a single-node backend over an idle link.
    pub fn new(params: LinkParams) -> Self {
        SingleNode {
            link: Link::new(params),
        }
    }

    /// Attaches a fault plan to the node's link.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.link.set_fault_plan(plan);
    }

    /// The wrapped link (for assertions in tests).
    pub fn link(&self) -> &Link {
        &self.link
    }
}

impl RemoteBackend for SingleNode {
    fn shard_count(&self) -> usize {
        1
    }

    fn shard_of(&self, _key: u64) -> usize {
        0
    }

    fn transfer(&mut self, _key: u64, bytes: u64, now: u64) -> u64 {
        self.link.transfer(bytes, now)
    }

    fn writeback(&mut self, _key: u64, bytes: u64, now: u64) -> u64 {
        self.link.writeback(bytes, now)
    }

    fn try_transfer(&mut self, _key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.link.try_transfer(bytes, now)
    }

    fn try_writeback(&mut self, _key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.link.try_writeback(bytes, now)
    }

    fn faults_active(&self) -> bool {
        self.link.fault_plan().is_active()
    }

    fn health(&self) -> LinkHealth {
        self.link.health()
    }

    fn shard_health(&self, shard: usize) -> LinkHealth {
        assert_eq!(shard, 0, "single node has exactly one shard");
        self.link.health()
    }

    fn stats(&self) -> TransferStats {
        self.link.stats()
    }

    fn shard_stats(&self, shard: usize) -> TransferStats {
        assert_eq!(shard, 0, "single node has exactly one shard");
        self.link.stats()
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        self.link.set_telemetry(tel);
    }

    fn reset_stats(&mut self) {
        self.link.reset_stats();
    }

    fn clone_box(&self) -> Box<dyn RemoteBackend> {
        Box::new(self.clone())
    }

    // With one node there is nowhere to fail over to: crashes surface as
    // fail-fast faults and the state machine is visible, but there is no
    // replica store to audit (a single-node cold restart's loss is the
    // caller's problem — that is exactly what replication buys you).
    fn failover_active(&self) -> bool {
        self.link.fault_plan().crash.is_some()
    }

    fn poll(&mut self, now: u64) {
        self.link.poll_failover(now);
    }

    fn shard_state(&self, shard: usize) -> ShardState {
        assert_eq!(shard, 0, "single node has exactly one shard");
        self.link.failover_state()
    }

    fn shard_epoch(&self, shard: usize) -> u64 {
        assert_eq!(shard, 0, "single node has exactly one shard");
        self.link.epoch()
    }

    fn mark_synced(&mut self, shard: usize) {
        assert_eq!(shard, 0, "single node has exactly one shard");
        self.link.mark_synced();
    }
}

// ======================================================================
// Sharded
// ======================================================================

/// N remote nodes, each behind its own [`Link`]: independent bandwidth
/// queues and occupancy horizons (fetches to different shards pipeline
/// freely), independent fault schedules, independent health trackers.
///
/// With `replicas > 1` (or any scripted crash plan attached) the backend
/// switches into *tracked* mode: every object lives on R consecutive shards
/// of its placement ring, writebacks mirror synchronously to every live
/// replica (quorum-free: an op is acknowledged only when *all* live
/// replicas hold it), reads fail over to a surviving replica, and a
/// version-fenced store model catches any acknowledged write a restarted
/// shard would otherwise serve stale. With `replicas == 1` and no crash
/// plan, every tracked-mode branch is skipped and the backend is
/// bit-identical to the pre-replication `Sharded`.
#[derive(Clone, Debug)]
pub struct Sharded {
    links: Vec<Link>,
    placement: PlacementPolicy,
    /// Replication factor R (1 = unreplicated).
    replicas: u32,
    /// Cached "tracked mode" flag: replicas > 1 or any crash plan armed.
    /// Gates *all* replica bookkeeping (pay-for-use).
    tracked: bool,
    /// Store model, per shard: key → highest version the shard holds.
    /// BTreeMap for deterministic iteration.
    stores: Vec<BTreeMap<u64, u64>>,
    /// key → latest version whose writeback was acknowledged to the caller.
    acked: BTreeMap<u64, u64>,
    /// Keys re-homed off a Down shard by the re-replicator: key → its new
    /// replica set (overrides the placement ring).
    moved: BTreeMap<u64, Vec<u32>>,
    /// Monotone writeback version counter.
    next_version: u64,
    /// Acknowledged keys declared unrecoverable by resync (no surviving
    /// copy at the acked version). Moved out of `acked` so the version
    /// fence stops blocking reads of data that is provably gone, while the
    /// audit still reports the loss.
    lost_keys: BTreeSet<u64>,
    /// Per shard: reads served on behalf of a dead or fenced primary.
    failover_reads: Vec<u64>,
    /// Per shard: writebacks missed while Down (replica divergence).
    divergent_writes: Vec<u64>,
}

impl Sharded {
    /// Creates a sharded backend of `shards` idle nodes sharing one set of
    /// link parameters.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(params: LinkParams, shards: u32, placement: PlacementPolicy) -> Self {
        assert!(shards >= 1, "a sharded backend needs at least one shard");
        Sharded {
            links: (0..shards)
                .map(|i| {
                    let mut link = Link::new(params);
                    link.set_shard(i);
                    link
                })
                .collect(),
            placement,
            replicas: 1,
            tracked: false,
            stores: vec![BTreeMap::new(); shards as usize],
            acked: BTreeMap::new(),
            moved: BTreeMap::new(),
            next_version: 0,
            lost_keys: BTreeSet::new(),
            failover_reads: vec![0; shards as usize],
            divergent_writes: vec![0; shards as usize],
        }
    }

    /// Attaches a fault plan to one shard's link.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn set_fault_plan_on(&mut self, shard: usize, plan: FaultPlan) {
        self.links[shard].set_fault_plan(plan);
        self.refresh_tracked();
    }

    /// Sets the replication factor.
    ///
    /// # Panics
    /// Panics if `r` is zero or exceeds the shard count.
    pub fn set_replicas(&mut self, r: u32) {
        assert!(r >= 1, "replication factor must be at least 1");
        assert!(
            r as usize <= self.links.len(),
            "replication factor {r} exceeds {} shards",
            self.links.len()
        );
        self.replicas = r;
        self.refresh_tracked();
    }

    fn refresh_tracked(&mut self) {
        self.tracked =
            self.replicas > 1 || self.links.iter().any(|l| l.fault_plan().crash.is_some());
    }

    /// The routing policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// One shard's link (for assertions in tests).
    pub fn link(&self, shard: usize) -> &Link {
        &self.links[shard]
    }

    #[inline]
    fn route(&self, key: u64) -> usize {
        self.placement.shard_of(key, self.links.len())
    }

    /// The shards hosting `key`: R consecutive ring positions starting at
    /// the placement shard, unless the re-replicator has re-homed the key.
    fn replica_set(&self, key: u64) -> Vec<usize> {
        if let Some(m) = self.moved.get(&key) {
            return m.iter().map(|&s| s as usize).collect();
        }
        let n = self.links.len();
        let p = self.route(key);
        (0..self.replicas as usize).map(|i| (p + i) % n).collect()
    }

    /// Drives every link's crash state machine to `now`; a cold restart
    /// wipes the shard's store (that is what "cold" means).
    fn poll_all(&mut self, now: u64) {
        for s in 0..self.links.len() {
            if let Some(cold) = self.links[s].poll_failover(now) {
                if cold {
                    self.stores[s].clear();
                }
            }
        }
    }

    /// The fabricated fault for an operation with no serving replica:
    /// connection refused everywhere, detected after one base latency. The
    /// caller backs off, polls, and retries — by then a shard has usually
    /// restarted.
    fn unreachable_fault(&self, now: u64) -> LinkFault {
        let lat = self.links[0].params().base_latency.max(1);
        LinkFault {
            kind: FaultKind::Crash,
            detected_at: now + lat,
        }
    }

    /// First replica fit to serve `key`: an `Up` shard if possible, else a
    /// `Suspect` one. `Down`/`Recovering` shards never serve, and the
    /// version fence skips any shard whose store misses the acknowledged
    /// version (a restarted replica that has not been re-synced).
    fn choose_serving(&self, set: &[usize], key: u64) -> Option<usize> {
        let acked = self.acked.get(&key).copied();
        let fenced_ok = |s: usize| match acked {
            Some(v) => self.stores[s].get(&key).is_some_and(|&held| held >= v),
            None => true,
        };
        let in_state = |want: ShardState| {
            set.iter()
                .copied()
                .find(|&s| self.links[s].failover_state() == want && fenced_ok(s))
        };
        in_state(ShardState::Up).or_else(|| in_state(ShardState::Suspect))
    }

    /// Tracked-mode fetch: read failover across the replica set.
    fn tracked_try_transfer(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.poll_all(now);
        let set = self.replica_set(key);
        let Some(s) = self.choose_serving(&set, key) else {
            return Err(self.unreachable_fault(now));
        };
        let res = self.links[s].try_transfer(bytes, now);
        if res.is_ok() && s != set[0] {
            self.failover_reads[s] += 1;
        }
        res
    }

    /// Tracked-mode writeback: synchronous mirroring to every live replica.
    /// The op is acknowledged (and the version recorded in `acked`) only
    /// when *all* live replicas hold it; a Down replica is skipped and its
    /// divergence recorded, to be repaid by resync or re-replication.
    fn tracked_try_writeback(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.poll_all(now);
        let set = self.replica_set(key);
        self.next_version += 1;
        let ver = self.next_version;
        let mut done: Option<u64> = None;
        let mut failed: Option<LinkFault> = None;
        for &s in &set {
            if self.links[s].failover_state() == ShardState::Down {
                self.divergent_writes[s] += 1;
                continue;
            }
            match self.links[s].try_writeback(bytes, now) {
                Ok(d) => {
                    self.stores[s].insert(key, ver);
                    done = Some(done.map_or(d, |x: u64| x.max(d)));
                }
                Err(f) => {
                    // Keep the latest detection time: the caller's retry
                    // must not race a replica that is still timing out.
                    failed = Some(match failed {
                        Some(g) if g.detected_at >= f.detected_at => g,
                        _ => f,
                    });
                }
            }
        }
        match (failed, done) {
            // A live replica missed the mirror: the op is NOT acknowledged
            // (any partial copies carry a version nobody acked — harmless).
            (Some(f), _) => Err(f),
            (None, Some(d)) => {
                self.acked.insert(key, ver);
                Ok(d)
            }
            // Every replica is Down.
            (None, None) => Err(self.unreachable_fault(now)),
        }
    }

    /// Blind-retry wrapper for the blocking entry points in tracked mode.
    fn tracked_blocking(&mut self, key: u64, bytes: u64, mut now: u64, writeback: bool) -> u64 {
        let mut attempts = 0u32;
        loop {
            let res = if writeback {
                self.tracked_try_writeback(key, bytes, now)
            } else {
                self.tracked_try_transfer(key, bytes, now)
            };
            match res {
                Ok(done) => return done,
                Err(f) => {
                    attempts += 1;
                    assert!(
                        attempts < 10_000,
                        "no replica of key {key} ever came back: {attempts} consecutive faults"
                    );
                    now = f.detected_at;
                }
            }
        }
    }
}

impl RemoteBackend for Sharded {
    fn shard_count(&self) -> usize {
        self.links.len()
    }

    fn shard_of(&self, key: u64) -> usize {
        if self.tracked {
            self.replica_set(key)[0]
        } else {
            self.route(key)
        }
    }

    fn transfer(&mut self, key: u64, bytes: u64, now: u64) -> u64 {
        if self.tracked {
            return self.tracked_blocking(key, bytes, now, false);
        }
        let s = self.route(key);
        self.links[s].transfer(bytes, now)
    }

    fn writeback(&mut self, key: u64, bytes: u64, now: u64) -> u64 {
        if self.tracked {
            return self.tracked_blocking(key, bytes, now, true);
        }
        let s = self.route(key);
        self.links[s].writeback(bytes, now)
    }

    fn try_transfer(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        if self.tracked {
            return self.tracked_try_transfer(key, bytes, now);
        }
        let s = self.route(key);
        self.links[s].try_transfer(bytes, now)
    }

    fn try_writeback(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        if self.tracked {
            return self.tracked_try_writeback(key, bytes, now);
        }
        let s = self.route(key);
        self.links[s].try_writeback(bytes, now)
    }

    fn faults_active(&self) -> bool {
        self.links.iter().any(|l| l.fault_plan().is_active())
    }

    fn health(&self) -> LinkHealth {
        let mut agg = LinkHealth::default();
        for l in &self.links {
            agg.absorb(&l.health());
        }
        agg
    }

    fn shard_health(&self, shard: usize) -> LinkHealth {
        self.links[shard].health()
    }

    fn stats(&self) -> TransferStats {
        use tfm_telemetry::MergeStats;
        let mut agg = TransferStats::default();
        for l in &self.links {
            agg.merge(&l.stats());
        }
        agg
    }

    fn shard_stats(&self, shard: usize) -> TransferStats {
        self.links[shard].stats()
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        for l in &mut self.links {
            l.set_telemetry(tel.clone());
        }
    }

    fn reset_stats(&mut self) {
        for l in &mut self.links {
            l.reset_stats();
        }
        for s in &mut self.stores {
            s.clear();
        }
        self.acked.clear();
        self.moved.clear();
        self.next_version = 0;
        self.lost_keys.clear();
        self.failover_reads.fill(0);
        self.divergent_writes.fill(0);
    }

    fn clone_box(&self) -> Box<dyn RemoteBackend> {
        Box::new(self.clone())
    }

    fn failover_active(&self) -> bool {
        self.tracked
    }

    fn replicas(&self) -> u32 {
        self.replicas
    }

    fn poll(&mut self, now: u64) {
        if self.tracked {
            self.poll_all(now);
        }
    }

    fn shard_state(&self, shard: usize) -> ShardState {
        self.links[shard].failover_state()
    }

    fn shard_epoch(&self, shard: usize) -> u64 {
        self.links[shard].epoch()
    }

    fn mark_synced(&mut self, shard: usize) {
        self.links[shard].mark_synced();
    }

    fn resync_key(&mut self, shard: usize, key: u64, bytes: u64, now: u64) -> ResyncOutcome {
        if !self.tracked {
            return ResyncOutcome::Clean;
        }
        let Some(&ver) = self.acked.get(&key) else {
            return ResyncOutcome::Clean;
        };
        let set = self.replica_set(key);
        if !set.contains(&shard) {
            return ResyncOutcome::Clean;
        }
        if self.stores[shard].get(&key).is_some_and(|&h| h >= ver) {
            return ResyncOutcome::Clean;
        }
        // The copy comes from a surviving replica holding the acked
        // version; without one, the acknowledged write is gone.
        let have_source = (0..self.links.len()).any(|s| {
            s != shard
                && self.links[s].failover_state() != ShardState::Down
                && self.stores[s].get(&key).is_some_and(|&h| h >= ver)
        });
        if !have_source {
            // The acked version is gone everywhere. Drop the fence (the
            // restarted shard becomes the authoritative — empty — home, so
            // future writes can land) but keep the loss on the books.
            self.acked.remove(&key);
            self.lost_keys.insert(key);
            return ResyncOutcome::Lost;
        }
        // Cost model: one writeback's worth of traffic into the recovering
        // shard (the source's read side is off the caller's critical path).
        let done = self.links[shard].writeback(bytes, now);
        self.stores[shard].insert(key, ver);
        ResyncOutcome::Synced(done)
    }

    fn re_replicate(&mut self, key: u64, from: usize, bytes: u64, now: u64) -> Option<u64> {
        if !self.tracked || self.replicas <= 1 {
            return None;
        }
        let set = self.replica_set(key);
        if !set.contains(&from) {
            return None;
        }
        let &ver = self.acked.get(&key)?;
        let have_source = set.iter().any(|&s| {
            s != from
                && self.links[s].failover_state() != ShardState::Down
                && self.stores[s].get(&key).is_some_and(|&h| h >= ver)
        });
        if !have_source {
            return None;
        }
        // Substitute: the first ring position after `from` that is neither
        // already hosting the key nor Down itself.
        let n = self.links.len();
        let sub = (1..n)
            .map(|i| (from + i) % n)
            .find(|&c| !set.contains(&c) && self.links[c].failover_state() != ShardState::Down)?;
        let done = self.links[sub].writeback(bytes, now);
        self.stores[sub].insert(key, ver);
        let new_set: Vec<u32> = set
            .iter()
            .map(|&s| if s == from { sub as u32 } else { s as u32 })
            .collect();
        self.moved.insert(key, new_set);
        Some(done)
    }

    fn recover_shard(&mut self, shard: usize, bytes_per_key: u64, now: u64) -> (u64, u64) {
        let keys: Vec<u64> = self.acked.keys().copied().collect();
        let (mut resynced, mut lost) = (0u64, 0u64);
        for key in keys {
            match self.resync_key(shard, key, bytes_per_key, now) {
                ResyncOutcome::Synced(_) => resynced += 1,
                ResyncOutcome::Lost => lost += 1,
                ResyncOutcome::Clean => {}
            }
        }
        self.mark_synced(shard);
        (resynced, lost)
    }

    fn audit(&self) -> Option<FailoverAudit> {
        if !self.tracked {
            return None;
        }
        let mut audit = FailoverAudit::default();
        audit.acked_keys += self.lost_keys.len() as u64;
        audit.lost += self.lost_keys.len() as u64;
        for (&key, &ver) in &self.acked {
            audit.acked_keys += 1;
            let set = self.replica_set(key);
            let in_set = set
                .iter()
                .filter(|&&s| self.stores[s].get(&key).is_some_and(|&h| h >= ver))
                .count();
            // Copies parked outside the current set (an old home that was
            // re-homed away) still avert loss, though they don't count
            // toward the set's redundancy.
            let anywhere = (0..self.links.len())
                .filter(|&s| self.stores[s].get(&key).is_some_and(|&h| h >= ver))
                .count();
            if anywhere == 0 {
                audit.lost += 1;
            } else if in_set < set.len() {
                audit.under_replicated += 1;
            }
        }
        Some(audit)
    }

    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        (0..self.shard_count())
            .map(|s| ShardSnapshot {
                stats: self.shard_stats(s),
                health: self.shard_health(s),
                state: self.links[s].failover_state(),
                epoch: self.links[s].epoch(),
                failover_reads: self.failover_reads[s],
                divergent_writes: self.divergent_writes[s],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PPM;
    use tfm_telemetry::MergeStats;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for policy in [PlacementPolicy::Hash, PlacementPolicy::Interleave] {
            for shards in [1usize, 2, 4, 7, 8] {
                let first: Vec<usize> = (0..1024).map(|k| policy.shard_of(k, shards)).collect();
                let second: Vec<usize> = (0..1024).map(|k| policy.shard_of(k, shards)).collect();
                assert_eq!(first, second, "{policy:?}/{shards} must be a pure function");
                assert!(first.iter().all(|&s| s < shards));
            }
        }
    }

    #[test]
    fn hash_placement_spreads_contiguous_keys() {
        let shards = 4;
        let mut counts = vec![0u64; shards];
        for k in 0..4096u64 {
            counts[PlacementPolicy::Hash.shard_of(k, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // Fair share is 1024; a heavily skewed hash would fail loudly.
            assert!((700..1400).contains(&c), "shard {s} got {c} of 4096 keys");
        }
    }

    #[test]
    fn interleave_round_robins() {
        for k in 0..64u64 {
            assert_eq!(PlacementPolicy::Interleave.shard_of(k, 4), (k % 4) as usize);
        }
    }

    #[test]
    fn sharded_with_one_shard_matches_single_node() {
        // Cost-identity: same transfers, same completion cycles, same
        // ledger — with and without an active fault plan (shard 0 keeps the
        // plan's seed verbatim).
        for faults in [FaultPlan::none(), FaultPlan::drops(0xFEED, 300_000)] {
            let mut single = build_backend(LinkParams::tcp_25g(), BackendSpec::single(), faults);
            let mut sharded = build_backend(LinkParams::tcp_25g(), BackendSpec::sharded(1), faults);
            for k in 0..256u64 {
                let (bytes, at) = (64 + k * 131, k * 5000);
                assert_eq!(
                    single.transfer(k, bytes, at),
                    sharded.transfer(k, bytes, at)
                );
                assert_eq!(
                    single.writeback(k, bytes, at),
                    sharded.writeback(k, bytes, at)
                );
            }
            assert_eq!(single.stats(), sharded.stats());
            assert_eq!(single.health(), sharded.health());
        }
    }

    #[test]
    fn shards_have_independent_bandwidth_queues() {
        let params = LinkParams {
            base_latency: 1000,
            cycles_per_kib: 1024, // 1 byte/cycle
        };
        let mut b = Sharded::new(params, 2, PlacementPolicy::Interleave);
        // Keys 0 and 1 land on different shards: neither queues behind the
        // other, both complete at the solo cost.
        let a = b.transfer(0, 1000, 0);
        let c = b.transfer(1, 1000, 0);
        assert_eq!(a, 1000 + 1000);
        assert_eq!(c, 1000 + 1000, "different shard, no queueing");
        // A second message to shard 0 does queue.
        let d = b.transfer(2, 1000, 0);
        assert_eq!(d, 2000 + 1000);
    }

    #[test]
    fn aggregate_stats_sum_over_shards() {
        let mut b = Sharded::new(LinkParams::instant(), 4, PlacementPolicy::Interleave);
        for k in 0..16u64 {
            b.transfer(k, 4096, 0);
        }
        b.writeback(3, 4096, 0);
        let mut manual = TransferStats::default();
        for s in 0..4 {
            manual.merge(&b.shard_stats(s));
        }
        assert_eq!(b.stats(), manual);
        assert_eq!(b.stats().fetches, 16);
        assert_eq!(b.stats().writebacks, 1);
        // Interleaved keys spread evenly: 4 fetches per shard.
        for s in 0..4 {
            assert_eq!(b.shard_stats(s).fetches, 4);
        }
    }

    #[test]
    fn one_dead_shard_leaves_the_others_serving() {
        let mut b = Sharded::new(LinkParams::tcp_25g(), 4, PlacementPolicy::Interleave);
        b.set_fault_plan_on(2, FaultPlan::drops(9, PPM)); // shard 2 always drops
        assert!(b.faults_active());
        let mut now = 0;
        for k in 0..32u64 {
            if b.shard_of(k) == 2 {
                assert!(b.try_transfer(k, 4096, now).is_err(), "shard 2 is dead");
            } else {
                now = b.try_transfer(k, 4096, now).expect("healthy shard serves");
            }
        }
        assert!(b.shard_health(2).is_degraded());
        for s in [0usize, 1, 3] {
            assert!(
                !b.shard_health(s).is_degraded(),
                "shard {s} must stay healthy"
            );
            assert_eq!(b.shard_stats(s).faults, 0);
            assert_eq!(b.shard_stats(s).fetches, 8);
        }
        assert_eq!(b.shard_stats(2).fetches, 0);
        assert_eq!(b.shard_stats(2).faults, 8);
        // Aggregate health reflects the sick shard.
        assert!(b.health().is_degraded());
        assert_eq!(b.health().faults(), 8);
        assert_eq!(b.stats().faults, 8);
    }

    #[test]
    fn untargeted_plans_get_per_shard_seeds() {
        let faults = FaultPlan::drops(0xABCD, 500_000);
        let b = build_backend(LinkParams::tcp_25g(), BackendSpec::sharded(4), faults);
        // Reach through the snapshots: drive each shard's schedule by
        // routing keys per shard and checking the schedules differ. Cheaper:
        // the plans themselves must carry distinct seeds but identical rates.
        let sharded = b; // Box<dyn>; inspect via a fresh build instead
        drop(sharded);
        let mut direct = Sharded::new(LinkParams::tcp_25g(), 4, PlacementPolicy::Hash);
        for s in 0..4 {
            let mut plan = faults;
            if s > 0 {
                plan.seed = mix(faults.seed ^ s as u64);
            }
            direct.set_fault_plan_on(s, plan);
        }
        let seeds: Vec<u64> = (0..4).map(|s| direct.link(s).fault_plan().seed).collect();
        assert_eq!(
            seeds[0], faults.seed,
            "shard 0 keeps the seed (1-shard identity)"
        );
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            4,
            "shards must not fault in lockstep: {seeds:?}"
        );
        for s in 0..4 {
            assert_eq!(direct.link(s).fault_plan().drop_ppm, faults.drop_ppm);
        }
    }

    #[test]
    fn targeted_fault_shard_leaves_others_flawless() {
        let faults = FaultPlan::drops(1, PPM);
        let spec = BackendSpec::sharded(4).with_fault_shard(2);
        let mut b = build_backend(LinkParams::tcp_25g(), spec, faults);
        assert!(b.faults_active());
        for k in 0..64u64 {
            let r = b.try_transfer(k, 64, 0);
            if b.shard_of(k) == 2 {
                assert!(r.is_err());
            } else {
                assert!(r.is_ok());
            }
        }
        for s in 0..4 {
            let expect_faults = s == 2;
            assert_eq!(b.shard_stats(s).faults > 0, expect_faults, "shard {s}");
        }
    }

    #[test]
    fn clone_box_preserves_state() {
        let mut b: Box<dyn RemoteBackend> = Box::new(Sharded::new(
            LinkParams::tcp_25g(),
            2,
            PlacementPolicy::Hash,
        ));
        b.transfer(0, 4096, 0);
        let c = b.clone();
        assert_eq!(b.stats(), c.stats());
        assert_eq!(b.shard_count(), c.shard_count());
    }

    #[test]
    fn spec_display_and_validation() {
        assert_eq!(BackendSpec::single().to_string(), "single");
        let s = BackendSpec::sharded(4)
            .with_placement(PlacementPolicy::Interleave)
            .with_fault_shard(1);
        assert_eq!(s.to_string(), "sharded(4, interleave) fault_shard=1");
        assert_eq!(s.shard_count(), 4);
        assert!(!s.is_single());
        assert_eq!(s.replica_count(), 1);
        s.validate().unwrap();
        let r = BackendSpec::sharded(4).with_replicas(2);
        assert_eq!(r.to_string(), "sharded(4, hash) replicas=2");
        assert_eq!(r.replica_count(), 2);
        r.validate().unwrap();
    }

    #[test]
    fn spec_validation_rejects_each_bad_shape() {
        assert_eq!(
            BackendSpec::sharded(0).validate(),
            Err(SpecError::ZeroShards)
        );
        assert_eq!(
            BackendSpec::sharded(2).with_fault_shard(5).validate(),
            Err(SpecError::FaultShardOutOfRange {
                fault_shard: 5,
                shards: 2
            })
        );
        assert_eq!(
            BackendSpec::sharded(2).with_replicas(0).validate(),
            Err(SpecError::ZeroReplicas)
        );
        assert_eq!(
            BackendSpec::sharded(2).with_replicas(3).validate(),
            Err(SpecError::ReplicasExceedShards {
                replicas: 3,
                shards: 2
            })
        );
        assert!(BackendSpec::sharded(2).with_replicas(2).validate().is_ok());
        assert!(BackendSpec::single().validate().is_ok());
        // The Display text is descriptive — panicking callers surface it
        // verbatim, so config-level #[should_panic] pins keep matching.
        let msg = BackendSpec::sharded(2)
            .with_fault_shard(5)
            .validate()
            .unwrap_err()
            .to_string();
        assert!(msg.contains("fault shard 5 out of range for 2 shards"));
        assert!(BackendSpec::sharded(8)
            .with_replicas(0)
            .validate()
            .unwrap_err()
            .to_string()
            .contains("replication factor"));
    }

    #[test]
    #[should_panic(expected = "fault shard")]
    fn build_backend_panics_on_invalid_spec() {
        build_backend(
            LinkParams::tcp_25g(),
            BackendSpec::sharded(2).with_fault_shard(5),
            FaultPlan::none(),
        );
    }

    #[test]
    fn replicas_one_is_bit_identical_to_plain_sharded() {
        // The pay-for-use pin: with_replicas(1) must leave every completion
        // cycle, counter, and snapshot untouched — tracked mode stays off.
        for faults in [FaultPlan::none(), FaultPlan::drops(0xFEED, 200_000)] {
            let spec = BackendSpec::sharded(4);
            let mut plain = build_backend(LinkParams::tcp_25g(), spec, faults);
            let mut reppy = build_backend(LinkParams::tcp_25g(), spec.with_replicas(1), faults);
            assert!(!reppy.failover_active());
            for k in 0..512u64 {
                let (bytes, at) = (64 + k * 97, k * 3000);
                assert_eq!(
                    plain.try_transfer(k, bytes, at).ok(),
                    reppy.try_transfer(k, bytes, at).ok()
                );
                assert_eq!(
                    plain.try_writeback(k, bytes, at).ok(),
                    reppy.try_writeback(k, bytes, at).ok()
                );
            }
            assert_eq!(plain.stats(), reppy.stats());
            assert_eq!(plain.shard_snapshots(), reppy.shard_snapshots());
            assert!(reppy.audit().is_none(), "untracked mode keeps no ledger");
        }
    }

    #[test]
    fn mirrored_writeback_lands_on_every_replica() {
        let mut b = Sharded::new(LinkParams::instant(), 4, PlacementPolicy::Interleave);
        b.set_replicas(2);
        assert!(b.failover_active());
        assert_eq!(b.replicas(), 2);
        b.try_writeback(0, 4096, 0).unwrap(); // replicas on shards 0 and 1
        assert_eq!(b.shard_stats(0).writebacks, 1);
        assert_eq!(b.shard_stats(1).writebacks, 1);
        assert_eq!(b.shard_stats(2).writebacks, 0);
        let a = b.audit().unwrap();
        assert_eq!(a.acked_keys, 1);
        assert_eq!((a.lost, a.under_replicated), (0, 0));
        // Reads hit only the primary.
        b.try_transfer(0, 4096, 0).unwrap();
        assert_eq!(b.shard_stats(0).fetches, 1);
        assert_eq!(b.shard_stats(1).fetches, 0);
    }

    #[test]
    fn reads_fail_over_to_the_replica_while_the_primary_is_down() {
        let mut b = Sharded::new(LinkParams::tcp_25g(), 4, PlacementPolicy::Interleave);
        b.set_replicas(2);
        b.set_fault_plan_on(0, FaultPlan::none().with_crash(100_000, 900_000));
        // Key 0's replicas are shards 0 (primary) and 1.
        b.try_writeback(0, 4096, 0).unwrap();
        // During the crash window the replica serves without a single
        // failed attempt: the poll notices the crash before routing.
        let done = b.try_transfer(0, 4096, 200_000).unwrap();
        assert!(done > 200_000);
        assert_eq!(b.shard_state(0), ShardState::Down);
        assert_eq!(b.shard_stats(1).fetches, 1, "replica served the read");
        assert_eq!(b.shard_snapshots()[1].failover_reads, 1);
        // A writeback during the window lands only on the live replica and
        // records the divergence — but is still acknowledged.
        b.try_writeback(0, 4096, 300_000).unwrap();
        assert_eq!(b.shard_snapshots()[0].divergent_writes, 1);
        let a = b.audit().unwrap();
        assert_eq!(a.lost, 0);
        assert_eq!(a.under_replicated, 1, "shard 0 missed the second write");
    }

    #[test]
    fn epoch_fence_blocks_a_stale_restarted_primary_until_resync() {
        let mut b = Sharded::new(LinkParams::tcp_25g(), 4, PlacementPolicy::Interleave);
        b.set_replicas(2);
        b.set_fault_plan_on(0, FaultPlan::none().with_cold_crash(100_000, 500_000));
        b.try_writeback(0, 4096, 0).unwrap();
        // Shard 0 crashes cold; a write during the window bumps the acked
        // version past anything shard 0 will hold at restart.
        b.try_writeback(0, 4096, 200_000).unwrap();
        // Past the window: shard 0 restarts (Recovering, epoch 1) — but the
        // read must NOT come from it even after mark_synced flips it Up,
        // until its store is re-synced.
        b.poll(600_000);
        assert_eq!(b.shard_state(0), ShardState::Recovering);
        assert_eq!(b.shard_epoch(0), 1);
        b.mark_synced(0);
        assert_eq!(b.shard_state(0), ShardState::Up);
        let before = b.shard_stats(1).fetches;
        b.try_transfer(0, 4096, 600_000).unwrap();
        assert_eq!(
            b.shard_stats(1).fetches,
            before + 1,
            "fence must route the read to the replica, not the stale primary"
        );
        assert_eq!(b.shard_stats(0).fetches, 0);
        // Resync repays the divergence; now the primary serves again.
        let out = b.resync_key(0, 0, 4096, 700_000);
        assert!(matches!(out, ResyncOutcome::Synced(_)), "{out:?}");
        b.try_transfer(0, 4096, 800_000).unwrap();
        assert_eq!(b.shard_stats(0).fetches, 1);
        let a = b.audit().unwrap();
        assert_eq!((a.lost, a.under_replicated), (0, 0));
    }

    #[test]
    fn unreplicated_cold_crash_loses_acknowledged_writes() {
        // The audit has teeth: with R=1 a cold crash destroys the only
        // copy, and the audit says so.
        let mut b = Sharded::new(LinkParams::tcp_25g(), 2, PlacementPolicy::Interleave);
        b.set_fault_plan_on(0, FaultPlan::none().with_cold_crash(100_000, 500_000));
        assert!(
            b.failover_active(),
            "a crash plan arms tracking even at R=1"
        );
        b.try_writeback(0, 4096, 0).unwrap();
        assert_eq!(b.audit().unwrap().lost, 0);
        b.poll(600_000);
        assert_eq!(b.audit().unwrap().lost, 1, "the only copy was wiped");
        assert!(matches!(
            b.resync_key(0, 0, 4096, 600_000),
            ResyncOutcome::Lost
        ));
    }

    #[test]
    fn re_replication_restores_redundancy_and_rehomes_the_key() {
        let mut b = Sharded::new(LinkParams::tcp_25g(), 4, PlacementPolicy::Interleave);
        b.set_replicas(2);
        b.set_fault_plan_on(0, FaultPlan::none().with_cold_crash(100_000, 10_000_000));
        b.try_writeback(0, 4096, 0).unwrap(); // shards {0, 1}
        b.poll(200_000);
        assert_eq!(b.shard_state(0), ShardState::Down);
        // Drain key 0 off the dead shard: shard 1 is already a home, so the
        // substitute is shard 2.
        let done = b.re_replicate(0, 0, 4096, 200_000);
        assert!(done.is_some());
        assert_eq!(b.shard_stats(2).writebacks, 1);
        assert_eq!(b.shard_of(0), 2, "primary re-homed to the substitute");
        let a = b.audit().unwrap();
        assert_eq!((a.lost, a.under_replicated), (0, 0), "redundancy restored");
        // Subsequent writes mirror to the new set {2, 1} and skip the corpse.
        b.try_writeback(0, 4096, 300_000).unwrap();
        assert_eq!(b.shard_stats(2).writebacks, 2);
        assert_eq!(b.shard_stats(1).writebacks, 2);
        assert_eq!(b.shard_stats(0).writebacks, 1);
        // Re-replicating an already-drained key is a no-op.
        assert!(b.re_replicate(0, 0, 4096, 400_000).is_none());
    }

    #[test]
    fn recover_shard_resyncs_every_hosted_key() {
        let mut b = Sharded::new(LinkParams::instant(), 3, PlacementPolicy::Interleave);
        b.set_replicas(2);
        b.set_fault_plan_on(1, FaultPlan::none().with_cold_crash(1_000, 2_000));
        // Keys 0 (shards {0,1}) and 1 (shards {1,2}) both live on shard 1.
        b.try_writeback(0, 64, 0).unwrap();
        b.try_writeback(1, 64, 0).unwrap();
        b.poll(5_000);
        assert_eq!(b.shard_state(1), ShardState::Recovering);
        let (resynced, lost) = b.recover_shard(1, 64, 5_000);
        assert_eq!((resynced, lost), (2, 0));
        assert_eq!(b.shard_state(1), ShardState::Up);
        let a = b.audit().unwrap();
        assert_eq!((a.lost, a.under_replicated), (0, 0));
    }
}
