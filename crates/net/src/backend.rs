//! Pluggable remote-memory backends.
//!
//! The runtime and the pager used to be hard-wired to a single [`Link`]: one
//! far-memory node behind one wire. This module decouples *what* a caller
//! asks for (fetch/writeback an object, observe health and occupancy) from
//! *where* the bytes live, behind the [`RemoteBackend`] trait:
//!
//! * [`SingleNode`] wraps exactly one [`Link`] — behavior- and
//!   cost-identical to the pre-trait world (the paper's evaluation fabric);
//! * [`Sharded`] spreads objects across N nodes, each with its own link
//!   (independent bandwidth queues), its own [`FaultPlan`] schedule, and its
//!   own [`LinkHealth`] tracker — one shard can degrade or die while the
//!   others keep serving.
//!
//! Every operation takes a `key` (the caller's object id or page number);
//! backends route it through a deterministic [`PlacementPolicy`], so the
//! same seed and the same object set always produce the same shard
//! assignment — and therefore the same counters and the same run reports.

use std::fmt;

use crate::fault::{mix, FaultPlan, LinkFault, LinkHealth};
use crate::{Link, LinkParams, TransferStats};
use tfm_telemetry::{StatGroup, Telemetry};

/// A remote-memory data plane: where localize/writeback traffic goes.
///
/// All methods mirror [`Link`]'s contract, with an added routing `key` (the
/// object id or page number being moved). The blocking forms
/// ([`transfer`](Self::transfer)/[`writeback`](Self::writeback)) retry
/// blindly until delivery; the fallible forms
/// ([`try_transfer`](Self::try_transfer)/[`try_writeback`](Self::try_writeback))
/// surface the [`LinkFault`] so policy-aware callers (the runtime's
/// retry/backoff loop) own the retry schedule.
pub trait RemoteBackend: fmt::Debug {
    /// Number of remote nodes behind this backend.
    fn shard_count(&self) -> usize;

    /// The shard serving `key` (always 0 for a single node).
    fn shard_of(&self, key: u64) -> usize;

    /// Blocking fetch of `bytes` for `key` at cycle `now`; returns the
    /// completion cycle. Faulted attempts are transparently retried.
    fn transfer(&mut self, key: u64, bytes: u64, now: u64) -> u64;

    /// Blocking writeback counterpart of [`transfer`](Self::transfer).
    fn writeback(&mut self, key: u64, bytes: u64, now: u64) -> u64;

    /// One fetch attempt; the caller owns retry policy on failure.
    fn try_transfer(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault>;

    /// One writeback attempt; the caller owns retry policy on failure.
    fn try_writeback(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault>;

    /// True if any shard has an active fault plan attached. Callers use
    /// this to keep the flawless-fabric fast path (no retry bookkeeping).
    fn faults_active(&self) -> bool;

    /// Aggregate health: counters summed, fault-rate EWMA maxed, degraded
    /// if *any* shard is degraded.
    fn health(&self) -> LinkHealth;

    /// Health of one shard.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    fn shard_health(&self, shard: usize) -> LinkHealth;

    /// Aggregate transfer ledger (all shards merged).
    fn stats(&self) -> TransferStats;

    /// Transfer ledger of one shard.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    fn shard_stats(&self, shard: usize) -> TransferStats;

    /// Attaches a telemetry sink (shared across shards).
    fn set_telemetry(&mut self, tel: Telemetry);

    /// Clears ledgers, occupancy horizons, fault schedules, and health —
    /// on every shard.
    fn reset_stats(&mut self);

    /// Clones the backend with its full state (see the blanket
    /// `Clone for Box<dyn RemoteBackend>`).
    fn clone_box(&self) -> Box<dyn RemoteBackend>;

    /// Per-shard ledger + health, for reports. Cheap (copies counters).
    fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        (0..self.shard_count())
            .map(|s| ShardSnapshot {
                stats: self.shard_stats(s),
                health: self.shard_health(s),
            })
            .collect()
    }
}

impl Clone for Box<dyn RemoteBackend> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// One shard's end-of-run counters, as published into run reports.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's transfer ledger.
    pub stats: TransferStats,
    /// The shard's health tracker.
    pub health: LinkHealth,
}

impl StatGroup for ShardSnapshot {
    fn group_name(&self) -> &'static str {
        // Reports publish one section per shard under caller-chosen names
        // ("shard0", "shard1", ...); this is only the fallback.
        "shard"
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        let mut fields = self.stats.stat_fields();
        fields.push(("ewma_fault_ppm", self.health.fault_rate_ppm()));
        fields.push(("degraded", u64::from(self.health.is_degraded())));
        fields
    }
}

/// Deterministic object→shard routing.
///
/// Policies are pure functions of `(key, shard_count)`: no state, no
/// randomness, so shard assignment is reproducible across runs by
/// construction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// SplitMix64 hash of the object id, modulo shard count: spreads hot
    /// ranges evenly, destroys spatial locality (neighboring objects land
    /// on different shards — good for load balance).
    #[default]
    Hash,
    /// `key % shards`: neighboring objects round-robin across shards, so a
    /// sequential scan stripes its fetches over every node's bandwidth.
    Interleave,
}

impl PlacementPolicy {
    /// The shard serving `key` out of `shards` nodes.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[inline]
    pub fn shard_of(self, key: u64, shards: usize) -> usize {
        assert!(shards > 0, "a backend needs at least one shard");
        match self {
            PlacementPolicy::Hash => (mix(key) % shards as u64) as usize,
            PlacementPolicy::Interleave => (key % shards as u64) as usize,
        }
    }

    /// Stable lowercase name (report labels).
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Hash => "hash",
            PlacementPolicy::Interleave => "interleave",
        }
    }
}

/// Declarative backend selection, carried by run configurations.
///
/// `Copy` on purpose: configs spread freely through the workspace. The spec
/// is *what to build*; [`build_backend`] turns it into a live backend.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// One remote node behind one link (the paper's fabric). The default.
    #[default]
    SingleNode,
    /// N remote nodes, each with an independent link and fault schedule.
    Sharded {
        /// Number of remote nodes (≥ 1).
        shards: u32,
        /// Object→shard routing policy.
        placement: PlacementPolicy,
        /// When set, the configured fault plan applies *only* to this shard
        /// (the "one node dies" experiment); otherwise every shard runs the
        /// plan with a per-shard derived seed.
        fault_shard: Option<u32>,
    },
}

impl BackendSpec {
    /// The single-node default.
    pub fn single() -> Self {
        BackendSpec::SingleNode
    }

    /// A sharded backend with `shards` nodes and hashed placement.
    pub fn sharded(shards: u32) -> Self {
        BackendSpec::Sharded {
            shards,
            placement: PlacementPolicy::Hash,
            fault_shard: None,
        }
    }

    /// Returns a copy with a different placement policy (sharded specs
    /// only; a no-op on [`BackendSpec::SingleNode`]).
    pub fn with_placement(mut self, policy: PlacementPolicy) -> Self {
        if let BackendSpec::Sharded { placement, .. } = &mut self {
            *placement = policy;
        }
        self
    }

    /// Returns a copy targeting the fault plan at one shard (sharded specs
    /// only; a no-op on [`BackendSpec::SingleNode`]).
    pub fn with_fault_shard(mut self, shard: u32) -> Self {
        if let BackendSpec::Sharded { fault_shard, .. } = &mut self {
            *fault_shard = Some(shard);
        }
        self
    }

    /// Number of shards this spec builds.
    pub fn shard_count(&self) -> u32 {
        match self {
            BackendSpec::SingleNode => 1,
            BackendSpec::Sharded { shards, .. } => (*shards).max(1),
        }
    }

    /// True for the single-node default.
    pub fn is_single(&self) -> bool {
        matches!(self, BackendSpec::SingleNode)
    }

    /// Validates invariants, panicking with a descriptive message.
    ///
    /// # Panics
    /// If a sharded spec has zero shards or targets a fault shard out of
    /// range.
    pub fn validate(&self) {
        if let BackendSpec::Sharded {
            shards,
            fault_shard,
            ..
        } = self
        {
            assert!(*shards >= 1, "a sharded backend needs at least one shard");
            if let Some(fs) = fault_shard {
                assert!(
                    fs < shards,
                    "fault shard {fs} out of range for {shards} shards"
                );
            }
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::SingleNode => write!(f, "single"),
            BackendSpec::Sharded {
                shards,
                placement,
                fault_shard,
            } => {
                write!(f, "sharded({shards}, {})", placement.name())?;
                if let Some(fs) = fault_shard {
                    write!(f, " fault_shard={fs}")?;
                }
                Ok(())
            }
        }
    }
}

/// Builds a live backend from a spec: link parameters are shared by every
/// shard, the fault plan is attached per the spec's targeting rules.
///
/// Seed derivation for untargeted sharded plans: shard 0 keeps the plan's
/// seed verbatim (so `Sharded` with one shard is schedule-identical to
/// [`SingleNode`]); shard `i > 0` draws `mix(seed ^ i)` so shards fault
/// independently instead of in lockstep.
pub fn build_backend(
    params: LinkParams,
    spec: BackendSpec,
    faults: FaultPlan,
) -> Box<dyn RemoteBackend> {
    spec.validate();
    match spec {
        BackendSpec::SingleNode => {
            let mut b = SingleNode::new(params);
            b.set_fault_plan(faults);
            Box::new(b)
        }
        BackendSpec::Sharded {
            shards,
            placement,
            fault_shard,
        } => {
            let mut b = Sharded::new(params, shards.max(1), placement);
            match fault_shard {
                Some(fs) => b.set_fault_plan_on(fs as usize, faults),
                None if faults.is_active() => {
                    for s in 0..b.shard_count() {
                        let mut plan = faults;
                        if s > 0 {
                            plan.seed = mix(faults.seed ^ s as u64);
                        }
                        b.set_fault_plan_on(s, plan);
                    }
                }
                None => {}
            }
            Box::new(b)
        }
    }
}

// ======================================================================
// SingleNode
// ======================================================================

/// The classic one-node backend: a thin wrapper over today's [`Link`],
/// behavior- and cost-identical to driving the link directly (the routing
/// key is ignored; there is nowhere else to go).
#[derive(Clone, Debug)]
pub struct SingleNode {
    link: Link,
}

impl SingleNode {
    /// Creates a single-node backend over an idle link.
    pub fn new(params: LinkParams) -> Self {
        SingleNode {
            link: Link::new(params),
        }
    }

    /// Attaches a fault plan to the node's link.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.link.set_fault_plan(plan);
    }

    /// The wrapped link (for assertions in tests).
    pub fn link(&self) -> &Link {
        &self.link
    }
}

impl RemoteBackend for SingleNode {
    fn shard_count(&self) -> usize {
        1
    }

    fn shard_of(&self, _key: u64) -> usize {
        0
    }

    fn transfer(&mut self, _key: u64, bytes: u64, now: u64) -> u64 {
        self.link.transfer(bytes, now)
    }

    fn writeback(&mut self, _key: u64, bytes: u64, now: u64) -> u64 {
        self.link.writeback(bytes, now)
    }

    fn try_transfer(&mut self, _key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.link.try_transfer(bytes, now)
    }

    fn try_writeback(&mut self, _key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        self.link.try_writeback(bytes, now)
    }

    fn faults_active(&self) -> bool {
        self.link.fault_plan().is_active()
    }

    fn health(&self) -> LinkHealth {
        self.link.health()
    }

    fn shard_health(&self, shard: usize) -> LinkHealth {
        assert_eq!(shard, 0, "single node has exactly one shard");
        self.link.health()
    }

    fn stats(&self) -> TransferStats {
        self.link.stats()
    }

    fn shard_stats(&self, shard: usize) -> TransferStats {
        assert_eq!(shard, 0, "single node has exactly one shard");
        self.link.stats()
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        self.link.set_telemetry(tel);
    }

    fn reset_stats(&mut self) {
        self.link.reset_stats();
    }

    fn clone_box(&self) -> Box<dyn RemoteBackend> {
        Box::new(self.clone())
    }
}

// ======================================================================
// Sharded
// ======================================================================

/// N remote nodes, each behind its own [`Link`]: independent bandwidth
/// queues and occupancy horizons (fetches to different shards pipeline
/// freely), independent fault schedules, independent health trackers.
#[derive(Clone, Debug)]
pub struct Sharded {
    links: Vec<Link>,
    placement: PlacementPolicy,
}

impl Sharded {
    /// Creates a sharded backend of `shards` idle nodes sharing one set of
    /// link parameters.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(params: LinkParams, shards: u32, placement: PlacementPolicy) -> Self {
        assert!(shards >= 1, "a sharded backend needs at least one shard");
        Sharded {
            links: (0..shards)
                .map(|i| {
                    let mut link = Link::new(params);
                    link.set_shard(i);
                    link
                })
                .collect(),
            placement,
        }
    }

    /// Attaches a fault plan to one shard's link.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn set_fault_plan_on(&mut self, shard: usize, plan: FaultPlan) {
        self.links[shard].set_fault_plan(plan);
    }

    /// The routing policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// One shard's link (for assertions in tests).
    pub fn link(&self, shard: usize) -> &Link {
        &self.links[shard]
    }

    #[inline]
    fn route(&self, key: u64) -> usize {
        self.placement.shard_of(key, self.links.len())
    }
}

impl RemoteBackend for Sharded {
    fn shard_count(&self) -> usize {
        self.links.len()
    }

    fn shard_of(&self, key: u64) -> usize {
        self.route(key)
    }

    fn transfer(&mut self, key: u64, bytes: u64, now: u64) -> u64 {
        let s = self.route(key);
        self.links[s].transfer(bytes, now)
    }

    fn writeback(&mut self, key: u64, bytes: u64, now: u64) -> u64 {
        let s = self.route(key);
        self.links[s].writeback(bytes, now)
    }

    fn try_transfer(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        let s = self.route(key);
        self.links[s].try_transfer(bytes, now)
    }

    fn try_writeback(&mut self, key: u64, bytes: u64, now: u64) -> Result<u64, LinkFault> {
        let s = self.route(key);
        self.links[s].try_writeback(bytes, now)
    }

    fn faults_active(&self) -> bool {
        self.links.iter().any(|l| l.fault_plan().is_active())
    }

    fn health(&self) -> LinkHealth {
        let mut agg = LinkHealth::default();
        for l in &self.links {
            agg.absorb(&l.health());
        }
        agg
    }

    fn shard_health(&self, shard: usize) -> LinkHealth {
        self.links[shard].health()
    }

    fn stats(&self) -> TransferStats {
        use tfm_telemetry::MergeStats;
        let mut agg = TransferStats::default();
        for l in &self.links {
            agg.merge(&l.stats());
        }
        agg
    }

    fn shard_stats(&self, shard: usize) -> TransferStats {
        self.links[shard].stats()
    }

    fn set_telemetry(&mut self, tel: Telemetry) {
        for l in &mut self.links {
            l.set_telemetry(tel.clone());
        }
    }

    fn reset_stats(&mut self) {
        for l in &mut self.links {
            l.reset_stats();
        }
    }

    fn clone_box(&self) -> Box<dyn RemoteBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::PPM;
    use tfm_telemetry::MergeStats;

    #[test]
    fn placement_is_deterministic_and_in_range() {
        for policy in [PlacementPolicy::Hash, PlacementPolicy::Interleave] {
            for shards in [1usize, 2, 4, 7, 8] {
                let first: Vec<usize> = (0..1024).map(|k| policy.shard_of(k, shards)).collect();
                let second: Vec<usize> = (0..1024).map(|k| policy.shard_of(k, shards)).collect();
                assert_eq!(first, second, "{policy:?}/{shards} must be a pure function");
                assert!(first.iter().all(|&s| s < shards));
            }
        }
    }

    #[test]
    fn hash_placement_spreads_contiguous_keys() {
        let shards = 4;
        let mut counts = vec![0u64; shards];
        for k in 0..4096u64 {
            counts[PlacementPolicy::Hash.shard_of(k, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // Fair share is 1024; a heavily skewed hash would fail loudly.
            assert!((700..1400).contains(&c), "shard {s} got {c} of 4096 keys");
        }
    }

    #[test]
    fn interleave_round_robins() {
        for k in 0..64u64 {
            assert_eq!(PlacementPolicy::Interleave.shard_of(k, 4), (k % 4) as usize);
        }
    }

    #[test]
    fn sharded_with_one_shard_matches_single_node() {
        // Cost-identity: same transfers, same completion cycles, same
        // ledger — with and without an active fault plan (shard 0 keeps the
        // plan's seed verbatim).
        for faults in [FaultPlan::none(), FaultPlan::drops(0xFEED, 300_000)] {
            let mut single = build_backend(LinkParams::tcp_25g(), BackendSpec::single(), faults);
            let mut sharded =
                build_backend(LinkParams::tcp_25g(), BackendSpec::sharded(1), faults);
            for k in 0..256u64 {
                let (bytes, at) = (64 + k * 131, k * 5000);
                assert_eq!(
                    single.transfer(k, bytes, at),
                    sharded.transfer(k, bytes, at)
                );
                assert_eq!(
                    single.writeback(k, bytes, at),
                    sharded.writeback(k, bytes, at)
                );
            }
            assert_eq!(single.stats(), sharded.stats());
            assert_eq!(single.health(), sharded.health());
        }
    }

    #[test]
    fn shards_have_independent_bandwidth_queues() {
        let params = LinkParams {
            base_latency: 1000,
            cycles_per_kib: 1024, // 1 byte/cycle
        };
        let mut b = Sharded::new(params, 2, PlacementPolicy::Interleave);
        // Keys 0 and 1 land on different shards: neither queues behind the
        // other, both complete at the solo cost.
        let a = b.transfer(0, 1000, 0);
        let c = b.transfer(1, 1000, 0);
        assert_eq!(a, 1000 + 1000);
        assert_eq!(c, 1000 + 1000, "different shard, no queueing");
        // A second message to shard 0 does queue.
        let d = b.transfer(2, 1000, 0);
        assert_eq!(d, 2000 + 1000);
    }

    #[test]
    fn aggregate_stats_sum_over_shards() {
        let mut b = Sharded::new(LinkParams::instant(), 4, PlacementPolicy::Interleave);
        for k in 0..16u64 {
            b.transfer(k, 4096, 0);
        }
        b.writeback(3, 4096, 0);
        let mut manual = TransferStats::default();
        for s in 0..4 {
            manual.merge(&b.shard_stats(s));
        }
        assert_eq!(b.stats(), manual);
        assert_eq!(b.stats().fetches, 16);
        assert_eq!(b.stats().writebacks, 1);
        // Interleaved keys spread evenly: 4 fetches per shard.
        for s in 0..4 {
            assert_eq!(b.shard_stats(s).fetches, 4);
        }
    }

    #[test]
    fn one_dead_shard_leaves_the_others_serving() {
        let mut b = Sharded::new(LinkParams::tcp_25g(), 4, PlacementPolicy::Interleave);
        b.set_fault_plan_on(2, FaultPlan::drops(9, PPM)); // shard 2 always drops
        assert!(b.faults_active());
        let mut now = 0;
        for k in 0..32u64 {
            if b.shard_of(k) == 2 {
                assert!(b.try_transfer(k, 4096, now).is_err(), "shard 2 is dead");
            } else {
                now = b.try_transfer(k, 4096, now).expect("healthy shard serves");
            }
        }
        assert!(b.shard_health(2).is_degraded());
        for s in [0usize, 1, 3] {
            assert!(!b.shard_health(s).is_degraded(), "shard {s} must stay healthy");
            assert_eq!(b.shard_stats(s).faults, 0);
            assert_eq!(b.shard_stats(s).fetches, 8);
        }
        assert_eq!(b.shard_stats(2).fetches, 0);
        assert_eq!(b.shard_stats(2).faults, 8);
        // Aggregate health reflects the sick shard.
        assert!(b.health().is_degraded());
        assert_eq!(b.health().faults(), 8);
        assert_eq!(b.stats().faults, 8);
    }

    #[test]
    fn untargeted_plans_get_per_shard_seeds() {
        let faults = FaultPlan::drops(0xABCD, 500_000);
        let b = build_backend(LinkParams::tcp_25g(), BackendSpec::sharded(4), faults);
        // Reach through the snapshots: drive each shard's schedule by
        // routing keys per shard and checking the schedules differ. Cheaper:
        // the plans themselves must carry distinct seeds but identical rates.
        let sharded = b; // Box<dyn>; inspect via a fresh build instead
        drop(sharded);
        let mut direct = Sharded::new(LinkParams::tcp_25g(), 4, PlacementPolicy::Hash);
        for s in 0..4 {
            let mut plan = faults;
            if s > 0 {
                plan.seed = mix(faults.seed ^ s as u64);
            }
            direct.set_fault_plan_on(s, plan);
        }
        let seeds: Vec<u64> = (0..4).map(|s| direct.link(s).fault_plan().seed).collect();
        assert_eq!(seeds[0], faults.seed, "shard 0 keeps the seed (1-shard identity)");
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "shards must not fault in lockstep: {seeds:?}");
        for s in 0..4 {
            assert_eq!(direct.link(s).fault_plan().drop_ppm, faults.drop_ppm);
        }
    }

    #[test]
    fn targeted_fault_shard_leaves_others_flawless() {
        let faults = FaultPlan::drops(1, PPM);
        let spec = BackendSpec::sharded(4).with_fault_shard(2);
        let mut b = build_backend(LinkParams::tcp_25g(), spec, faults);
        assert!(b.faults_active());
        for k in 0..64u64 {
            let r = b.try_transfer(k, 64, 0);
            if b.shard_of(k) == 2 {
                assert!(r.is_err());
            } else {
                assert!(r.is_ok());
            }
        }
        for s in 0..4 {
            let expect_faults = s == 2;
            assert_eq!(b.shard_stats(s).faults > 0, expect_faults, "shard {s}");
        }
    }

    #[test]
    fn clone_box_preserves_state() {
        let mut b: Box<dyn RemoteBackend> =
            Box::new(Sharded::new(LinkParams::tcp_25g(), 2, PlacementPolicy::Hash));
        b.transfer(0, 4096, 0);
        let c = b.clone();
        assert_eq!(b.stats(), c.stats());
        assert_eq!(b.shard_count(), c.shard_count());
    }

    #[test]
    fn spec_display_and_validation() {
        assert_eq!(BackendSpec::single().to_string(), "single");
        let s = BackendSpec::sharded(4)
            .with_placement(PlacementPolicy::Interleave)
            .with_fault_shard(1);
        assert_eq!(s.to_string(), "sharded(4, interleave) fault_shard=1");
        assert_eq!(s.shard_count(), 4);
        assert!(!s.is_single());
        s.validate();
    }

    #[test]
    #[should_panic(expected = "fault shard")]
    fn spec_rejects_out_of_range_fault_shard() {
        BackendSpec::sharded(2).with_fault_shard(5).validate();
    }
}
