//! TrackFM pointers and object ids.
//!
//! §3.1 of the paper: TrackFM distinguishes managed pointers from everything
//! else "by overloading the higher-order bits of the address. In particular,
//! it leverages x86 non-canonical addresses. The 60th bit of the address is
//! used to flag a pointer as a TrackFM pointer." Allocations start at address
//! 2^60; the object corresponding to a pointer "can be derived by dividing
//! the TrackFM pointer by the object size (a right shift for powers of two)".

use std::fmt;

/// The non-canonical tag bit (bit 60).
pub const TFM_BIT: u64 = 1 << 60;

/// Mask extracting the far-heap byte offset from a TrackFM pointer.
pub const OFFSET_MASK: u64 = TFM_BIT - 1;

/// A TrackFM-managed (non-canonical) pointer.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TfmPtr(pub u64);

impl TfmPtr {
    /// Builds a TrackFM pointer from a far-heap byte offset.
    #[inline]
    pub fn from_offset(offset: u64) -> Self {
        debug_assert!(offset <= OFFSET_MASK);
        TfmPtr(TFM_BIT | offset)
    }

    /// The custody check (Fig. 4, line 0): is this raw address a TrackFM
    /// pointer?
    #[inline]
    pub fn is_tfm(raw: u64) -> bool {
        raw & TFM_BIT != 0
    }

    /// The far-heap byte offset this pointer refers to.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & OFFSET_MASK
    }

    /// The raw (non-canonical) address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The object this pointer falls into, for a given object-size shift.
    #[inline]
    pub fn object(self, log2_obj_size: u32) -> ObjId {
        ObjId(self.offset() >> log2_obj_size)
    }
}

impl fmt::Debug for TfmPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TfmPtr({:#x})", self.0)
    }
}

impl fmt::Display for TfmPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// An index into the object state table.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjId(pub u64);

impl ObjId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// First far-heap byte offset of this object.
    #[inline]
    pub fn start_offset(self, log2_obj_size: u32) -> u64 {
        self.0 << log2_obj_size
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_bit_is_bit_60() {
        assert_eq!(TFM_BIT, 0x1000_0000_0000_0000);
        let p = TfmPtr::from_offset(0x1234);
        assert!(TfmPtr::is_tfm(p.raw()));
        assert!(!TfmPtr::is_tfm(0x7fff_0000_1234));
        assert_eq!(p.offset(), 0x1234);
    }

    #[test]
    fn object_id_is_offset_shift() {
        // 4 KiB objects → shift 12.
        let p = TfmPtr::from_offset(3 * 4096 + 17);
        assert_eq!(p.object(12), ObjId(3));
        assert_eq!(ObjId(3).start_offset(12), 3 * 4096);
        // 64 B objects → shift 6.
        assert_eq!(p.object(6), ObjId((3 * 4096 + 17) / 64));
    }

    #[test]
    fn pointer_arithmetic_preserves_tag() {
        // §3.2: offset math must keep the non-canonical bits intact.
        let p = TfmPtr::from_offset(1000);
        let q = TfmPtr(p.raw() + 24);
        assert!(TfmPtr::is_tfm(q.raw()));
        assert_eq!(q.offset(), 1024);
        assert_eq!(q.object(10), ObjId(1));
    }

    #[test]
    fn display_formats() {
        let p = TfmPtr::from_offset(0x40);
        assert_eq!(format!("{p}"), "0x1000000000000040");
        assert_eq!(format!("{:?}", p), "TfmPtr(0x1000000000000040)");
        assert_eq!(ObjId(7).to_string(), "obj#7");
    }
}
