//! Runtime event counters.

use std::fmt;

use tfm_telemetry::{MergeStats, StatGroup};

/// Counters maintained by the far-memory runtime.
///
/// Guard-path counters (fast/slow path hits) belong to the execution engine;
/// these are the runtime-internal events: fetches, prefetch outcomes,
/// evacuations.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RuntimeStats {
    /// Synchronous (demand) remote fetches.
    pub remote_fetches: u64,
    /// Asynchronous fetches issued by the prefetcher.
    pub prefetch_issued: u64,
    /// Prefetches that completed before first use (fully hidden latency).
    pub prefetch_hits: u64,
    /// Prefetches still in flight at first use (partially hidden latency).
    pub prefetch_late: u64,
    /// Objects evacuated to the remote node.
    pub evictions: u64,
    /// Evacuations that had to write dirty data back.
    pub writebacks: u64,
    /// Times the evacuator could not reach the budget because every resident
    /// object was pinned or in flight.
    pub budget_overruns: u64,
    /// Successful allocations.
    pub allocations: u64,
    /// Frees.
    pub frees: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
    /// Link faults observed by runtime operations (each failed attempt).
    pub link_faults: u64,
    /// Retries issued after faulted attempts (localize + writeback).
    pub retries: u64,
    /// Operations that blew through the per-operation retry deadline.
    pub deadline_exceeded: u64,
    /// In-flight prefetches cancelled because their transfer faulted.
    pub prefetch_canceled: u64,
    /// Prefetches suppressed because the link was degraded.
    pub prefetch_suppressed: u64,
    /// Writebacks deferred (object kept resident+dirty) after exhausting
    /// retry attempts.
    pub writeback_deferrals: u64,
    /// Transitions into degraded mode.
    pub degradations: u64,
    /// Shards observed crashing (Up/Suspect → Down transitions).
    pub shard_downs: u64,
    /// Shard recoveries completed (ledger replayed, shard rejoined).
    pub shard_recoveries: u64,
    /// Redo-ledger objects re-synced onto recovering shards.
    pub resynced_objects: u64,
    /// Objects re-replicated off Down shards onto substitutes.
    pub re_replications: u64,
    /// Acknowledged writebacks found unrecoverable during replay (must stay
    /// zero under replication — the chaos suite pins this).
    pub lost_objects: u64,
    /// Demand misses that joined another core's pending fetch instead of
    /// issuing their own transfer (multi-core in-flight fetch table; always
    /// zero on the synchronous single-core machine).
    pub fetch_joins: u64,
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetches: {}, prefetch: {} issued / {} hit / {} late, evictions: {} ({} dirty), \
             overruns: {}, allocs: {} / frees: {}, peak resident: {} B",
            self.remote_fetches,
            self.prefetch_issued,
            self.prefetch_hits,
            self.prefetch_late,
            self.evictions,
            self.writebacks,
            self.budget_overruns,
            self.allocations,
            self.frees,
            self.peak_resident_bytes
        )?;
        if self.link_faults > 0 || self.retries > 0 || self.degradations > 0 {
            write!(
                f,
                ", link faults: {} / retries: {} / deadline misses: {}, \
                 prefetch canceled: {} / suppressed: {}, wb deferrals: {}, \
                 degradations: {}",
                self.link_faults,
                self.retries,
                self.deadline_exceeded,
                self.prefetch_canceled,
                self.prefetch_suppressed,
                self.writeback_deferrals,
                self.degradations
            )?;
        }
        if self.shard_downs > 0 || self.shard_recoveries > 0 || self.re_replications > 0 {
            write!(
                f,
                ", shard downs: {} / recoveries: {}, resynced: {} / re-replicated: {} / lost: {}",
                self.shard_downs,
                self.shard_recoveries,
                self.resynced_objects,
                self.re_replications,
                self.lost_objects
            )?;
        }
        if self.fetch_joins > 0 {
            write!(f, ", fetch joins: {}", self.fetch_joins)?;
        }
        Ok(())
    }
}

impl StatGroup for RuntimeStats {
    fn group_name(&self) -> &'static str {
        "runtime"
    }

    fn stat_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("remote_fetches", self.remote_fetches),
            ("prefetch_issued", self.prefetch_issued),
            ("prefetch_hits", self.prefetch_hits),
            ("prefetch_late", self.prefetch_late),
            ("evictions", self.evictions),
            ("writebacks", self.writebacks),
            ("budget_overruns", self.budget_overruns),
            ("allocations", self.allocations),
            ("frees", self.frees),
            ("peak_resident_bytes", self.peak_resident_bytes),
            ("link_faults", self.link_faults),
            ("retries", self.retries),
            ("deadline_exceeded", self.deadline_exceeded),
            ("prefetch_canceled", self.prefetch_canceled),
            ("prefetch_suppressed", self.prefetch_suppressed),
            ("writeback_deferrals", self.writeback_deferrals),
            ("degradations", self.degradations),
            ("shard_downs", self.shard_downs),
            ("shard_recoveries", self.shard_recoveries),
            ("resynced_objects", self.resynced_objects),
            ("re_replications", self.re_replications),
            ("lost_objects", self.lost_objects),
            ("fetch_joins", self.fetch_joins),
        ]
    }
}

impl MergeStats for RuntimeStats {
    fn merge(&mut self, other: &Self) {
        self.remote_fetches += other.remote_fetches;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_late += other.prefetch_late;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.budget_overruns += other.budget_overruns;
        self.allocations += other.allocations;
        self.frees += other.frees;
        self.peak_resident_bytes = self.peak_resident_bytes.max(other.peak_resident_bytes);
        self.link_faults += other.link_faults;
        self.retries += other.retries;
        self.deadline_exceeded += other.deadline_exceeded;
        self.prefetch_canceled += other.prefetch_canceled;
        self.prefetch_suppressed += other.prefetch_suppressed;
        self.writeback_deferrals += other.writeback_deferrals;
        self.degradations += other.degradations;
        self.shard_downs += other.shard_downs;
        self.shard_recoveries += other.shard_recoveries;
        self.resynced_objects += other.resynced_objects;
        self.re_replications += other.re_replications;
        self.lost_objects += other.lost_objects;
        self.fetch_joins += other.fetch_joins;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed_and_displays() {
        let s = RuntimeStats::default();
        assert_eq!(s.remote_fetches, 0);
        assert_eq!(s.evictions, 0);
        let text = s.to_string();
        assert!(text.contains("fetches: 0"));
        assert!(text.contains("evictions: 0"));
    }

    #[test]
    fn display_includes_every_counter() {
        // Regression: overruns/allocations/frees used to be silently
        // dropped from the Display output.
        let s = RuntimeStats {
            budget_overruns: 7,
            allocations: 8,
            frees: 9,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("overruns: 7"), "{text}");
        assert!(text.contains("allocs: 8"), "{text}");
        assert!(text.contains("frees: 9"), "{text}");
    }

    #[test]
    fn stat_fields_cover_every_display_counter() {
        let s = RuntimeStats {
            remote_fetches: 1,
            prefetch_issued: 2,
            prefetch_hits: 3,
            prefetch_late: 4,
            evictions: 5,
            writebacks: 6,
            budget_overruns: 7,
            allocations: 8,
            frees: 9,
            peak_resident_bytes: 10,
            link_faults: 11,
            retries: 12,
            deadline_exceeded: 13,
            prefetch_canceled: 14,
            prefetch_suppressed: 15,
            writeback_deferrals: 16,
            degradations: 17,
            shard_downs: 18,
            shard_recoveries: 19,
            resynced_objects: 20,
            re_replications: 21,
            lost_objects: 22,
            fetch_joins: 23,
        };
        let fields = s.stat_fields();
        assert_eq!(fields.len(), 23);
        let vals: Vec<u64> = fields.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, (1..=23).collect::<Vec<u64>>());
    }

    #[test]
    fn display_shows_fault_counters_only_when_present() {
        let clean = RuntimeStats::default().to_string();
        assert!(!clean.contains("link faults"), "{clean}");
        let faulty = RuntimeStats {
            link_faults: 3,
            retries: 2,
            writeback_deferrals: 1,
            ..Default::default()
        }
        .to_string();
        assert!(faulty.contains("link faults: 3"), "{faulty}");
        assert!(faulty.contains("retries: 2"), "{faulty}");
        assert!(faulty.contains("wb deferrals: 1"), "{faulty}");
    }

    #[test]
    fn merge_adds_counters_and_maxes_peak() {
        let mut a = RuntimeStats {
            remote_fetches: 1,
            peak_resident_bytes: 100,
            ..Default::default()
        };
        let b = RuntimeStats {
            remote_fetches: 2,
            frees: 3,
            peak_resident_bytes: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.remote_fetches, 3);
        assert_eq!(a.frees, 3);
        assert_eq!(a.peak_resident_bytes, 100, "peak is a high-water mark");
    }
}
