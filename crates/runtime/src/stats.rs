//! Runtime event counters.

use std::fmt;

/// Counters maintained by the far-memory runtime.
///
/// Guard-path counters (fast/slow path hits) belong to the execution engine;
/// these are the runtime-internal events: fetches, prefetch outcomes,
/// evacuations.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RuntimeStats {
    /// Synchronous (demand) remote fetches.
    pub remote_fetches: u64,
    /// Asynchronous fetches issued by the prefetcher.
    pub prefetch_issued: u64,
    /// Prefetches that completed before first use (fully hidden latency).
    pub prefetch_hits: u64,
    /// Prefetches still in flight at first use (partially hidden latency).
    pub prefetch_late: u64,
    /// Objects evacuated to the remote node.
    pub evictions: u64,
    /// Evacuations that had to write dirty data back.
    pub writebacks: u64,
    /// Times the evacuator could not reach the budget because every resident
    /// object was pinned or in flight.
    pub budget_overruns: u64,
    /// Successful allocations.
    pub allocations: u64,
    /// Frees.
    pub frees: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetches: {}, prefetch: {} issued / {} hit / {} late, evictions: {} ({} dirty), peak resident: {} B",
            self.remote_fetches,
            self.prefetch_issued,
            self.prefetch_hits,
            self.prefetch_late,
            self.evictions,
            self.writebacks,
            self.peak_resident_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed_and_displays() {
        let s = RuntimeStats::default();
        assert_eq!(s.remote_fetches, 0);
        assert_eq!(s.evictions, 0);
        let text = s.to_string();
        assert!(text.contains("fetches: 0"));
        assert!(text.contains("evictions: 0"));
    }
}
