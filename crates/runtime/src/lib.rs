//! # tfm-runtime — the AIFM-like far-memory object runtime
//!
//! TrackFM (ASPLOS '24) reuses the AIFM runtime as its backend, lightly
//! modified to expose the **object state table** that makes compiler-injected
//! guards cheap. This crate implements that runtime for the simulated
//! far-memory cluster:
//!
//! * [`TfmPtr`]/[`ObjId`] — non-canonical pointers (bit 60) and the
//!   pointer→object shift (§3.1–3.2);
//! * [`StateTable`] — the contiguous 8-byte-per-object metadata table whose
//!   single-load safety test powers the 14-instruction fast path (Fig. 3–4);
//! * [`RegionAllocator`] — the region allocator behind the custom `malloc`:
//!   large allocations span whole objects, small ones never straddle an
//!   object boundary;
//! * [`FarMemory`] — localization (demand fetch), CLOCK evacuation with
//!   dirty writebacks, pinning (deref scopes / chunk locality invariants),
//!   and an AIFM-style stride prefetcher issuing asynchronous fetches over a
//!   [`tfm_net::Link`].
//!
//! ## Example
//!
//! ```
//! use tfm_runtime::{FarMemory, FarMemoryConfig};
//!
//! let mut fm = FarMemory::new(FarMemoryConfig::small());
//! let ptr = fm.allocate(8192, 0).expect("allocate");
//! let obj = fm.obj_of_offset(ptr.offset());
//! assert!(fm.table().is_safe(obj)); // fresh memory is local
//!
//! fm.evacuate_all(0); // cold-start the benchmark
//! let stall = fm.localize(obj, /*write=*/false, /*now=*/0);
//! assert!(stall > 0); // demand fetch over the TCP backend
//! ```

mod alloc;
mod config;
mod far_memory;
mod ptr;
mod state;
mod stats;

pub use alloc::{AllocError, RegionAllocator};
pub use config::{FarMemoryConfig, PrefetchConfig, RetryPolicy};
pub use far_memory::FarMemory;
pub use ptr::{ObjId, TfmPtr, OFFSET_MASK, TFM_BIT};
pub use state::{StateTable, DIRTY, EVACUATING, HOT, INFLIGHT, PRESENT, SAFETY_MASK};
pub use stats::RuntimeStats;
