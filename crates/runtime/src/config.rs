//! Runtime configuration.

use tfm_net::LinkParams;

/// Prefetcher configuration.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PrefetchConfig {
    /// Master switch. When off, `tfm.prefetch` hints and chunk-stream
    /// prefetching are ignored (the Fig. 11 "no prefetch" arm).
    pub enabled: bool,
    /// How many objects ahead of the current stream position to keep in
    /// flight (AIFM's stride prefetcher look-ahead).
    pub depth: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            depth: 8,
        }
    }
}

/// Configuration of the far-memory runtime.
///
/// The two knobs the paper sweeps are [`object_size`](Self::object_size)
/// (Figs. 9/10) and the local-memory budget (the x-axis of most figures,
/// expressed as a fraction of the working set).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FarMemoryConfig {
    /// Total far-heap capacity in bytes (multiple of `object_size`).
    pub heap_size: u64,
    /// AIFM object size in bytes; power of two in `[64, 4096]` per §3.2.
    pub object_size: u64,
    /// Local-memory budget in bytes; resident objects above this trigger the
    /// evacuator.
    pub local_budget: u64,
    /// Network backend parameters (TCP for TrackFM/AIFM).
    pub link: LinkParams,
    /// Prefetcher settings.
    pub prefetch: PrefetchConfig,
}

impl FarMemoryConfig {
    /// A small default configuration: 64 MiB heap, 4 KiB objects, 16 MiB
    /// local budget, TCP backend.
    pub fn small() -> Self {
        FarMemoryConfig {
            heap_size: 64 << 20,
            object_size: 4096,
            local_budget: 16 << 20,
            link: LinkParams::tcp_25g(),
            prefetch: PrefetchConfig::default(),
        }
    }

    /// Validates invariants, panicking with a descriptive message otherwise.
    ///
    /// # Panics
    /// If the object size is not a power of two in `[64, 4096]`, or the heap
    /// size is not a multiple of the object size, or the budget is zero.
    pub fn validate(&self) {
        assert!(
            self.object_size.is_power_of_two()
                && (64..=4096).contains(&self.object_size),
            "object size must be a power of two in [64, 4096], got {}",
            self.object_size
        );
        assert!(
            self.heap_size.is_multiple_of(self.object_size) && self.heap_size > 0,
            "heap size must be a positive multiple of the object size"
        );
        assert!(self.local_budget > 0, "local budget must be positive");
    }

    /// Number of objects in the heap (= state-table entries).
    pub fn num_objects(&self) -> u64 {
        self.heap_size / self.object_size
    }

    /// log2 of the object size — the shift the guards use to derive object
    /// ids from pointers.
    pub fn log2_object_size(&self) -> u32 {
        self.object_size.trailing_zeros()
    }

    /// Returns a copy with a different object size.
    pub fn with_object_size(mut self, object_size: u64) -> Self {
        self.object_size = object_size;
        self
    }

    /// Returns a copy with a different local budget.
    pub fn with_local_budget(mut self, budget: u64) -> Self {
        self.local_budget = budget;
        self
    }

    /// Returns a copy with prefetching toggled.
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch.enabled = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        let c = FarMemoryConfig::small();
        c.validate();
        assert_eq!(c.num_objects(), (64 << 20) / 4096);
        assert_eq!(c.log2_object_size(), 12);
    }

    #[test]
    #[should_panic(expected = "object size")]
    fn rejects_non_power_of_two_objects() {
        FarMemoryConfig::small().with_object_size(3000).validate();
    }

    #[test]
    #[should_panic(expected = "object size")]
    fn rejects_tiny_objects() {
        // §3.2: below a cache line "would saturate the network with many
        // small packets".
        FarMemoryConfig::small().with_object_size(32).validate();
    }

    #[test]
    fn builder_style_updates() {
        let c = FarMemoryConfig::small()
            .with_object_size(256)
            .with_local_budget(1 << 20)
            .with_prefetch(false);
        c.validate();
        assert_eq!(c.object_size, 256);
        assert_eq!(c.local_budget, 1 << 20);
        assert!(!c.prefetch.enabled);
    }
}
