//! Runtime configuration.

use tfm_net::{BackendSpec, FaultPlan, LinkParams};

/// Retry/backoff policy the runtime applies to faulted link operations.
///
/// A faulted attempt is detected at the link's drop timeout; the runtime
/// then waits an exponentially growing backoff (`backoff_base << (attempt -
/// 1)`, capped at [`backoff_cap`](Self::backoff_cap)) before reissuing.
/// While the link is degraded (see `LinkHealth`), every backoff is
/// multiplied by [`degraded_backoff_mult`](Self::degraded_backoff_mult) to
/// shed load from a struggling fabric.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Attempts before a *deferrable* operation (writeback) gives up; a
    /// localize must succeed for correctness and keeps retrying past this.
    pub max_attempts: u32,
    /// First retry's backoff in cycles.
    pub backoff_base: u64,
    /// Upper bound on a single backoff in cycles.
    pub backoff_cap: u64,
    /// Per-operation cycle budget; operations that blow through it are
    /// counted (`deadline_exceeded`) but still driven to completion.
    pub deadline: u64,
    /// Backoff multiplier applied while the link is degraded.
    pub degraded_backoff_mult: u64,
    /// Seed of the deterministic per-attempt backoff jitter
    /// ([`backoff_jittered`](Self::backoff_jittered)); 0 disables jitter,
    /// restoring the pure exponential schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            backoff_base: 4_096,
            backoff_cap: 1 << 20,
            deadline: 8_000_000,
            degraded_backoff_mult: 4,
            jitter_seed: 0x7C15_DA39_6A1B_44E3,
        }
    }
}

/// SplitMix64 finalizer (the workspace's standard seeded mixer), local so
/// the jitter draw needs no cross-crate dependency on `tfm_net` internals.
#[inline]
fn jitter_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Backoff charged before retry number `attempt` (1-based), before the
    /// degraded multiplier.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1);
        if shift >= self.backoff_base.leading_zeros() {
            return self.backoff_cap; // doubling any further would overflow
        }
        (self.backoff_base << shift).min(self.backoff_cap)
    }

    /// [`backoff`](Self::backoff) plus a deterministic jitter drawn in
    /// `[0, backoff/4]`, keyed on `(jitter_seed, key, attempt)`. Concurrent
    /// operations against the same recovering shard spread their retries
    /// instead of re-arriving in lockstep, yet the same seed, key, and
    /// attempt always draw the same jitter — runs stay bit-identical.
    pub fn backoff_jittered(&self, attempt: u32, key: u64) -> u64 {
        let base = self.backoff(attempt);
        if self.jitter_seed == 0 {
            return base;
        }
        let h = jitter_mix(
            self.jitter_seed ^ key.wrapping_mul(0xA24B_AED4_963E_E407) ^ u64::from(attempt),
        );
        base + h % (base / 4 + 1)
    }

    /// [`backoff_jittered`](Self::backoff_jittered) with the issuing core
    /// folded into the seed: each simulated core draws an independent,
    /// deterministic retry schedule, so two cores backing off from the same
    /// shard never re-arrive in lockstep. Core 0 (and the synchronous
    /// single-core machine, which always passes 0) draws exactly the
    /// un-threaded schedule — the `cores(1)` identity gate depends on it.
    pub fn backoff_jittered_on(&self, attempt: u32, key: u64, core: u32) -> u64 {
        if core == 0 {
            return self.backoff_jittered(attempt, key);
        }
        let base = self.backoff(attempt);
        if self.jitter_seed == 0 {
            return base;
        }
        let seed = self.jitter_seed ^ jitter_mix(u64::from(core));
        let h = jitter_mix(seed ^ key.wrapping_mul(0xA24B_AED4_963E_E407) ^ u64::from(attempt));
        base + h % (base / 4 + 1)
    }
}

/// Prefetcher configuration.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PrefetchConfig {
    /// Master switch. When off, `tfm.prefetch` hints and chunk-stream
    /// prefetching are ignored (the Fig. 11 "no prefetch" arm).
    pub enabled: bool,
    /// How many objects ahead of the current stream position to keep in
    /// flight (AIFM's stride prefetcher look-ahead).
    pub depth: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            enabled: true,
            depth: 8,
        }
    }
}

/// Configuration of the far-memory runtime.
///
/// The two knobs the paper sweeps are [`object_size`](Self::object_size)
/// (Figs. 9/10) and the local-memory budget (the x-axis of most figures,
/// expressed as a fraction of the working set).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FarMemoryConfig {
    /// Total far-heap capacity in bytes (multiple of `object_size`).
    pub heap_size: u64,
    /// AIFM object size in bytes; power of two in `[64, 4096]` per §3.2.
    pub object_size: u64,
    /// Local-memory budget in bytes; resident objects above this trigger the
    /// evacuator.
    pub local_budget: u64,
    /// Network backend parameters (TCP for TrackFM/AIFM).
    pub link: LinkParams,
    /// Prefetcher settings.
    pub prefetch: PrefetchConfig,
    /// Fault-injection schedule for the link ([`FaultPlan::none`] = the
    /// flawless fabric of the paper's evaluation).
    pub faults: FaultPlan,
    /// Retry/backoff policy for faulted link operations.
    pub retry: RetryPolicy,
    /// Remote-memory topology: one node (the default) or N sharded nodes.
    pub backend: BackendSpec,
}

impl FarMemoryConfig {
    /// A small default configuration: 64 MiB heap, 4 KiB objects, 16 MiB
    /// local budget, TCP backend.
    pub fn small() -> Self {
        FarMemoryConfig {
            heap_size: 64 << 20,
            object_size: 4096,
            local_budget: 16 << 20,
            link: LinkParams::tcp_25g(),
            prefetch: PrefetchConfig::default(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            backend: BackendSpec::SingleNode,
        }
    }

    /// Validates invariants, panicking with a descriptive message otherwise.
    ///
    /// # Panics
    /// If the object size is not a power of two in `[64, 4096]`, or the heap
    /// size is not a multiple of the object size, or the budget is zero.
    pub fn validate(&self) {
        assert!(
            self.object_size.is_power_of_two() && (64..=4096).contains(&self.object_size),
            "object size must be a power of two in [64, 4096], got {}",
            self.object_size
        );
        assert!(
            self.heap_size.is_multiple_of(self.object_size) && self.heap_size > 0,
            "heap size must be a positive multiple of the object size"
        );
        assert!(self.local_budget > 0, "local budget must be positive");
        self.backend.validate().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Number of objects in the heap (= state-table entries).
    pub fn num_objects(&self) -> u64 {
        self.heap_size / self.object_size
    }

    /// log2 of the object size — the shift the guards use to derive object
    /// ids from pointers.
    pub fn log2_object_size(&self) -> u32 {
        self.object_size.trailing_zeros()
    }

    /// Returns a copy with a different object size.
    pub fn with_object_size(mut self, object_size: u64) -> Self {
        self.object_size = object_size;
        self
    }

    /// Returns a copy with a different local budget.
    pub fn with_local_budget(mut self, budget: u64) -> Self {
        self.local_budget = budget;
        self
    }

    /// Returns a copy with prefetching toggled.
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch.enabled = enabled;
        self
    }

    /// Returns a copy with a fault-injection schedule attached.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns a copy with a different remote-memory topology.
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Returns a copy sharded over `n` remote nodes (hashed placement).
    pub fn with_shards(self, n: u32) -> Self {
        self.with_backend(BackendSpec::sharded(n))
    }

    /// Returns a copy with replication factor `r` on the current backend
    /// (sharded backends only; a no-op on a single node).
    pub fn with_replicas(mut self, r: u32) -> Self {
        self.backend = self.backend.with_replicas(r);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        let c = FarMemoryConfig::small();
        c.validate();
        assert_eq!(c.num_objects(), (64 << 20) / 4096);
        assert_eq!(c.log2_object_size(), 12);
    }

    #[test]
    #[should_panic(expected = "object size")]
    fn rejects_non_power_of_two_objects() {
        FarMemoryConfig::small().with_object_size(3000).validate();
    }

    #[test]
    #[should_panic(expected = "object size")]
    fn rejects_tiny_objects() {
        // §3.2: below a cache line "would saturate the network with many
        // small packets".
        FarMemoryConfig::small().with_object_size(32).validate();
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), p.backoff_base);
        assert_eq!(p.backoff(2), 2 * p.backoff_base);
        assert_eq!(p.backoff(3), 4 * p.backoff_base);
        assert_eq!(p.backoff(60), p.backoff_cap);
        // Huge attempt numbers must not overflow the shift.
        assert_eq!(p.backoff(u32::MAX), p.backoff_cap);
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_spread() {
        let p = RetryPolicy::default();
        for attempt in 1..=20 {
            for key in [0u64, 1, 17, 0xDEAD_BEEF] {
                let a = p.backoff_jittered(attempt, key);
                let b = p.backoff_jittered(attempt, key);
                assert_eq!(a, b, "same (seed, key, attempt) ⇒ same draw");
                let base = p.backoff(attempt);
                assert!(
                    (base..=base + base / 4).contains(&a),
                    "jitter must stay within 25% of the base: {a} vs {base}"
                );
            }
        }
        // Different keys de-synchronize: across many keys the draws are not
        // all equal (that is the whole point).
        let draws: Vec<u64> = (0..64).map(|k| p.backoff_jittered(3, k)).collect();
        let mut uniq = draws.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 8, "keys retry in lockstep: {draws:?}");
        // Two policies with different seeds draw different schedules.
        let other = RetryPolicy {
            jitter_seed: 0x1234,
            ..p
        };
        assert!((0..64).any(|k| p.backoff_jittered(2, k) != other.backoff_jittered(2, k)));
    }

    #[test]
    fn core_zero_jitter_matches_the_unthreaded_schedule() {
        // The synchronous machine passes core 0 everywhere; its schedule
        // must be bit-identical to the pre-multi-core draw.
        let p = RetryPolicy::default();
        for attempt in 1..=12 {
            for key in 0..32 {
                assert_eq!(
                    p.backoff_jittered_on(attempt, key, 0),
                    p.backoff_jittered(attempt, key)
                );
            }
        }
    }

    #[test]
    fn per_core_jitter_is_deterministic_bounded_and_independent() {
        let p = RetryPolicy::default();
        for core in 1..8u32 {
            for attempt in 1..=12 {
                for key in [0u64, 3, 0xFEED] {
                    let a = p.backoff_jittered_on(attempt, key, core);
                    assert_eq!(a, p.backoff_jittered_on(attempt, key, core));
                    let base = p.backoff(attempt);
                    assert!((base..=base + base / 4).contains(&a));
                }
            }
        }
        // Distinct cores draw distinct schedules for the same (key, attempt)
        // somewhere — otherwise threading the core id bought nothing.
        assert!(
            (0..64u64).any(|k| p.backoff_jittered_on(2, k, 1) != p.backoff_jittered_on(2, k, 2))
        );
        // Zero seed still disables jitter on every core.
        let off = RetryPolicy {
            jitter_seed: 0,
            ..p
        };
        for core in 0..4 {
            assert_eq!(off.backoff_jittered_on(3, 9, core), off.backoff(3));
        }
    }

    #[test]
    fn zero_jitter_seed_disables_jitter() {
        let p = RetryPolicy {
            jitter_seed: 0,
            ..RetryPolicy::default()
        };
        for attempt in 1..=10 {
            for key in 0..32 {
                assert_eq!(p.backoff_jittered(attempt, key), p.backoff(attempt));
            }
        }
    }

    #[test]
    fn replicas_builder_updates_the_backend_spec() {
        let c = FarMemoryConfig::small().with_shards(4).with_replicas(2);
        c.validate();
        assert_eq!(c.backend.replica_count(), 2);
        // A no-op on the single-node default.
        let s = FarMemoryConfig::small().with_replicas(2);
        s.validate();
        assert!(s.backend.is_single());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn rejects_more_replicas_than_shards() {
        FarMemoryConfig::small()
            .with_shards(2)
            .with_replicas(3)
            .validate();
    }

    #[test]
    fn faults_builder_attaches_a_plan() {
        let plan = FaultPlan::drops(11, 5_000);
        let c = FarMemoryConfig::small().with_faults(plan);
        c.validate();
        assert_eq!(c.faults, plan);
        assert!(c.faults.is_active());
    }

    #[test]
    fn backend_builder_selects_sharding() {
        let c = FarMemoryConfig::small().with_shards(4);
        c.validate();
        assert_eq!(c.backend.shard_count(), 4);
        assert!(!c.backend.is_single());
        assert!(FarMemoryConfig::small().backend.is_single());
    }

    #[test]
    #[should_panic(expected = "fault shard")]
    fn rejects_fault_shard_out_of_range() {
        FarMemoryConfig::small()
            .with_backend(BackendSpec::sharded(2).with_fault_shard(7))
            .validate();
    }

    #[test]
    fn builder_style_updates() {
        let c = FarMemoryConfig::small()
            .with_object_size(256)
            .with_local_budget(1 << 20)
            .with_prefetch(false);
        c.validate();
        assert_eq!(c.object_size, 256);
        assert_eq!(c.local_budget, 1 << 20);
        assert!(!c.prefetch.enabled);
    }
}
