//! The TrackFM object state table.
//!
//! §3.2: "TrackFM eliminates one of these operations by maintaining an
//! object state table, an optimization that caches object metadata in a
//! contiguous lookup table, allowing us to perform a simple index calculation
//! rather than an indirect memory reference to derive object metadata. [...]
//! The object state table contains metadata entries (8B each) for each
//! object in the system."
//!
//! Each entry is one `u64`: status flags in the high bits, a pin count, and
//! the asynchronous-fetch ready cycle in the low bits. The compiler-injected
//! fast-path guard (Fig. 4) tests a single mask against this entry.

use crate::ptr::ObjId;

/// Object is resident in local memory.
pub const PRESENT: u64 = 1 << 63;
/// Object has local modifications not yet written back.
pub const DIRTY: u64 = 1 << 62;
/// CLOCK reference bit, set on access, cleared by the evacuator's hand.
pub const HOT: u64 = 1 << 61;
/// An asynchronous fetch (prefetch) is outstanding for this object.
pub const INFLIGHT: u64 = 1 << 60;
/// The evacuator has selected this object (kept for fidelity with AIFM's
/// metadata; the single-threaded simulator sets and clears it within one
/// collection point).
pub const EVACUATING: u64 = 1 << 59;

const PIN_SHIFT: u32 = 48;
const PIN_MASK: u64 = 0xFF << PIN_SHIFT;
const PAYLOAD_MASK: u64 = (1 << PIN_SHIFT) - 1;

/// Mask of the bits that must be *exactly* `PRESENT` for the fast path: the
/// object is local, no fetch is racing it, and the evacuator has not claimed
/// it. This is the "is object safe (localized)?" test of Fig. 4 line 6.
pub const SAFETY_MASK: u64 = PRESENT | INFLIGHT | EVACUATING;

/// The contiguous metadata table: one 8-byte entry per object.
#[derive(Clone, Debug)]
pub struct StateTable {
    entries: Vec<u64>,
}

impl StateTable {
    /// Creates a table for `num_objects` objects, all remote/clean.
    pub fn new(num_objects: u64) -> Self {
        StateTable {
            entries: vec![0; num_objects as usize],
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Table size in bytes (8 B per entry) — the overhead discussed in §3.2
    /// ("a 32 GB remote heap [...] would need 2^23 entries [...] thus
    /// consuming 64 MB for the full table").
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.entries.len() as u64 * 8
    }

    /// The raw entry.
    #[inline]
    pub fn entry(&self, o: ObjId) -> u64 {
        self.entries[o.index()]
    }

    /// The single-load fast-path test (Fig. 4): safe iff present and neither
    /// in-flight nor being evacuated.
    #[inline]
    pub fn is_safe(&self, o: ObjId) -> bool {
        self.entries[o.index()] & SAFETY_MASK == PRESENT
    }

    /// True if the object is resident.
    #[inline]
    pub fn is_present(&self, o: ObjId) -> bool {
        self.entries[o.index()] & PRESENT != 0
    }

    /// True if the object has unwritten local modifications.
    #[inline]
    pub fn is_dirty(&self, o: ObjId) -> bool {
        self.entries[o.index()] & DIRTY != 0
    }

    /// True if the CLOCK reference bit is set.
    #[inline]
    pub fn is_hot(&self, o: ObjId) -> bool {
        self.entries[o.index()] & HOT != 0
    }

    /// True if an async fetch is outstanding.
    #[inline]
    pub fn is_inflight(&self, o: ObjId) -> bool {
        self.entries[o.index()] & INFLIGHT != 0
    }

    /// Sets flag bits.
    #[inline]
    pub fn set(&mut self, o: ObjId, flags: u64) {
        self.entries[o.index()] |= flags;
    }

    /// Clears flag bits.
    #[inline]
    pub fn clear(&mut self, o: ObjId, flags: u64) {
        self.entries[o.index()] &= !flags;
    }

    /// Pin count (objects with pins are never evacuated; this is how the
    /// DerefScope / chunk locality invariant is enforced).
    #[inline]
    pub fn pins(&self, o: ObjId) -> u32 {
        ((self.entries[o.index()] & PIN_MASK) >> PIN_SHIFT) as u32
    }

    /// Increments the pin count.
    ///
    /// # Panics
    /// Panics if the 8-bit pin count would overflow.
    #[inline]
    pub fn pin(&mut self, o: ObjId) {
        let e = &mut self.entries[o.index()];
        let pins = (*e & PIN_MASK) >> PIN_SHIFT;
        assert!(pins < 0xFF, "pin count overflow on {o}");
        *e = (*e & !PIN_MASK) | ((pins + 1) << PIN_SHIFT);
    }

    /// Decrements the pin count.
    ///
    /// # Panics
    /// Panics on unpin of an unpinned object.
    #[inline]
    pub fn unpin(&mut self, o: ObjId) {
        let e = &mut self.entries[o.index()];
        let pins = (*e & PIN_MASK) >> PIN_SHIFT;
        assert!(pins > 0, "unpin of unpinned {o}");
        *e = (*e & !PIN_MASK) | ((pins - 1) << PIN_SHIFT);
    }

    /// Stores the ready-cycle payload for an in-flight fetch (low 48 bits).
    #[inline]
    pub fn set_ready_cycle(&mut self, o: ObjId, cycle: u64) {
        debug_assert!(cycle <= PAYLOAD_MASK, "simulated time overflowed 48 bits");
        let e = &mut self.entries[o.index()];
        *e = (*e & !PAYLOAD_MASK) | (cycle & PAYLOAD_MASK);
    }

    /// Reads the ready-cycle payload.
    #[inline]
    pub fn ready_cycle(&self, o: ObjId) -> u64 {
        self.entries[o.index()] & PAYLOAD_MASK
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_all_remote() {
        let t = StateTable::new(16);
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
        assert_eq!(t.size_bytes(), 128);
        for i in 0..16 {
            let o = ObjId(i);
            assert!(!t.is_present(o));
            assert!(!t.is_safe(o));
            assert_eq!(t.pins(o), 0);
        }
    }

    #[test]
    fn table_overhead_matches_paper_example() {
        // 32 GB heap / 4 KB objects = 2^23 entries = 64 MB of table.
        let t = StateTable::new((32 * (1u64 << 30)) >> 12);
        assert_eq!(t.len() as u64, 1 << 23);
        assert_eq!(t.size_bytes(), 64 << 20);
    }

    #[test]
    fn safety_requires_present_and_quiescent() {
        let mut t = StateTable::new(4);
        let o = ObjId(1);
        t.set(o, PRESENT);
        assert!(t.is_safe(o));
        t.set(o, INFLIGHT);
        assert!(!t.is_safe(o));
        t.clear(o, INFLIGHT);
        t.set(o, EVACUATING);
        assert!(!t.is_safe(o));
        t.clear(o, EVACUATING);
        assert!(t.is_safe(o));
        // Dirty/hot do not affect safety.
        t.set(o, DIRTY | HOT);
        assert!(t.is_safe(o));
    }

    #[test]
    fn pin_counting() {
        let mut t = StateTable::new(2);
        let o = ObjId(0);
        t.pin(o);
        t.pin(o);
        assert_eq!(t.pins(o), 2);
        t.unpin(o);
        assert_eq!(t.pins(o), 1);
        t.unpin(o);
        assert_eq!(t.pins(o), 0);
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned")]
    fn unpin_underflow_panics() {
        let mut t = StateTable::new(1);
        t.unpin(ObjId(0));
    }

    #[test]
    fn ready_cycle_payload_is_independent_of_flags() {
        let mut t = StateTable::new(1);
        let o = ObjId(0);
        t.set(o, INFLIGHT | DIRTY);
        t.pin(o);
        t.set_ready_cycle(o, 123_456_789);
        assert_eq!(t.ready_cycle(o), 123_456_789);
        assert!(t.is_inflight(o));
        assert!(t.is_dirty(o));
        assert_eq!(t.pins(o), 1);
        t.set_ready_cycle(o, 7);
        assert_eq!(t.ready_cycle(o), 7);
        assert_eq!(t.pins(o), 1);
    }
}
