//! The far-memory object runtime (AIFM stand-in).
//!
//! [`FarMemory`] owns the object state table, the region allocator, the
//! simulated link, and the evacuator's CLOCK. It is a *metadata* runtime:
//! object payloads live in the host process (the simulator's flat heap), so
//! localize/evict operations move bookkeeping and charge cycles/bytes rather
//! than copying data. See DESIGN.md §2 for why this preserves the paper's
//! measured quantities.
//!
//! Lifecycle of an object (matching AIFM's semantics as used in §3.2–3.3):
//!
//! * freshly allocated objects are local and dirty (they have no remote copy
//!   yet);
//! * the evacuator keeps resident bytes under the local budget, skipping
//!   pinned and in-flight objects, writing dirty victims back over the link;
//! * a slow-path guard localizes a remote object synchronously; the chunk
//!   locality-invariant guard additionally pins it for the duration of a
//!   chunk; the prefetcher localizes asynchronously, overlapping latency
//!   with execution.

use crate::alloc::{AllocError, RegionAllocator};
use crate::config::FarMemoryConfig;
use crate::ptr::{ObjId, TfmPtr};
use crate::state::{StateTable, DIRTY, HOT, INFLIGHT, PRESENT};
use crate::stats::RuntimeStats;
use std::collections::{BTreeSet, VecDeque};
use tfm_net::{
    build_backend, drive_retries, FailoverAudit, LinkFault, LinkHealth, RemoteBackend,
    ResyncOutcome, RetryOps, ShardSnapshot, ShardState, TransferStats,
};
use tfm_telemetry::{EventKind, Span, SpanId, SpanKind, Telemetry};

/// The far-memory runtime.
#[derive(Clone, Debug)]
pub struct FarMemory {
    cfg: FarMemoryConfig,
    log2_obj: u32,
    table: StateTable,
    alloc: RegionAllocator,
    backend: Box<dyn RemoteBackend>,
    clock: VecDeque<ObjId>,
    resident_bytes: u64,
    stats: RuntimeStats,
    /// AIFM's runtime stride prefetcher: a small table of concurrent
    /// streams (AIFM keeps per-data-structure prefetcher state; several
    /// interleaved scans are the common case, e.g. CSR walks).
    streams: Vec<StrideStream>,
    stream_victim: usize,
    tel: Telemetry,
    /// Per-shard mirror of the backend's degraded flags; transitions emit
    /// `Degraded`/`Recovered` events and gate the prefetcher on the
    /// affected shard only.
    degraded: Vec<bool>,
    /// Cached `backend.faults_active()`: gates the retry machinery so the
    /// flawless fabric keeps the legacy single-attempt path.
    faults_active: bool,
    /// Redo ledger: keys whose writeback has been acknowledged since the
    /// last reset. Replayed onto a recovering shard to re-sync it, and
    /// walked to drain a Down shard's objects onto substitutes. Empty (and
    /// never written) unless the backend tracks failover.
    redo: BTreeSet<u64>,
    /// Per-shard mirror of the backend's failover state machine;
    /// transitions emit `ShardDown`/`ShardRecovering`/`ShardUp` events and
    /// trigger drain/replay exactly once per edge.
    shard_states: Vec<ShardState>,
    /// Cached `backend.failover_active()`: gates the redo ledger and the
    /// failover service so untracked runs keep the legacy path
    /// bit-identical.
    failover_active: bool,
    /// The simulated core currently driving this runtime (0 on the
    /// synchronous single-core machine). Folded into the retry jitter seed
    /// so each core draws an independent deterministic backoff schedule.
    core: u32,
    /// Split issue/complete demand fetches (DESIGN.md §6h). Engaged only by
    /// the multi-core scheduler; the synchronous machine never sets it, so
    /// `cores(1)` keeps the legacy blocking path bit-identical.
    async_fetch: bool,
    /// In-flight fetch table: demand fetches issued but not yet claimed.
    /// A second core missing the same object joins the pending entry — one
    /// transfer on the wire serves both. Empty unless `async_fetch` is on.
    demand_inflight: BTreeSet<u64>,
    /// Latest delivery cycle of any fetch issued asynchronously since the
    /// scheduler last drained it: a core is charged only to the issue
    /// point, so the request's semantic completion (data actually landed)
    /// is reported out of band for latency accounting.
    completion_horizon: u64,
}

#[derive(Copy, Clone, Debug, Default)]
struct StrideStream {
    last: u64,
    dir: i64,
    run: u32,
}

/// Number of concurrent miss streams the runtime prefetcher tracks.
const STRIDE_STREAMS: usize = 8;

impl FarMemory {
    /// Creates a runtime from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`FarMemoryConfig::validate`]).
    pub fn new(cfg: FarMemoryConfig) -> Self {
        cfg.validate();
        let backend = build_backend(cfg.link, cfg.backend, cfg.faults);
        let faults_active = backend.faults_active();
        let failover_active = backend.failover_active();
        let degraded = vec![false; backend.shard_count()];
        let shard_states = vec![ShardState::Up; backend.shard_count()];
        FarMemory {
            log2_obj: cfg.log2_object_size(),
            table: StateTable::new(cfg.num_objects()),
            alloc: RegionAllocator::new(cfg.heap_size, cfg.object_size),
            backend,
            clock: VecDeque::new(),
            resident_bytes: 0,
            stats: RuntimeStats::default(),
            streams: Vec::new(),
            stream_victim: 0,
            tel: Telemetry::disabled(),
            degraded,
            faults_active,
            redo: BTreeSet::new(),
            shard_states,
            failover_active,
            core: 0,
            async_fetch: false,
            demand_inflight: BTreeSet::new(),
            completion_horizon: 0,
            cfg,
        }
    }

    /// Sets the simulated core driving subsequent operations (retry jitter
    /// is drawn per core; core 0 reproduces the single-core schedule).
    pub fn set_core(&mut self, core: u32) {
        self.core = core;
    }

    /// Switches demand fetches to the split issue/complete protocol: a miss
    /// charges the wire immediately but parks the object in the in-flight
    /// fetch table instead of blocking, and a second core missing the same
    /// object joins the pending entry. Only the multi-core scheduler turns
    /// this on — the synchronous machine keeps the blocking path.
    pub fn set_async_fetch(&mut self, on: bool) {
        self.async_fetch = on;
    }

    /// Number of demand fetches currently parked in the in-flight table.
    pub fn demand_inflight_len(&self) -> usize {
        self.demand_inflight.len()
    }

    /// Drains the completion horizon: the latest delivery cycle of any
    /// demand fetch issued asynchronously since the last call (0 if none).
    /// The multi-core scheduler folds this into per-request latency — the
    /// core moves on at the issue point, but the request is not complete
    /// until its data lands.
    pub fn take_completion_horizon(&mut self) -> u64 {
        std::mem::take(&mut self.completion_horizon)
    }

    /// Attaches a telemetry sink (shared with the backend's links):
    /// fetch/prefetch/eviction events, fetch latency, and residency
    /// lifetimes flow there.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.backend.set_telemetry(tel.clone());
        self.tel = tel;
    }

    /// The configuration.
    pub fn config(&self) -> &FarMemoryConfig {
        &self.cfg
    }

    /// Object size in bytes.
    #[inline]
    pub fn object_size(&self) -> u64 {
        self.cfg.object_size
    }

    /// log2(object size): the pointer→object shift used by guards.
    #[inline]
    pub fn log2_object_size(&self) -> u32 {
        self.log2_obj
    }

    /// The object containing a far-heap byte offset.
    #[inline]
    pub fn obj_of_offset(&self, offset: u64) -> ObjId {
        ObjId(offset >> self.log2_obj)
    }

    /// Shared access to the state table (what the fast-path guard reads).
    #[inline]
    pub fn table(&self) -> &StateTable {
        &self.table
    }

    /// Runtime counters.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Backend transfer ledger, aggregated over all shards (bytes moved —
    /// the I/O amplification metric).
    pub fn transfer_stats(&self) -> TransferStats {
        self.backend.stats()
    }

    /// Bytes currently resident locally.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// The backend-health tracker (EWMA fault rate and degraded band),
    /// aggregated over all shards.
    pub fn link_health(&self) -> LinkHealth {
        self.backend.health()
    }

    /// True while any shard runs in its degraded configuration (prefetch
    /// suppressed, backoff widened) because of sustained link faults.
    pub fn is_degraded(&self) -> bool {
        self.degraded.iter().any(|&d| d)
    }

    /// True while `shard` specifically is degraded.
    pub fn shard_degraded(&self, shard: usize) -> bool {
        self.degraded[shard]
    }

    /// Failover state of one shard (Up / Suspect / Down / Recovering).
    pub fn shard_state(&self, shard: usize) -> ShardState {
        self.backend.shard_state(shard)
    }

    /// The replica audit (acknowledged keys, losses, under-replication) —
    /// `None` on backends that do not track failover.
    pub fn failover_audit(&self) -> Option<FailoverAudit> {
        self.backend.audit()
    }

    /// Number of acknowledged writebacks in the redo ledger.
    pub fn redo_ledger_len(&self) -> usize {
        self.redo.len()
    }

    /// The remote backend (shard topology, per-shard ledgers and health).
    pub fn backend(&self) -> &dyn RemoteBackend {
        self.backend.as_ref()
    }

    /// Number of remote nodes behind the runtime.
    pub fn shard_count(&self) -> usize {
        self.backend.shard_count()
    }

    /// Per-shard end-of-run counters, for reports.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.backend.shard_snapshots()
    }

    /// Clears all counters (runtime + backend) and every shard's occupancy
    /// horizon, and rewinds the fault schedules and health state. Used by
    /// benchmarks to exclude setup traffic from the measured phase.
    pub fn reset_stats(&mut self) {
        self.stats = RuntimeStats::default();
        self.backend.reset_stats();
        self.degraded.fill(false);
        self.redo.clear();
        self.shard_states.fill(ShardState::Up);
    }

    // ------------------------------------------------------------------
    // Fault handling.
    // ------------------------------------------------------------------

    /// Reconciles the runtime's degraded flag for one shard with that
    /// shard's health tracker, emitting `Degraded`/`Recovered` transitions.
    /// With a single-node backend this is the same signal as before the
    /// backend refactor; with shards, each node degrades and recovers on
    /// its own.
    fn sync_shard_health(&mut self, shard: usize, now: u64) {
        let health = self.backend.shard_health(shard);
        self.tel.timeline_shard(
            now,
            shard as u32,
            health.fault_rate_ppm(),
            health.is_degraded(),
        );
        if health.is_degraded() != self.degraded[shard] {
            self.degraded[shard] = health.is_degraded();
            if self.degraded[shard] {
                self.stats.degradations += 1;
                self.tel
                    .emit(now, EventKind::Degraded, health.fault_rate_ppm());
            } else {
                self.tel
                    .emit(now, EventKind::Recovered, health.fault_rate_ppm());
            }
        }
    }

    /// Polls the backend's failover state machines and services any
    /// transitions since the last call: a shard that went Down has its
    /// ledger objects drained onto substitutes (re-replication), and a
    /// shard that restarted into Recovering gets the redo ledger replayed
    /// before rejoining as Up under its bumped epoch.
    fn service_failover(&mut self, now: u64) {
        if !self.failover_active {
            return;
        }
        self.backend.poll(now);
        for s in 0..self.shard_states.len() {
            let cur = self.backend.shard_state(s);
            if cur == self.shard_states[s] {
                continue;
            }
            match cur {
                ShardState::Down => {
                    self.stats.shard_downs += 1;
                    self.tel.emit(now, EventKind::ShardDown, s as u64);
                    self.drain_shard(s, now);
                }
                ShardState::Recovering => self.replay_shard(s, now),
                ShardState::Up | ShardState::Suspect => {}
            }
            // Replay may have advanced the shard past `cur` (to Up), so
            // re-read rather than store the stale observation.
            self.shard_states[s] = self.backend.shard_state(s);
        }
    }

    /// Restores replication for every redo-ledger object hosted on a Down
    /// shard by copying the acknowledged version from a surviving replica
    /// onto a substitute node. Objects are permanently re-homed — the
    /// ROADMAP-4 migration hook — so a later cold restart of the dead
    /// shard cannot strand them.
    fn drain_shard(&mut self, shard: usize, now: u64) {
        let keys: Vec<u64> = self.redo.iter().copied().collect();
        let size = self.cfg.object_size;
        for key in keys {
            if self.backend.re_replicate(key, shard, size, now).is_some() {
                self.stats.re_replications += 1;
                self.tel.emit(now, EventKind::ReReplicate, key);
            }
        }
    }

    /// Replays the redo ledger onto a restarted shard: every acknowledged
    /// object it hosts whose copy is stale (or wiped by a cold restart) is
    /// re-synced from a surviving replica, then the shard rejoins as Up.
    /// An object with no surviving replica is counted lost — the chaos
    /// suite asserts this stays zero whenever R ≥ 2.
    fn replay_shard(&mut self, shard: usize, now: u64) {
        self.tel.emit(now, EventKind::ShardRecovering, shard as u64);
        let sp = self
            .tel
            .span_begin_root(SpanKind::Recovery, shard as u64, now);
        let keys: Vec<u64> = self.redo.iter().copied().collect();
        let size = self.cfg.object_size;
        let mut end = now;
        for key in keys {
            match self.backend.resync_key(shard, key, size, now) {
                ResyncOutcome::Synced(done) => {
                    self.stats.resynced_objects += 1;
                    self.tel.emit(now, EventKind::Resync, key);
                    end = end.max(done);
                }
                ResyncOutcome::Clean => {}
                ResyncOutcome::Lost => self.stats.lost_objects += 1,
            }
        }
        self.backend.mark_synced(shard);
        self.stats.shard_recoveries += 1;
        self.tel.span_end(sp, end);
        self.tel.emit(end, EventKind::ShardUp, shard as u64);
    }

    /// Drives one backend operation to completion under the retry policy:
    /// exponential backoff between attempts (widened while the target shard
    /// is degraded) and a per-operation deadline that is counted when blown.
    ///
    /// Returns the completion cycle, or `None` when a *writeback* exhausted
    /// [`RetryPolicy::max_attempts`] — writebacks are deferrable (the object
    /// simply stays resident and dirty), fetches are not (the caller needs
    /// the data) and keep retrying until the backend delivers.
    ///
    /// [`RetryPolicy::max_attempts`]: crate::RetryPolicy::max_attempts
    fn transfer_with_retry(
        &mut self,
        key: u64,
        bytes: u64,
        now: u64,
        writeback: bool,
    ) -> Option<u64> {
        if !self.faults_active {
            // Flawless fabric: the legacy single-attempt path, bit-identical
            // to the pre-fault runtime.
            return Some(if writeback {
                self.backend.writeback(key, bytes, now)
            } else {
                self.backend.transfer(key, bytes, now)
            });
        }
        let shard = self.backend.shard_of(key);
        let deadline = now.saturating_add(self.cfg.retry.deadline);
        let mut ops = RuntimeRetry {
            fm: self,
            key,
            bytes,
            writeback,
            shard,
            deadline,
            deadline_counted: false,
        };
        let r = drive_retries(&mut ops, now)?;
        if r.attempts > 0 {
            // Penalty = detect timeouts + backoffs accumulated before the
            // attempt that finally delivered.
            self.tel.record_retry_latency(r.issued_at - now);
        }
        Some(r.done)
    }

    // ------------------------------------------------------------------
    // Allocation.
    // ------------------------------------------------------------------

    /// Allocates far memory; newly covered objects become resident and
    /// dirty. Charges eviction traffic to the link as needed.
    ///
    /// # Errors
    /// Propagates allocator failures.
    pub fn allocate(&mut self, size: u64, now: u64) -> Result<TfmPtr, AllocError> {
        let ptr = self.alloc.alloc(size)?;
        let rounded = self.alloc.size_of(ptr).expect("fresh allocation");
        let first = self.obj_of_offset(ptr.offset());
        let last = self.obj_of_offset(ptr.offset() + rounded - 1);
        for o in first.0..=last.0 {
            let o = ObjId(o);
            if !self.table.is_present(o) && !self.table.is_inflight(o) {
                self.ensure_capacity(self.cfg.object_size, now);
                self.table.set(o, PRESENT | DIRTY | HOT);
                self.resident_bytes += self.cfg.object_size;
                self.clock.push_back(o);
                self.tel.note_resident(o.0, now);
            } else {
                self.table.set(o, DIRTY | HOT);
            }
        }
        self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(self.resident_bytes);
        self.stats.allocations += 1;
        self.tel.emit(now, EventKind::Alloc, size);
        Ok(ptr)
    }

    /// Frees an allocation. Residency of the covered objects is untouched
    /// (they are reclaimed by the evacuator like any other cold object).
    ///
    /// # Panics
    /// Panics on invalid or double free.
    pub fn free(&mut self, ptr: TfmPtr, now: u64) {
        self.alloc.free(ptr);
        self.stats.frees += 1;
        self.tel.emit(now, EventKind::Free, ptr.offset());
    }

    /// The allocator (for size queries and accounting).
    pub fn allocator(&self) -> &RegionAllocator {
        &self.alloc
    }

    // ------------------------------------------------------------------
    // Guard back-ends.
    // ------------------------------------------------------------------

    /// Fast-path bookkeeping after a successful safety check: sets the CLOCK
    /// reference bit (and the dirty bit for writes). Free of simulated
    /// cycles — the guard cost is charged by the execution engine.
    #[inline]
    pub fn fast_touch(&mut self, o: ObjId, write: bool) {
        self.table.set(o, if write { HOT | DIRTY } else { HOT });
    }

    /// Slow-path localization: makes `o` resident, returning the simulated
    /// cycles the calling thread stalls (0 if the object was already
    /// resident or a prefetch had completed).
    ///
    /// Every localization also feeds AIFM's runtime stride prefetcher
    /// (§4.3: "we use AIFM's existing stride prefetcher"): after two
    /// consecutive unit-stride object localizations, the runtime keeps
    /// `prefetch.depth` objects in flight ahead of the stream — with no
    /// compiler involvement. This is what lets even naive-guarded
    /// sequential scans (e.g. CSR walks whose short inner loops the cost
    /// model declines to chunk) overlap fetch latency.
    pub fn localize(&mut self, o: ObjId, write: bool, now: u64) -> u64 {
        let size = self.cfg.object_size;
        let mark = if write { HOT | DIRTY } else { HOT };
        if self.table.is_present(o) {
            self.table.set(o, mark);
            return 0;
        }
        let stall = if self.table.is_inflight(o) {
            if self.demand_inflight.contains(&o.0) {
                // Another core's demand fetch is pending on this object.
                let ready = self.table.ready_cycle(o);
                if ready > now {
                    // Join the in-flight entry: one transfer on the wire
                    // serves both cores. The joining core also moves on at
                    // the issue point — its request completes at the shared
                    // delivery cycle, reported through the completion
                    // horizon.
                    self.stats.fetch_joins += 1;
                    self.tel.emit(now, EventKind::FetchJoin, o.0);
                    self.table.set(o, mark);
                    self.completion_horizon = self.completion_horizon.max(ready);
                    0
                } else {
                    // The fetch landed unclaimed; silent conversion.
                    self.demand_inflight.remove(&o.0);
                    self.table.clear(o, INFLIGHT);
                    self.table.set(o, PRESENT | mark);
                    0
                }
            } else {
                // A prefetch is outstanding; wait for it if it has not
                // landed.
                let ready = self.table.ready_cycle(o);
                self.table.clear(o, INFLIGHT);
                self.table.set(o, PRESENT | mark);
                if ready > now {
                    self.stats.prefetch_late += 1;
                    self.tel.emit(now, EventKind::PrefetchLate, o.0);
                    ready - now
                } else {
                    self.stats.prefetch_hits += 1;
                    self.tel.emit(now, EventKind::PrefetchHit, o.0);
                    0
                }
            }
        } else {
            // Demand fetch. A localize must succeed for correctness: it
            // retries (with backoff) until the link delivers.
            //
            // Tracing: open a DemandFetch root only when no operation span
            // is already open — under a traced guard, the transfer/retry
            // leaves attach directly to the guard root, which is the
            // decomposition the per-site latency breakdown wants.
            let sp = if self.tel.span_active() {
                SpanId::NONE
            } else {
                self.tel.span_begin_root(SpanKind::DemandFetch, o.0, now)
            };
            self.ensure_capacity(size, now);
            let done = self
                .transfer_with_retry(o.0, size, now, false)
                .expect("demand fetches retry until delivered");
            self.tel.span_end(sp, done);
            let charged = if self.async_fetch {
                // Issue/complete split: the core is charged only to the
                // issue point — queueing for the wire plus occupancy, not
                // the propagation latency. The object parks in the
                // in-flight fetch table so other cores can join it, and
                // the delivery cycle flows to the scheduler through the
                // completion horizon for per-request latency.
                self.table.set(o, INFLIGHT | mark);
                self.table.set_ready_cycle(o, done);
                self.demand_inflight.insert(o.0);
                self.completion_horizon = self.completion_horizon.max(done);
                done.saturating_sub(self.cfg.link.base_latency).max(now) - now
            } else {
                self.table.set(o, PRESENT | mark);
                done - now
            };
            self.resident_bytes += size;
            self.stats.peak_resident_bytes =
                self.stats.peak_resident_bytes.max(self.resident_bytes);
            self.clock.push_back(o);
            self.stats.remote_fetches += 1;
            if self.tel.is_enabled() {
                self.tel.emit(now, EventKind::DemandFetch, o.0);
                self.tel.record_fetch_latency(done - now);
                self.tel.note_resident(o.0, now);
                self.tel.timeline_occupancy(now, self.resident_bytes);
            }
            charged
        };
        self.stride_detect(o, now + stall);
        stall
    }

    /// Runtime stride detection: called on every slow-path localization.
    /// Matches the object against the stream table; a stream that advances
    /// by ±1 twice in a row starts prefetching `depth` objects ahead.
    fn stride_detect(&mut self, o: ObjId, now: u64) {
        let mut fire: Option<i64> = None;
        let mut matched = false;
        for st in &mut self.streams {
            let delta = o.0 as i64 - st.last as i64;
            if delta == 1 || delta == -1 {
                st.run = if delta == st.dir { st.run + 1 } else { 1 };
                st.dir = delta;
                st.last = o.0;
                if st.run >= 2 {
                    fire = Some(delta);
                }
                matched = true;
                break;
            }
        }
        if !matched {
            let fresh = StrideStream {
                last: o.0,
                dir: 0,
                run: 0,
            };
            if self.streams.len() < STRIDE_STREAMS {
                self.streams.push(fresh);
            } else {
                self.streams[self.stream_victim] = fresh;
                self.stream_victim = (self.stream_victim + 1) % STRIDE_STREAMS;
            }
        }
        if let Some(dir) = fire {
            if self.cfg.prefetch.enabled {
                let depth = self.prefetch_depth() as i64;
                let max_obj = self.cfg.num_objects() as i64;
                for k in 1..=depth {
                    let t = o.0 as i64 + k * dir;
                    if t < 0 || t >= max_obj {
                        break;
                    }
                    self.prefetch(ObjId(t as u64), now);
                }
            }
        }
    }

    /// Issues an asynchronous fetch for `o` if it is neither resident nor in
    /// flight. Returns true if a fetch was issued.
    ///
    /// Prefetches are pure optimization, so they get no retry budget: a
    /// faulted attempt cancels the prefetch (the stream falls back to demand
    /// fetching) instead of wedging it in flight, and a degraded shard
    /// suppresses prefetching onto it until recovery — healthy shards keep
    /// prefetching.
    pub fn prefetch(&mut self, o: ObjId, now: u64) -> bool {
        if !self.cfg.prefetch.enabled
            || o.index() >= self.table.len()
            || self.table.is_present(o)
            || self.table.is_inflight(o)
        {
            return false;
        }
        let shard = self.backend.shard_of(o.0);
        if self.degraded[shard] {
            self.stats.prefetch_suppressed += 1;
            return false;
        }
        let size = self.cfg.object_size;
        self.ensure_capacity(size, now);
        // Prefetch lifetime extends past the triggering access, so it gets
        // its own root span rather than nesting under the open guard span.
        let sp = self.tel.span_begin_root(SpanKind::Prefetch, o.0, now);
        let ready = if self.faults_active {
            let res = self.backend.try_transfer(o.0, size, now);
            self.sync_shard_health(shard, now);
            self.service_failover(now);
            match res {
                Ok(r) => r,
                Err(f) => {
                    self.stats.link_faults += 1;
                    self.stats.prefetch_canceled += 1;
                    // The canceled attempt still burned cycles on the wire;
                    // keep the span (its transfer leaf carries the fault).
                    self.tel.span_end(sp, f.detected_at);
                    return false;
                }
            }
        } else {
            self.backend.transfer(o.0, size, now)
        };
        self.tel.span_end(sp, ready);
        self.table.set(o, INFLIGHT);
        self.table.set_ready_cycle(o, ready);
        self.resident_bytes += size;
        self.stats.peak_resident_bytes = self.stats.peak_resident_bytes.max(self.resident_bytes);
        self.clock.push_back(o);
        self.stats.prefetch_issued += 1;
        if self.tel.is_enabled() {
            self.tel.emit(now, EventKind::PrefetchIssue, o.0);
            self.tel.note_resident(o.0, now);
        }
        true
    }

    /// Effective prefetcher look-ahead depth (0 when disabled). Capped at a
    /// quarter of the local budget so aggressive look-ahead cannot evict the
    /// very objects the application is using (tiny-budget thrash).
    pub fn prefetch_depth(&self) -> u32 {
        if !self.cfg.prefetch.enabled {
            return 0;
        }
        let budget_objs = (self.cfg.local_budget / self.cfg.object_size / 4).max(1);
        self.cfg.prefetch.depth.min(budget_objs as u32)
    }

    /// Pins an object (chunk locality invariant / deref scope): the
    /// evacuator will skip it.
    #[inline]
    pub fn pin(&mut self, o: ObjId) {
        self.table.pin(o);
    }

    /// Releases a pin.
    #[inline]
    pub fn unpin(&mut self, o: ObjId) {
        self.table.unpin(o);
    }

    /// A collection point (§3.3: the slow-path guard "triggers a periodic
    /// collection point to allow stale objects to be evacuated"): brings
    /// residency back under budget.
    pub fn collection_point(&mut self, now: u64) {
        self.ensure_capacity(0, now);
    }

    /// Evicts cold objects until `resident + incoming ≤ budget`, or until
    /// only pinned/in-flight objects remain (then records a budget overrun).
    fn ensure_capacity(&mut self, incoming: u64, now: u64) {
        let budget = self.cfg.local_budget;
        if self.resident_bytes + incoming <= budget {
            return;
        }
        // Bound the scan: each entry gets at most two visits per call (one
        // to strip its HOT bit, one to evict).
        let mut visits = self.clock.len().saturating_mul(2) + 1;
        while self.resident_bytes + incoming > budget && visits > 0 {
            visits -= 1;
            let Some(o) = self.clock.pop_front() else {
                break;
            };
            let e = self.table.entry(o);
            if e & (PRESENT | INFLIGHT) == 0 {
                continue; // stale queue entry
            }
            self.claim_landed_fetch(o, now);
            let e = self.table.entry(o);
            if self.table.pins(o) > 0 || e & INFLIGHT != 0 {
                self.clock.push_back(o);
                continue;
            }
            if e & HOT != 0 {
                self.table.clear(o, HOT);
                self.clock.push_back(o);
                continue;
            }
            // Evict.
            if e & DIRTY != 0 {
                // Writebacks are asynchronous (fire-and-forget): root span,
                // not a child of whatever operation forced the eviction.
                let sp = self.tel.span_begin_root(SpanKind::WritebackOp, o.0, now);
                match self.transfer_with_retry(o.0, self.cfg.object_size, now, true) {
                    None => {
                        // Writeback exhausted its retry budget: defer it. The
                        // object stays resident and dirty (degrading toward
                        // local-only operation) and is requeued for a later
                        // attempt.
                        self.tel.span_end(sp, now);
                        self.stats.writeback_deferrals += 1;
                        self.clock.push_back(o);
                        continue;
                    }
                    Some(done) => self.tel.span_end(sp, done),
                }
                self.stats.writebacks += 1;
                self.tel.emit(now, EventKind::Writeback, o.0);
                if self.failover_active {
                    // The writeback is acknowledged: ledger it for replay
                    // onto a recovering shard.
                    self.redo.insert(o.0);
                }
            }
            self.table.clear(o, PRESENT | DIRTY | HOT);
            self.resident_bytes -= self.cfg.object_size;
            self.stats.evictions += 1;
            if self.tel.is_enabled() {
                self.tel.emit(now, EventKind::Eviction, o.0);
                self.tel.note_evicted(o.0, now);
            }
        }
        if self.resident_bytes + incoming > budget {
            self.stats.budget_overruns += 1;
        }
    }

    /// Converts a completed-but-unclaimed demand fetch back to `PRESENT`
    /// under the evacuator's scan: the data landed at `ready_cycle` but no
    /// core has touched the object since, so it is evictable like any other
    /// resident object. No-op unless the in-flight fetch table holds it.
    fn claim_landed_fetch(&mut self, o: ObjId, now: u64) {
        if !self.demand_inflight.contains(&o.0) || self.table.ready_cycle(o) > now {
            return;
        }
        self.demand_inflight.remove(&o.0);
        self.table.clear(o, INFLIGHT);
        self.table.set(o, PRESENT);
    }

    /// Evacuates every resident, unpinned object (writing dirty ones back).
    /// Benchmarks call this after setup to start from a cold far-memory
    /// state, then [`FarMemory::reset_stats`].
    pub fn evacuate_all(&mut self, now: u64) {
        let mut visits = self.clock.len().saturating_mul(2) + 1;
        while visits > 0 {
            visits -= 1;
            let Some(o) = self.clock.pop_front() else {
                break;
            };
            let e = self.table.entry(o);
            if e & (PRESENT | INFLIGHT) == 0 {
                continue;
            }
            self.claim_landed_fetch(o, now);
            let e = self.table.entry(o);
            if self.table.pins(o) > 0 || e & INFLIGHT != 0 {
                self.clock.push_back(o);
                continue;
            }
            if e & DIRTY != 0 {
                let sp = self.tel.span_begin_root(SpanKind::WritebackOp, o.0, now);
                match self.transfer_with_retry(o.0, self.cfg.object_size, now, true) {
                    None => {
                        self.tel.span_end(sp, now);
                        self.stats.writeback_deferrals += 1;
                        self.clock.push_back(o);
                        continue;
                    }
                    Some(done) => self.tel.span_end(sp, done),
                }
                self.stats.writebacks += 1;
                self.tel.emit(now, EventKind::Writeback, o.0);
                if self.failover_active {
                    // The writeback is acknowledged: ledger it for replay
                    // onto a recovering shard.
                    self.redo.insert(o.0);
                }
            }
            self.table.clear(o, PRESENT | DIRTY | HOT);
            self.resident_bytes -= self.cfg.object_size;
            self.stats.evictions += 1;
            if self.tel.is_enabled() {
                self.tel.emit(now, EventKind::Eviction, o.0);
                self.tel.note_evicted(o.0, now);
            }
        }
    }
}

/// [`RetryOps`] adapter driving one backend operation for the runtime. It
/// owns every per-attempt side effect — stats, events, spans, health and
/// failover polling — so the shared [`drive_retries`] loop stays
/// attempt-for-attempt identical to the pre-refactor in-place loop.
struct RuntimeRetry<'a> {
    fm: &'a mut FarMemory,
    key: u64,
    bytes: u64,
    writeback: bool,
    shard: usize,
    deadline: u64,
    deadline_counted: bool,
}

impl RetryOps for RuntimeRetry<'_> {
    fn issue(&mut self, at: u64, _attempts: u32) -> Result<u64, LinkFault> {
        let res = if self.writeback {
            self.fm.backend.try_writeback(self.key, self.bytes, at)
        } else {
            self.fm.backend.try_transfer(self.key, self.bytes, at)
        };
        // Every attempt — delivered or faulted — feeds the health tracker
        // and advances the failover state machines.
        self.fm.sync_shard_health(self.shard, at);
        self.fm.service_failover(at);
        res
    }

    fn on_fault(&mut self, attempts: u32, f: LinkFault) -> Option<u64> {
        let fm = &mut *self.fm;
        fm.stats.link_faults += 1;
        let pol = fm.cfg.retry;
        if self.writeback && attempts >= pol.max_attempts {
            return None;
        }
        let mut backoff = pol.backoff_jittered_on(attempts, self.key, fm.core);
        if fm.degraded[self.shard] {
            backoff = backoff.saturating_mul(pol.degraded_backoff_mult);
        }
        let at = f.detected_at + backoff;
        fm.stats.retries += 1;
        fm.tel
            .emit(f.detected_at, EventKind::Retry, attempts as u64);
        // The retry interval: fault detection through the end of the
        // backoff wait, after which the next attempt issues.
        fm.tel.span_leaf(Span {
            kind: SpanKind::Retry,
            start: f.detected_at,
            end: at,
            parent: Span::NO_PARENT,
            arg: attempts as u64,
            wait: backoff,
            shard: self.shard as u32,
            fault: f.kind.code() as u32,
            core: Span::NO_CORE,
        });
        if !self.deadline_counted && at > self.deadline {
            fm.stats.deadline_exceeded += 1;
            self.deadline_counted = true;
        }
        Some(at)
    }

    fn describe_dead(&self, attempts: u32) -> String {
        format!(
            "shard {} permanently dead: {} consecutive faults on one operation",
            self.shard, attempts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_net::LinkParams;

    fn fm_with(budget_objs: u64) -> FarMemory {
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: budget_objs * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        };
        FarMemory::new(cfg)
    }

    #[test]
    fn fresh_allocations_are_local_and_dirty() {
        let mut fm = fm_with(16);
        let p = fm.allocate(10_000, 0).unwrap();
        let first = fm.obj_of_offset(p.offset());
        assert!(fm.table().is_present(first));
        assert!(fm.table().is_dirty(first));
        assert_eq!(fm.resident_bytes(), 3 * 4096); // 10_000 → 3 objects
        assert_eq!(fm.stats().allocations, 1);
    }

    #[test]
    fn allocation_beyond_budget_triggers_eviction_with_writeback() {
        let mut fm = fm_with(2);
        let mut ptrs = Vec::new();
        for _ in 0..4 {
            ptrs.push(fm.allocate(4096, 0).unwrap());
        }
        assert!(fm.resident_bytes() <= 2 * 4096 + 4096); // budget honored per alloc
        assert!(fm.stats().evictions >= 2);
        // Evicted fresh objects are dirty → must be written back.
        assert_eq!(fm.stats().writebacks, fm.stats().evictions);
        assert!(fm.transfer_stats().bytes_written_back > 0);
    }

    #[test]
    fn localize_charges_link_latency_then_fast() {
        let mut fm = fm_with(8);
        let p = fm.allocate(4096, 0).unwrap();
        let o = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        assert!(!fm.table().is_present(o));
        fm.reset_stats();

        let stall = fm.localize(o, false, 0);
        assert!(stall > 30_000, "remote fetch should cost ~35K cycles");
        assert_eq!(fm.stats().remote_fetches, 1);
        assert!(fm.table().is_safe(o));
        // Second access: already present, no cost.
        assert_eq!(fm.localize(o, false, stall), 0);
        assert_eq!(fm.stats().remote_fetches, 1);
    }

    #[test]
    fn write_localize_marks_dirty_eviction_writes_back() {
        let mut fm = fm_with(1);
        let p1 = fm.allocate(4096, 0).unwrap();
        let p2 = fm.allocate(4096, 0).unwrap();
        let (o1, o2) = (fm.obj_of_offset(p1.offset()), fm.obj_of_offset(p2.offset()));
        fm.evacuate_all(0);
        fm.reset_stats();

        fm.localize(o1, true, 0);
        assert!(fm.table().is_dirty(o1));
        // Bringing in o2 with budget=1 must evict dirty o1 → writeback.
        fm.localize(o2, false, 100_000);
        assert!(!fm.table().is_present(o1));
        assert_eq!(fm.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_skips_writeback() {
        let mut fm = fm_with(1);
        let p1 = fm.allocate(4096, 0).unwrap();
        let p2 = fm.allocate(4096, 0).unwrap();
        let (o1, o2) = (fm.obj_of_offset(p1.offset()), fm.obj_of_offset(p2.offset()));
        fm.evacuate_all(0);
        fm.reset_stats();
        fm.localize(o1, false, 0); // clean read
        fm.localize(o2, false, 100_000);
        assert_eq!(fm.stats().evictions, 1);
        assert_eq!(fm.stats().writebacks, 0);
    }

    #[test]
    fn pinned_objects_survive_pressure() {
        let mut fm = fm_with(1);
        let p1 = fm.allocate(4096, 0).unwrap();
        let p2 = fm.allocate(4096, 0).unwrap();
        let (o1, o2) = (fm.obj_of_offset(p1.offset()), fm.obj_of_offset(p2.offset()));
        fm.evacuate_all(0);
        fm.reset_stats();
        fm.localize(o1, false, 0);
        fm.pin(o1);
        fm.localize(o2, false, 100_000);
        assert!(
            fm.table().is_present(o1),
            "pinned object must not be evicted"
        );
        assert!(fm.stats().budget_overruns > 0);
        fm.unpin(o1);
        fm.collection_point(200_000);
        assert!(fm.resident_bytes() <= 4096);
    }

    #[test]
    fn prefetch_hides_latency_when_early() {
        let mut fm = fm_with(8);
        let p = fm.allocate(4096, 0).unwrap();
        let o = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        fm.reset_stats();

        assert!(fm.prefetch(o, 0));
        assert!(fm.table().is_inflight(o));
        assert!(!fm.table().is_safe(o));
        // Access long after the fetch completed: free.
        let stall = fm.localize(o, false, 1_000_000);
        assert_eq!(stall, 0);
        assert_eq!(fm.stats().prefetch_hits, 1);
        assert_eq!(fm.stats().remote_fetches, 0);
    }

    #[test]
    fn late_prefetch_charges_partial_stall() {
        let mut fm = fm_with(8);
        let p = fm.allocate(4096, 0).unwrap();
        let o = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        fm.reset_stats();
        assert!(fm.prefetch(o, 0));
        // Access after 10K cycles; fetch needs ~35K → stall ~25K.
        let stall = fm.localize(o, false, 10_000);
        assert!(stall > 0 && stall < 35_000, "stall = {stall}");
        assert_eq!(fm.stats().prefetch_late, 1);
    }

    #[test]
    fn duplicate_prefetch_is_refused() {
        let mut fm = fm_with(8);
        let p = fm.allocate(4096, 0).unwrap();
        let o = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        assert!(fm.prefetch(o, 0));
        assert!(!fm.prefetch(o, 0), "already in flight");
        fm.localize(o, false, 1_000_000);
        assert!(!fm.prefetch(o, 1_000_000), "already present");
    }

    #[test]
    fn prefetch_disabled_is_noop() {
        let cfg = FarMemoryConfig::small().with_prefetch(false);
        let mut fm = FarMemory::new(cfg);
        let p = fm.allocate(4096, 0).unwrap();
        let o = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        assert!(!fm.prefetch(o, 0));
        assert_eq!(fm.prefetch_depth(), 0);
    }

    #[test]
    fn free_then_realloc_reuses_space() {
        let mut fm = fm_with(16);
        let p = fm.allocate(64, 0).unwrap();
        fm.free(p, 0);
        let q = fm.allocate(64, 0).unwrap();
        assert_eq!(p.offset(), q.offset());
        assert_eq!(fm.stats().frees, 1);
    }

    #[test]
    fn evacuator_skips_inflight_objects() {
        let mut fm = fm_with(2);
        let p = fm.allocate(4 * 4096, 0).unwrap();
        let o0 = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        fm.reset_stats();
        // Prefetch two objects (fills the budget), then demand-fetch a third:
        // the in-flight ones must not be evicted mid-transfer.
        assert!(fm.prefetch(o0, 0));
        assert!(fm.prefetch(ObjId(o0.0 + 1), 0));
        let _ = fm.localize(ObjId(o0.0 + 2), false, 10);
        assert!(
            fm.table().is_inflight(o0) || fm.table().is_present(o0),
            "in-flight prefetch must survive pressure"
        );
        // Once landed, they are evictable again.
        let _ = fm.localize(o0, false, 10_000_000);
        fm.collection_point(10_000_001);
        assert!(fm.resident_bytes() <= fm.config().local_budget + 4096);
    }

    #[test]
    fn stride_prefetcher_detects_interleaved_streams() {
        let mut fm = fm_with(64);
        let p = fm.allocate(64 * 4096, 0).unwrap();
        let base = fm.obj_of_offset(p.offset()).0;
        fm.evacuate_all(0);
        fm.reset_stats();
        // Two interleaved ascending miss streams (the CSR pattern).
        let mut now = 0;
        for k in 0..4u64 {
            now += fm.localize(ObjId(base + k), false, now);
            now += fm.localize(ObjId(base + 32 + k), false, now);
        }
        let s = fm.stats();
        assert!(
            s.prefetch_issued > 0,
            "multi-stream detector must fire on interleaved scans: {s}"
        );
    }

    #[test]
    fn prefetch_depth_is_budget_capped() {
        let fm = fm_with(4); // 4-object budget
        assert!(
            fm.prefetch_depth() <= 1,
            "depth must shrink with the budget"
        );
        let roomy = FarMemory::new(FarMemoryConfig {
            heap_size: 1 << 20,
            local_budget: 256 * 4096,
            object_size: 4096,
            link: tfm_net::LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        });
        assert_eq!(roomy.prefetch_depth(), 8);
    }

    #[test]
    fn peak_resident_tracks_every_residency_increase() {
        // Regression: the high-water mark must be updated on all three
        // residency-increase paths — allocate, demand localize, prefetch.
        // Allocation path.
        let mut fm = fm_with(16);
        let p = fm.allocate(3 * 4096, 0).unwrap();
        assert_eq!(fm.stats().peak_resident_bytes, 3 * 4096);

        // Demand-localize path: evacuate, then fetch objects back one by
        // one; the peak must follow the refill.
        let o = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        fm.reset_stats();
        assert_eq!(fm.stats().peak_resident_bytes, 0);
        fm.localize(o, false, 0);
        assert_eq!(fm.stats().peak_resident_bytes, 4096);
        fm.localize(ObjId(o.0 + 1), false, 100_000);
        assert_eq!(fm.stats().peak_resident_bytes, 2 * 4096);

        // Prefetch path: in-flight bytes count against residency and the
        // peak immediately.
        fm.evacuate_all(200_000);
        fm.reset_stats();
        assert!(fm.prefetch(o, 200_000));
        assert_eq!(fm.stats().peak_resident_bytes, 4096);

        // The peak never decreases on eviction.
        fm.localize(o, false, 10_000_000);
        fm.evacuate_all(10_000_000);
        assert_eq!(fm.resident_bytes(), 0);
        assert_eq!(fm.stats().peak_resident_bytes, 4096);
    }

    #[test]
    fn telemetry_sees_fetch_eviction_and_residency() {
        use tfm_telemetry::{EventKind, Telemetry};
        let mut fm = fm_with(8);
        let tel = Telemetry::enabled();
        fm.set_telemetry(tel.clone());
        let p = fm.allocate(2 * 4096, 0).unwrap();
        let o = fm.obj_of_offset(p.offset());
        fm.evacuate_all(1_000);
        let stall = fm.localize(o, false, 2_000);
        assert!(stall > 0);
        fm.evacuate_all(500_000);

        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.count(EventKind::Alloc), 1);
        assert_eq!(snap.count(EventKind::DemandFetch), 1);
        // 2 allocated objects evicted cold, then the re-fetched one again.
        assert_eq!(snap.count(EventKind::Eviction), 3);
        assert!(
            snap.count(EventKind::Writeback) >= 2,
            "fresh objects are dirty"
        );
        assert_eq!(snap.fetch_latency.count(), 1);
        assert!(snap.fetch_latency.max() > 30_000);
        // Residency lifetimes: all three evictions had a matching
        // note_resident.
        assert_eq!(snap.residency.count(), 3);
        // The link recorded transfer sizes (fetch + writebacks).
        assert!(snap.transfer_bytes.count() >= 3);
        assert_eq!(snap.transfer_bytes.max(), 4096);
    }

    #[test]
    fn localize_retries_through_drops_until_delivered() {
        use tfm_net::FaultPlan;
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 16 * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        }
        .with_faults(FaultPlan::drops(0xBAD, 500_000)); // 50% drops
        let mut fm = FarMemory::new(cfg);
        let tel = tfm_telemetry::Telemetry::enabled();
        fm.set_telemetry(tel.clone());
        let p = fm.allocate(8 * 4096, 0).unwrap();
        let base = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0);
        fm.reset_stats();

        let mut now = 0;
        for k in 0..8u64 {
            now += fm.localize(ObjId(base.0 + k), false, now);
            assert!(fm.table().is_present(ObjId(base.0 + k)));
        }
        let s = fm.stats();
        assert_eq!(s.remote_fetches + s.prefetch_issued, 8);
        assert!(s.link_faults > 0, "a 50% plan must fault: {s}");
        assert!(s.retries > 0, "demand faults are retried: {s}");
        // Faults either became retries (demand path) or prefetch cancels.
        assert_eq!(s.link_faults, s.retries + s.prefetch_canceled, "{s}");
        let snap = tel.snapshot().unwrap();
        assert!(snap.retry_latency.count() > 0, "retry penalty recorded");
        assert!(snap.count(tfm_telemetry::EventKind::Retry) > 0);
        assert!(snap.count(tfm_telemetry::EventKind::FaultInjected) > 0);
    }

    #[test]
    fn fault_schedule_is_reproducible_across_runs() {
        use tfm_net::FaultPlan;
        let run = || {
            let cfg = FarMemoryConfig {
                heap_size: 1 << 20,
                object_size: 4096,
                local_budget: 4 * 4096,
                link: LinkParams::tcp_25g(),
                ..FarMemoryConfig::small()
            }
            .with_faults(FaultPlan::drops(0x5EED, 100_000).with_jitter(100_000, 9_000));
            let mut fm = FarMemory::new(cfg);
            let p = fm.allocate(16 * 4096, 0).unwrap();
            let base = fm.obj_of_offset(p.offset());
            fm.evacuate_all(0);
            fm.reset_stats();
            let mut now = 0;
            for k in 0..16u64 {
                now += fm.localize(ObjId(base.0 + k), true, now);
            }
            fm.evacuate_all(now);
            (*fm.stats(), fm.transfer_stats(), now)
        };
        assert_eq!(run(), run(), "identical seeds, identical everything");
    }

    #[test]
    fn dead_link_defers_writebacks_instead_of_wedging() {
        use tfm_net::{FaultPlan, PPM};
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 4096, // one-object budget forces eviction
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        }
        .with_faults(FaultPlan::drops(7, PPM)); // every attempt drops
        let mut fm = FarMemory::new(cfg);
        // Two fresh (dirty) objects: evicting the first needs a writeback,
        // which can never succeed — it must defer, not loop forever.
        let _ = fm.allocate(4096, 0).unwrap();
        let p2 = fm.allocate(4096, 0).unwrap();
        let s = fm.stats();
        assert!(s.writeback_deferrals > 0, "{s}");
        assert_eq!(s.writebacks, 0, "no writeback can complete");
        assert!(s.budget_overruns > 0, "deferral leaves us over budget");
        // Both objects are still resident and dirty — degraded to local.
        let o2 = fm.obj_of_offset(p2.offset());
        assert!(fm.table().is_present(o2) && fm.table().is_dirty(o2));
        assert_eq!(fm.resident_bytes(), 2 * 4096);
    }

    #[test]
    fn outage_degrades_runtime_then_recovery_restores_prefetch() {
        use tfm_net::FaultPlan;
        use tfm_telemetry::{EventKind, Telemetry};
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 64 * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        }
        .with_faults(FaultPlan::none().with_outage(1_000_000, 1_500_000));
        let mut fm = FarMemory::new(cfg);
        let tel = Telemetry::enabled();
        fm.set_telemetry(tel.clone());
        let p = fm.allocate(64 * 4096, 0).unwrap();
        let base = fm.obj_of_offset(p.offset());
        fm.evacuate_all(0); // before the outage: all writebacks succeed
        fm.reset_stats();

        // A demand fetch inside the outage retries its way through the
        // window; sustained failures flip the runtime to degraded.
        let mut now = 1_000_000;
        let stall = fm.localize(base, false, now);
        assert!(fm.table().is_present(base), "localize must still succeed");
        assert!(fm.is_degraded(), "outage must degrade the runtime");
        assert!(fm.stats().deadline_exceeded <= 1);
        assert!(!fm.prefetch(ObjId(base.0 + 40), now + stall));
        assert!(fm.stats().prefetch_suppressed > 0);
        now += stall;
        assert!(now >= 1_500_000, "completion lands after the window");

        // Clean traffic after the window decays the EWMA: recovery.
        for k in 1..32u64 {
            now += fm.localize(ObjId(base.0 + k), false, now);
        }
        assert!(!fm.is_degraded(), "clean link must recover");
        assert_eq!(fm.stats().degradations, 1);
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.count(EventKind::Degraded), 1);
        assert_eq!(snap.count(EventKind::Recovered), 1);
        // After recovery the prefetcher works again.
        assert!(fm.prefetch(ObjId(base.0 + 200), now));
    }

    #[test]
    fn sharded_outage_degrades_only_the_sick_shard() {
        use tfm_net::{BackendSpec, FaultPlan, PlacementPolicy};
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 64 * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        }
        .with_backend(
            BackendSpec::sharded(4)
                .with_placement(PlacementPolicy::Interleave)
                .with_fault_shard(2),
        )
        .with_faults(FaultPlan::none().with_outage(1_000_000, 1_500_000));
        let mut fm = FarMemory::new(cfg);
        assert_eq!(fm.shard_count(), 4);
        let p = fm.allocate(32 * 4096, 0).unwrap();
        let base = fm.obj_of_offset(p.offset());
        assert_eq!(base.0, 0, "interleave test assumes objects start at 0");
        fm.evacuate_all(0); // before the outage: all writebacks succeed
        fm.reset_stats();

        // Objects on healthy shards fetch cleanly inside the window…
        let mut now = 1_000_000;
        for o in [0u64, 1, 3] {
            let stall = fm.localize(ObjId(o), false, now);
            assert!(stall < 100_000, "shard {o} is healthy, stall = {stall}");
            now += stall;
        }
        assert!(!fm.is_degraded(), "healthy shards must not degrade");
        // …while the shard-2 fetch retries its way through the outage and
        // degrades that shard alone.
        let stall = fm.localize(ObjId(2), false, now);
        assert!(fm.table().is_present(ObjId(2)));
        assert!(fm.shard_degraded(2), "shard 2 rode through an outage");
        for s in [0usize, 1, 3] {
            assert!(!fm.shard_degraded(s), "shard {s} stays healthy");
        }
        assert!(fm.is_degraded(), "any sick shard degrades the aggregate");
        assert_eq!(fm.stats().degradations, 1);

        // Prefetch is suppressed onto the sick shard only. (Objects 13/14
        // sit outside the stride volley localize(2) already fired.)
        now += stall;
        let suppressed = fm.stats().prefetch_suppressed;
        assert!(suppressed > 0, "the stride volley already hit shard 2");
        assert!(!fm.prefetch(ObjId(14), now), "routes to degraded shard 2");
        assert_eq!(fm.stats().prefetch_suppressed, suppressed + 1);
        assert!(fm.prefetch(ObjId(13), now), "shard 1 keeps prefetching");

        // Only shard 2's counters show faults, and clean traffic after the
        // window recovers it.
        let snaps = fm.shard_snapshots();
        assert!(snaps[2].stats.faults > 0);
        for s in [0usize, 1, 3] {
            assert_eq!(snaps[s].stats.faults, 0, "shard {s} saw no faults");
        }
        for k in 1..40u64 {
            now += fm.localize(ObjId(2 + 4 * k), false, now.max(1_500_000));
        }
        assert!(!fm.is_degraded(), "shard 2 recovers after the window");
    }

    #[test]
    fn sharded_single_shard_matches_single_node_costs() {
        use tfm_net::BackendSpec;
        let run = |backend: BackendSpec| {
            let cfg = FarMemoryConfig {
                heap_size: 1 << 20,
                object_size: 4096,
                local_budget: 8 * 4096,
                link: LinkParams::tcp_25g(),
                ..FarMemoryConfig::small()
            }
            .with_backend(backend);
            let mut fm = FarMemory::new(cfg);
            let p = fm.allocate(32 * 4096, 0).unwrap();
            let base = fm.obj_of_offset(p.offset());
            fm.evacuate_all(0);
            fm.reset_stats();
            let mut now = 0;
            for k in 0..32u64 {
                now += fm.localize(ObjId(base.0 + k), true, now);
            }
            fm.evacuate_all(now);
            (*fm.stats(), fm.transfer_stats(), now)
        };
        assert_eq!(
            run(BackendSpec::single()),
            run(BackendSpec::sharded(1)),
            "one shard must be cost-identical to the single-node backend"
        );
    }

    #[test]
    fn observed_crash_drains_the_shard_then_recovery_rejoins_it() {
        use tfm_net::{BackendSpec, FaultPlan, PlacementPolicy, ShardState};
        use tfm_telemetry::{EventKind, Telemetry};
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 4 * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        }
        .with_backend(
            BackendSpec::sharded(4)
                .with_placement(PlacementPolicy::Interleave)
                .with_replicas(2)
                .with_fault_shard(2),
        )
        .with_faults(FaultPlan::none().with_cold_crash(1_000_000, 2_000_000));
        let mut fm = FarMemory::new(cfg);
        let tel = Telemetry::enabled();
        fm.set_telemetry(tel.clone());
        let p = fm.allocate(32 * 4096, 0).unwrap();
        let base = fm.obj_of_offset(p.offset());
        assert_eq!(base.0, 0, "interleave test assumes objects start at 0");
        fm.evacuate_all(0);
        assert_eq!(
            fm.redo_ledger_len(),
            32,
            "every acked writeback is ledgered"
        );

        // Traffic inside the window observes the crash: object 2's primary
        // is Down, so the read fails over to its replica and the Down
        // transition drains every ledgered object off shard 2.
        let stall = fm.localize(ObjId(2), false, 1_000_000);
        assert!(fm.table().is_present(ObjId(2)), "replica served the read");
        assert!(stall < 100_000, "failover read, not a retry storm: {stall}");
        assert_eq!(fm.shard_state(2), ShardState::Down);
        assert_eq!(fm.stats().shard_downs, 1);
        assert!(
            fm.stats().re_replications > 0,
            "ledgered objects hosted on the dead shard get re-homed"
        );
        let snaps = fm.shard_snapshots();
        assert!(snaps.iter().map(|s| s.failover_reads).sum::<u64>() > 0);

        // Traffic after the window drives restart: epoch bump, redo-ledger
        // replay, rejoin as Up — with zero acknowledged writes lost.
        let mut now = 2_000_000;
        for k in 0..32u64 {
            now += fm.localize(ObjId(k), true, now);
        }
        fm.evacuate_all(now);
        assert_eq!(fm.shard_state(2), ShardState::Up);
        assert_eq!(fm.stats().shard_recoveries, 1);
        assert_eq!(fm.stats().lost_objects, 0);
        assert_eq!(fm.backend().shard_epoch(2), 1, "restart bumps the epoch");
        let audit = fm.failover_audit().expect("replicated backend audits");
        assert!(audit.acked_keys >= 32);
        assert_eq!(audit.lost, 0, "R=2 rides through a cold crash");
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.count(EventKind::ShardDown), 1);
        assert_eq!(snap.count(EventKind::ShardRecovering), 1);
        assert_eq!(snap.count(EventKind::ShardUp), 1);
        assert!(snap.count(EventKind::ReReplicate) > 0);
    }

    #[test]
    fn unobserved_cold_crash_is_resynced_from_the_redo_ledger() {
        use tfm_net::{BackendSpec, FaultPlan, PlacementPolicy, ShardState};
        let cfg = FarMemoryConfig {
            heap_size: 1 << 20,
            object_size: 4096,
            local_budget: 4 * 4096,
            link: LinkParams::tcp_25g(),
            ..FarMemoryConfig::small()
        }
        .with_backend(
            BackendSpec::sharded(4)
                .with_placement(PlacementPolicy::Interleave)
                .with_replicas(2)
                .with_fault_shard(2),
        )
        .with_faults(FaultPlan::none().with_cold_crash(1_000_000, 1_500_000));
        let mut fm = FarMemory::new(cfg);
        let p = fm.allocate(32 * 4096, 0).unwrap();
        assert_eq!(fm.obj_of_offset(p.offset()).0, 0);
        fm.evacuate_all(0);

        // Nobody touches the backend during the crash window: the restart
        // edge still fires on the first attempt after it, and the wiped
        // store is rebuilt from the ledger instead of being drained.
        let _ = fm.localize(ObjId(0), false, 2_000_000);
        assert_eq!(
            fm.stats().shard_downs,
            0,
            "the crash itself went unobserved"
        );
        assert_eq!(fm.stats().shard_recoveries, 1);
        assert!(
            fm.stats().resynced_objects >= 16,
            "shard 2 hosts half the interleaved keys: {}",
            fm.stats()
        );
        assert_eq!(fm.stats().lost_objects, 0);
        assert_eq!(fm.shard_state(2), ShardState::Up);
        assert_eq!(fm.failover_audit().unwrap().lost, 0);
    }

    #[test]
    fn crash_failover_schedule_is_reproducible() {
        use tfm_net::{BackendSpec, FaultPlan};
        let run = || {
            let cfg = FarMemoryConfig {
                heap_size: 1 << 20,
                object_size: 4096,
                local_budget: 4 * 4096,
                link: LinkParams::tcp_25g(),
                ..FarMemoryConfig::small()
            }
            .with_backend(BackendSpec::sharded(4).with_replicas(2).with_fault_shard(1))
            .with_faults(FaultPlan::drops(0x5EED, 200_000).with_cold_crash(500_000, 1_200_000));
            let mut fm = FarMemory::new(cfg);
            let p = fm.allocate(16 * 4096, 0).unwrap();
            let base = fm.obj_of_offset(p.offset());
            fm.evacuate_all(0);
            fm.reset_stats();
            let mut now = 0;
            for k in 0..16u64 {
                now += fm.localize(ObjId(base.0 + k), true, now);
            }
            fm.evacuate_all(now);
            (*fm.stats(), fm.transfer_stats(), fm.failover_audit(), now)
        };
        assert_eq!(run(), run(), "identical seeds, identical failover story");
    }

    #[test]
    fn small_allocations_share_an_object() {
        let mut fm = fm_with(16);
        let a = fm.allocate(64, 0).unwrap();
        let b = fm.allocate(64, 0).unwrap();
        assert_eq!(
            fm.obj_of_offset(a.offset()),
            fm.obj_of_offset(b.offset()),
            "two 64B allocations should be grouped into one 4KB object"
        );
        assert_eq!(fm.resident_bytes(), 4096);
    }
}
